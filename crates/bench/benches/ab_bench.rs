//! Backend dispatch and champion/challenger costs: what a learned
//! nearest-neighbour recommendation costs next to the plain heuristic,
//! and what an A/B fleet run costs next to a single-sided one.
//!
//! The headline numbers: `backend_recommend` shows the learned lookup is
//! a small constant on top of the heuristic it falls back to (the corpus
//! scan is a few hundred normalized-distance evaluations), and
//! `ab_fleet_*` shows the A/B harness costs what it should — two fleet
//! passes plus an O(fleet) pairing sweep, nothing superlinear.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{
    DopplerEngine, EngineConfig, LearnedBackend, LearnedConfig, RecommendationBackend,
    TrainingRecord,
};
use doppler_fleet::{cloud_fleet, AbFleet, FleetAssessor, FleetConfig, FleetRequest};
use doppler_workload::PopulationSpec;

const CORPUS: usize = 128;
const FLEET: usize = 128;

fn config() -> EngineConfig {
    EngineConfig::production(DeploymentType::SqlDb)
}

fn heuristic() -> DopplerEngine {
    DopplerEngine::untrained(azure_paas_catalog(&CatalogSpec::default()), config())
}

fn training(n: usize) -> Vec<TrainingRecord> {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(n, 909) };
    spec.stream_customers(&catalog)
        .map(|c| TrainingRecord {
            history: c.history,
            chosen_sku: c.chosen_sku,
            file_layout: c.file_layout,
        })
        .collect()
}

fn learned(floor: f64, records: &[TrainingRecord]) -> LearnedBackend {
    LearnedBackend::train(
        azure_paas_catalog(&CatalogSpec::default()),
        config(),
        LearnedConfig { similarity_floor: floor, ..LearnedConfig::default() },
        records,
    )
}

/// Per-recommendation latency: heuristic alone, the learned backend doing
/// a real corpus lookup, and the learned backend with an unclearable floor
/// (pure fallback — the safeguard's overhead).
fn bench_backend_recommend(c: &mut Criterion) {
    let records = training(CORPUS);
    let heuristic = heuristic();
    let open = learned(0.0, &records);
    let floored = learned(2.0, &records);
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(1, 77) };
    let workload = spec.stream_customers(&catalog).next().expect("one customer").history;

    let mut group = c.benchmark_group(format!("backend_recommend_{CORPUS}_exemplars"));
    group.sample_size(10);
    group.bench_function("heuristic", |b| {
        b.iter(|| std::hint::black_box(heuristic.recommend(&workload, None)))
    });
    group.bench_function("learned_nn_lookup", |b| {
        b.iter(|| std::hint::black_box(RecommendationBackend::recommend(&open, &workload, None)))
    });
    group.bench_function("learned_floored_fallback", |b| {
        b.iter(|| std::hint::black_box(RecommendationBackend::recommend(&floored, &workload, None)))
    });
    group.finish();
}

fn fleet() -> Vec<FleetRequest> {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(FLEET, 42) };
    cloud_fleet(&spec, &catalog, None).collect()
}

/// A/B overhead at fleet scale: one champion-only pass vs the full
/// champion + challenger + pairing run, at 1 and 4 workers.
fn bench_ab_fleet(c: &mut Criterion) {
    let records = training(CORPUS);
    let cohort = fleet();
    let mut group = c.benchmark_group(format!("ab_fleet_{FLEET}_instances"));
    group.sample_size(10);

    for workers in [1usize, 4] {
        let single = FleetAssessor::new(heuristic(), FleetConfig::with_workers(workers));
        group.bench_with_input(
            BenchmarkId::new("champion_only/workers", workers),
            &cohort,
            |b, cohort| b.iter(|| single.assess(std::hint::black_box(cohort.clone())).report),
        );

        let ab = AbFleet::new(
            FleetAssessor::new(heuristic(), FleetConfig::with_workers(workers)),
            FleetAssessor::new(learned(0.0, &records), FleetConfig::with_workers(workers)),
        );
        let ab = Arc::new(ab);
        group.bench_with_input(
            BenchmarkId::new("champion_vs_challenger/workers", workers),
            &cohort,
            |b, cohort| b.iter(|| ab.assess(std::hint::black_box(cohort.clone())).report),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backend_recommend, bench_ab_fleet);
criterion_main!(benches);
