//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * joint vs independence-approximated throttling probability (why Eq. 1
//!   is estimated jointly on time-aligned samples),
//! * the thresholding ρ sensitivity sweep the paper alludes to,
//! * bootstrap replicate-count stability.
//!
//! These print their ablation findings once per run (criterion benches
//! measure the runtime cost alongside).

use criterion::{criterion_group, criterion_main, Criterion};
use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{throttling_probability, NegotiabilityStrategy};
use doppler_telemetry::PerfDimension;
use doppler_workload::{generate, WorkloadArchetype};

/// The independence approximation Eq. 1 deliberately avoids: combine
/// per-dimension exceedance fractions as `1 - prod(1 - p_d)`.
fn independent_approximation(
    history: &doppler_telemetry::PerfHistory,
    caps: &doppler_catalog::ResourceCaps,
) -> f64 {
    let breakdown = doppler_core::ThrottleBreakdown::compute(history, caps);
    1.0 - breakdown.per_dimension.iter().map(|&(_, p)| 1.0 - p).product::<f64>()
}

fn bench_joint_vs_independent(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let sku = cat.for_deployment(DeploymentType::SqlDb)[4].clone();
    // A workload whose CPU and IOPS spike *together* (OLTP bursts): the
    // independence assumption over-counts the union.
    let history = generate(&WorkloadArchetype::BurstyIo.spec(10.0, 14.0), 3);
    let joint = throttling_probability(&history, &sku.caps);
    let indep = independent_approximation(&history, &sku.caps);
    println!(
        "[ablation:joint-estimator] joint P = {joint:.4}, independence approximation = {indep:.4} \
         (correlated spikes make the union smaller than independence predicts)"
    );
    c.bench_function("throttling_joint", |b| {
        b.iter(|| throttling_probability(std::hint::black_box(&history), &sku.caps))
    });
    c.bench_function("throttling_independent_approx", |b| {
        b.iter(|| independent_approximation(std::hint::black_box(&history), &sku.caps))
    });
}

fn bench_rho_sensitivity(c: &mut Criterion) {
    // Sweep ρ and report how the negotiability verdicts move — the paper's
    // "sensitivity analyses were conducted to better tune the ρ threshold".
    let spiky = generate(&WorkloadArchetype::SpikyCpu.spec(8.0, 14.0), 5);
    let steady = generate(&WorkloadArchetype::MemoryHeavy.spec(8.0, 14.0), 5);
    print!("[ablation:rho-sweep] rho ->");
    for rho in [0.005, 0.01, 0.02, 0.05, 0.08, 0.12, 0.20] {
        let s = NegotiabilityStrategy::Thresholding { rho };
        let spiky_bit = s.dimension_bit(spiky.values(PerfDimension::Cpu).unwrap());
        let steady_bit = s.dimension_bit(steady.values(PerfDimension::Memory).unwrap());
        print!(
            " {rho}:{}{}",
            if spiky_bit { "S" } else { "-" },
            if steady_bit { "M" } else { "-" }
        );
    }
    println!("  (S = spiky CPU negotiable, M = saturated memory negotiable; the useful band keeps S without M)");
    let s = NegotiabilityStrategy::production();
    c.bench_function("thresholding_bit_14d", |b| {
        b.iter(|| s.dimension_bit(std::hint::black_box(spiky.values(PerfDimension::Cpu).unwrap())))
    });
}

criterion_group!(benches, bench_joint_vs_independent, bench_rho_sensitivity);
criterion_main!(benches);
