//! Backtest and featurization costs: what the richer shape-feature
//! fingerprints cost at training time, and what a replayed back-test
//! costs per held-out case.
//!
//! The headline numbers: `learned_train_*` shows the FULL feature set
//! (quantiles + burst + diurnal on top of mean/peak) is a small multiple
//! of the MEAN_PEAK baseline — the quantile sort dominates — and
//! `backtest_run` shows the harness costs two fleet passes plus one
//! queueing-machine replay per (case, side), linear in the cohort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{
    CompressorSpec, DopplerEngine, EngineConfig, FeatureSpec, LearnedBackend, LearnedConfig,
    TrainingRecord,
};
use doppler_fleet::{Backtest, BacktestCase, FleetAssessor, FleetConfig};
use doppler_stats::Linkage;
use doppler_workload::PopulationSpec;

const CORPUS: usize = 128;

fn config() -> EngineConfig {
    EngineConfig::production(DeploymentType::SqlDb)
}

fn training(n: usize) -> Vec<TrainingRecord> {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(n, 909) };
    spec.stream_customers(&catalog)
        .map(|c| TrainingRecord {
            history: c.history,
            chosen_sku: c.chosen_sku,
            file_layout: c.file_layout,
        })
        .collect()
}

/// Training cost per feature set: the fingerprint families are the only
/// variable — same corpus, same normalization, same compressor.
fn bench_featurization(c: &mut Criterion) {
    let records = training(CORPUS);
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let sets: [(&str, FeatureSpec); 4] = [
        ("mean_peak", FeatureSpec::MEAN_PEAK),
        ("quantiles", FeatureSpec { quantiles: true, ..FeatureSpec::MEAN_PEAK }),
        ("burst", FeatureSpec { burst: true, ..FeatureSpec::MEAN_PEAK }),
        ("full", FeatureSpec::FULL),
    ];
    let mut group = c.benchmark_group(format!("learned_train_{CORPUS}_records"));
    group.sample_size(10);
    for (label, features) in sets {
        group.bench_with_input(BenchmarkId::from_parameter(label), &features, |b, &features| {
            b.iter(|| {
                std::hint::black_box(LearnedBackend::train(
                    catalog.clone(),
                    config(),
                    LearnedConfig { features, ..LearnedConfig::default() },
                    &records,
                ))
            })
        });
    }
    group.finish();
}

/// Corpus compression: k-means vs the hierarchical linkages, on a corpus
/// big enough to trigger compression.
fn bench_compressors(c: &mut Criterion) {
    let records = training(CORPUS);
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let compressors: [(&str, CompressorSpec); 3] = [
        ("kmeans", CompressorSpec::KMeans),
        ("hier_average", CompressorSpec::Hierarchical(Linkage::Average)),
        ("hier_complete", CompressorSpec::Hierarchical(Linkage::Complete)),
    ];
    let mut group = c.benchmark_group(format!("learned_compress_{CORPUS}_to_32"));
    group.sample_size(10);
    for (label, compressor) in compressors {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &compressor,
            |b, &compressor| {
                b.iter(|| {
                    std::hint::black_box(LearnedBackend::train(
                        catalog.clone(),
                        config(),
                        LearnedConfig { compressor, max_profiles: 32, ..LearnedConfig::default() },
                        &records,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// End-to-end back-test cost over a held-out cohort: two assessor passes
/// plus two replays per case.
fn bench_backtest_run(c: &mut Criterion) {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let records = training(64);
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(64, 4242) };
    let cases: Vec<BacktestCase> =
        spec.customers(&catalog).iter().map(BacktestCase::from_customer).collect();
    let learned =
        LearnedBackend::train(catalog.clone(), config(), LearnedConfig::default(), &records);
    let harness = Backtest::new(
        catalog.clone(),
        FleetAssessor::new(learned, FleetConfig::with_workers(4)),
        FleetAssessor::new(
            DopplerEngine::untrained(catalog.clone(), config()),
            FleetConfig::with_workers(4),
        ),
    );
    let mut group = c.benchmark_group("backtest_run_64_cases");
    group.sample_size(10);
    group.bench_function("replay_scored", |b| b.iter(|| std::hint::black_box(harness.run(&cases))));
    group.finish();
}

criterion_group!(benches, bench_featurization, bench_compressors, bench_backtest_run);
criterion_main!(benches);
