//! Confidence-score benchmarks: the §3.4 bootstrap re-runs the full
//! pipeline per replicate, so its cost scales linearly in replicates and
//! window length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{ConfidenceConfig, DopplerEngine, EngineConfig};
use doppler_workload::{generate, WorkloadArchetype};

fn bench_confidence(c: &mut Criterion) {
    let engine = DopplerEngine::untrained(
        azure_paas_catalog(&CatalogSpec::default()),
        EngineConfig::production(DeploymentType::SqlDb),
    );
    let history = generate(&WorkloadArchetype::Diurnal.spec(6.0, 30.0), 3);
    let mut group = c.benchmark_group("confidence_score");
    group.sample_size(10);
    for replicates in [10usize, 30] {
        group.bench_with_input(
            BenchmarkId::new("replicates", replicates),
            &replicates,
            |b, &replicates| {
                b.iter(|| {
                    engine.recommend_with_confidence(
                        std::hint::black_box(&history),
                        None,
                        &ConfidenceConfig { replicates, window_samples: 7 * 144, seed: 1 },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_confidence);
criterion_main!(benches);
