//! Catalog and telemetry substrate benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType, FileLayout};
use doppler_telemetry::{rollup, PerfDimension, PreAggregator, RawSample};

fn bench_catalog_generation(c: &mut Criterion) {
    let spec = CatalogSpec::default();
    c.bench_function("catalog_generate", |b| {
        b.iter(|| azure_paas_catalog(std::hint::black_box(&spec)))
    });
}

fn bench_catalog_query(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    c.bench_function("catalog_sorted_by_price", |b| {
        b.iter(|| std::hint::black_box(&cat).sorted_by_price(DeploymentType::SqlDb))
    });
}

fn bench_storage_tier_assignment(c: &mut Criterion) {
    let layout = FileLayout::from_sizes(&[100.0, 400.0, 900.0, 1500.0]);
    c.bench_function("mi_tier_assignment_for_demand", |b| {
        b.iter(|| std::hint::black_box(&layout).assign_tiers_for_demand(12_000.0, 400.0, 0.95))
    });
}

fn bench_preaggregation(c: &mut Criterion) {
    // A week of per-minute raw samples into 10-minute buckets.
    let samples: Vec<RawSample> =
        (0..7 * 24 * 60).map(|i| RawSample { minute: i as f64, value: (i % 97) as f64 }).collect();
    let agg = PreAggregator::default();
    c.bench_function("preaggregate_week_of_minutes", |b| {
        b.iter(|| agg.aggregate(std::hint::black_box(&samples), 7.0 * 24.0 * 60.0))
    });
}

fn bench_rollup(c: &mut Criterion) {
    let child = doppler_telemetry::PerfHistory::new()
        .with(PerfDimension::Cpu, doppler_telemetry::TimeSeries::ten_minute(vec![1.0; 2016]))
        .with(PerfDimension::IoLatency, doppler_telemetry::TimeSeries::ten_minute(vec![5.0; 2016]));
    let children = vec![child; 40];
    c.bench_function("rollup_40_databases_14d", |b| {
        b.iter(|| rollup(std::hint::black_box(&children)))
    });
}

criterion_group!(
    benches,
    bench_catalog_generation,
    bench_catalog_query,
    bench_storage_tier_assignment,
    bench_preaggregation,
    bench_rollup
);
criterion_main!(benches);
