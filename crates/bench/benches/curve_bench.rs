//! Price-performance-curve generation microbenchmarks: the inner loop of
//! every assessment (Eq. 1 over the full catalog).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::PricePerformanceCurve;
use doppler_workload::{generate, WorkloadArchetype};

fn bench_curve_generation(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let mut group = c.benchmark_group("curve_generation");
    for days in [1.0, 7.0, 14.0, 30.0] {
        let history = generate(&WorkloadArchetype::OltpLike.spec(4.0, days), 7);
        group.bench_with_input(BenchmarkId::new("oltp_days", days as u32), &history, |b, h| {
            b.iter(|| PricePerformanceCurve::generate(std::hint::black_box(h), &skus))
        });
    }
    group.finish();
}

fn bench_curve_classification(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let history = generate(&WorkloadArchetype::SpikyCpu.spec(8.0, 14.0), 3);
    let curve = PricePerformanceCurve::generate(&history, &skus);
    c.bench_function("curve_classify", |b| b.iter(|| std::hint::black_box(&curve).classify()));
}

fn bench_throttling_probability(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let sku = cat.for_deployment(DeploymentType::SqlDb)[5].clone();
    let history = generate(&WorkloadArchetype::Diurnal.spec(8.0, 14.0), 5);
    c.bench_function("throttling_probability_14d", |b| {
        b.iter(|| doppler_core::throttling_probability(std::hint::black_box(&history), &sku.caps))
    });
}

criterion_group!(
    benches,
    bench_curve_generation,
    bench_curve_classification,
    bench_throttling_probability
);
criterion_main!(benches);
