//! Drift-monitoring hot paths: a full monitor pass (drift check + fold +
//! priority re-queue) over a 1,000-customer mixed cohort at 1 and 4
//! workers, and the queue-latency win of the priority lane — how long a
//! deadline item waits behind a 1,000-deep normal backlog with and
//! without lane priority.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{CatalogKey, CatalogSpec, CatalogVersion, DeploymentType, Region};
use doppler_core::EngineRegistry;
use doppler_fleet::{
    BoundedQueue, DriftMonitor, EngineRoute, FleetAssessor, FleetConfig, MonitoredCustomer,
};
use doppler_telemetry::PerfHistory;
use doppler_workload::{DriftDirection, DriftSpec};

const COHORT: usize = 1_000;
const DRIFT_EVERY: usize = 10;

/// Customer `i`'s baseline and fresh windows: every `DRIFT_EVERY`-th
/// customer grows ~4× into a latency-critical workload, the rest are
/// controls.
fn cohort() -> Vec<(MonitoredCustomer, PerfHistory)> {
    (0..COHORT)
        .map(|i| {
            let drifts = i % DRIFT_EVERY == 0;
            let spec = DriftSpec {
                direction: DriftDirection::Grow,
                days: 0.5,
                onset_day: 0.25,
                magnitude: if drifts { 25.0 / 6.0 } else { 1.0 },
                base_scale: 0.4 + 0.5 * ((i % 5) as f64 / 4.0),
                latency_critical: true,
            };
            let scenario = spec.scenario(9_000 + i as u64);
            let customer = MonitoredCustomer::new(
                format!("cust-{i:04}"),
                DeploymentType::SqlDb,
                scenario.before(),
            );
            (customer, scenario.after())
        })
        .collect()
}

fn monitor(workers: usize) -> DriftMonitor {
    let provider = doppler_catalog::InMemoryCatalogProvider::new().with_region(
        Region::global(),
        CatalogVersion::INITIAL,
        &CatalogSpec::default(),
        1.0,
    );
    let registry = Arc::new(EngineRegistry::new(Arc::new(provider)));
    let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(workers))
        .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
    DriftMonitor::new(assessor)
}

fn bench_monitor_sweep(c: &mut Criterion) {
    let cohort = cohort();
    let mut group = c.benchmark_group(format!("drift_monitor_pass_{COHORT}_customers"));
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("tick/workers", workers), &cohort, |b, cohort| {
            b.iter(|| {
                let mut monitor = monitor(workers);
                for (customer, fresh) in cohort {
                    let name = customer.name.clone();
                    monitor.watch(customer.clone());
                    monitor.observe(&name, fresh.clone());
                }
                let pass = monitor.tick("Bench-22");
                assert_eq!(pass.report.checked, COHORT);
                assert_eq!(pass.report.drifted, COHORT / DRIFT_EVERY);
                std::hint::black_box(pass.report)
            })
        });
    }
    group.finish();
}

fn bench_queue_lanes(c: &mut Criterion) {
    const BACKLOG: usize = 1_000;
    let mut group = c.benchmark_group(format!("queue_latency_behind_{BACKLOG}_backlog"));

    // FIFO: the deadline item queues behind the whole backlog and is
    // delivered only after BACKLOG pops.
    group.bench_function("fifo_normal_lane", |b| {
        b.iter(|| {
            let q = BoundedQueue::new(BACKLOG + 1);
            for i in 0..BACKLOG {
                q.push(i).unwrap();
            }
            q.push(usize::MAX).unwrap();
            let mut pops = 0usize;
            loop {
                pops += 1;
                if q.pop() == Some(usize::MAX) {
                    break;
                }
            }
            assert_eq!(pops, BACKLOG + 1);
            std::hint::black_box(pops)
        })
    });

    // Priority lane: the same backlog, but the deadline item jumps it —
    // delivered on the very next pop.
    group.bench_function("priority_lane", |b| {
        b.iter(|| {
            let q = BoundedQueue::new(BACKLOG + 1);
            for i in 0..BACKLOG {
                q.push(i).unwrap();
            }
            q.push_priority(usize::MAX).unwrap();
            assert_eq!(q.pop(), Some(usize::MAX));
            std::hint::black_box(q.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monitor_sweep, bench_queue_lanes);
criterion_main!(benches);
