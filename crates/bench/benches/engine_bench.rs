//! End-to-end engine benchmarks: training throughput and per-assessment
//! latency — the "make sure the solution can scale" design goal of §3.1.

use criterion::{criterion_group, criterion_main, Criterion};
use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig, TrainingRecord};
use doppler_workload::PopulationSpec;

fn training_records(n: usize) -> Vec<TrainingRecord> {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    PopulationSpec { days: 7.0, ..PopulationSpec::sql_db(n, 3) }
        .customers(&cat)
        .into_iter()
        .filter(|c| !c.over_provisioned)
        .map(|c| TrainingRecord { history: c.history, chosen_sku: c.chosen_sku, file_layout: None })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let records = training_records(100);
    let mut group = c.benchmark_group("engine_training");
    group.sample_size(10);
    group.bench_function("train_100_customers_7d", |b| {
        b.iter(|| {
            DopplerEngine::train(
                cat.clone(),
                EngineConfig::production(DeploymentType::SqlDb),
                std::hint::black_box(&records),
            )
        })
    });
    group.finish();
}

fn bench_recommendation(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let records = training_records(60);
    let engine =
        DopplerEngine::train(cat, EngineConfig::production(DeploymentType::SqlDb), &records);
    let history = &records[0].history;
    c.bench_function("recommend_one_7d_history", |b| {
        b.iter(|| engine.recommend(std::hint::black_box(history), None))
    });
}

fn bench_baseline_for_contrast(c: &mut Criterion) {
    let cat = azure_paas_catalog(&CatalogSpec::default());
    let records = training_records(10);
    let history = &records[0].history;
    let baseline = doppler_core::BaselineStrategy::p95();
    c.bench_function("baseline_recommend_one_7d_history", |b| {
        b.iter(|| baseline.recommend(std::hint::black_box(history), &cat, DeploymentType::SqlDb))
    });
}

criterion_group!(benches, bench_training, bench_recommendation, bench_baseline_for_contrast);
criterion_main!(benches);
