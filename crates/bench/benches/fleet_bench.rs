//! Fleet-assessment throughput: time to push the same synthetic SQL DB
//! fleet through the `doppler-fleet` worker pool at increasing thread
//! counts, plus the aggregation and queue-handoff hot paths.
//!
//! On a multi-core host the multi-threaded rows should show materially
//! lower ns/iter than `workers/1`, since the engine is read-only and
//! assessment parallelizes embarrassingly; on a single-core container the
//! rows collapse to parity, which is itself the correct answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{azure_paas_catalog, Catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig};
use doppler_fleet::{cloud_fleet, BoundedQueue, FleetAssessor, FleetConfig, FleetRequest};
use doppler_workload::PopulationSpec;

const FLEET_SIZE: usize = 128;

fn catalog() -> Catalog {
    azure_paas_catalog(&CatalogSpec::default())
}

fn db_fleet(catalog: &Catalog) -> Vec<FleetRequest> {
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(FLEET_SIZE, 11) };
    cloud_fleet(&spec, catalog, None).collect()
}

fn assessor(catalog: &Catalog, workers: usize) -> FleetAssessor {
    let engine =
        DopplerEngine::untrained(catalog.clone(), EngineConfig::production(DeploymentType::SqlDb));
    let mut config = FleetConfig::with_workers(workers);
    config.keep_results = false;
    FleetAssessor::new(engine, config)
}

fn bench_fleet_throughput(c: &mut Criterion) {
    let catalog = catalog();
    let fleet = db_fleet(&catalog);
    let mut group = c.benchmark_group(format!("fleet_assess_{FLEET_SIZE}_instances"));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let assessor = assessor(&catalog, workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &fleet, |b, fleet| {
            b.iter(|| assessor.assess(std::hint::black_box(fleet.clone())).report)
        });
    }
    group.finish();
}

fn bench_report_aggregation(c: &mut Criterion) {
    let catalog = catalog();
    let engine =
        DopplerEngine::untrained(catalog.clone(), EngineConfig::production(DeploymentType::SqlDb));
    let results =
        FleetAssessor::new(engine, FleetConfig::with_workers(1)).assess(db_fleet(&catalog)).results;
    c.bench_function("fleet_report_from_128_results", |b| {
        b.iter(|| doppler_fleet::FleetReport::from_results(std::hint::black_box(&results)))
    });
}

fn bench_queue_handoff(c: &mut Criterion) {
    c.bench_function("bounded_queue_handoff_1k_items_4_workers", |b| {
        b.iter(|| {
            let queue: BoundedQueue<usize> = BoundedQueue::new(64);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut sum = 0usize;
                        while let Some(i) = queue.pop() {
                            sum += i;
                        }
                        std::hint::black_box(sum)
                    });
                }
                for i in 0..1000 {
                    queue.push(i).unwrap();
                }
                queue.close();
            });
        })
    });
}

criterion_group!(benches, bench_fleet_throughput, bench_report_aggregation, bench_queue_handoff);
criterion_main!(benches);
