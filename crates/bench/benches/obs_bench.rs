//! Observability overhead: the same synthetic customer cohort pushed
//! through the fleet pool with instrumentation disabled (the no-op
//! `ObsRegistry`, every metric handle `None`) and enabled (atomic
//! counters, latency histograms, span timers on every stage).
//!
//! The contract the `instrumentation/*` pair checks is that the enabled
//! row stays within a few percent of the no-op row — instrumentation is
//! write-aside (`fetch_add` + `Instant::now()` per stage), never a lock on
//! the hot path. The microbenches underneath put per-operation numbers on
//! the primitives themselves: a counter bump, a histogram record, and a
//! full registry snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{azure_paas_catalog, Catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig};
use doppler_fleet::{cloud_fleet, FleetAssessor, FleetConfig, FleetRequest};
use doppler_obs::ObsRegistry;
use doppler_workload::PopulationSpec;

const COHORT_SIZE: usize = 1000;
const WORKERS: usize = 4;

fn catalog() -> Catalog {
    azure_paas_catalog(&CatalogSpec::default())
}

fn cohort(catalog: &Catalog) -> Vec<FleetRequest> {
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(COHORT_SIZE, 17) };
    cloud_fleet(&spec, catalog, None).collect()
}

fn assessor(catalog: &Catalog, obs: &ObsRegistry) -> FleetAssessor {
    let engine =
        DopplerEngine::untrained(catalog.clone(), EngineConfig::production(DeploymentType::SqlDb));
    let mut config = FleetConfig::with_workers(WORKERS);
    config.keep_results = false;
    FleetAssessor::new(engine, config).with_obs(obs)
}

fn bench_instrumentation_overhead(c: &mut Criterion) {
    let catalog = catalog();
    let fleet = cohort(&catalog);
    let mut group = c.benchmark_group(format!("obs_overhead_{COHORT_SIZE}_customers"));
    group.sample_size(10);
    for (mode, obs) in [("noop", ObsRegistry::disabled()), ("enabled", ObsRegistry::enabled())] {
        let assessor = assessor(&catalog, &obs);
        group.bench_with_input(BenchmarkId::new("instrumentation", mode), &fleet, |b, fleet| {
            b.iter(|| assessor.assess(std::hint::black_box(fleet.clone())).report)
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let obs = ObsRegistry::enabled();
    let counter = obs.counter("bench.counter");
    c.bench_function("obs_counter_incr", |b| b.iter(|| counter.incr()));

    let noop = ObsRegistry::disabled().counter("bench.counter");
    c.bench_function("obs_counter_incr_noop", |b| b.iter(|| noop.incr()));

    let histogram = obs.histogram("bench.histogram");
    let mut ns = 1u64;
    c.bench_function("obs_histogram_record", |b| {
        b.iter(|| {
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record_ns(std::hint::black_box(ns >> 40));
        })
    });

    c.bench_function("obs_span_timed", |b| b.iter(|| histogram.start().stop()));

    let populated = ObsRegistry::enabled();
    for i in 0..32 {
        populated.counter(&format!("c.{i}")).add(i);
        let h = populated.histogram(&format!("h.{i}"));
        for ns in [500, 5_000, 50_000] {
            h.record_ns(ns);
        }
    }
    c.bench_function("obs_snapshot_32x32_metrics", |b| b.iter(|| populated.snapshot()));
}

criterion_group!(benches, bench_instrumentation_overhead, bench_primitives);
criterion_main!(benches);
