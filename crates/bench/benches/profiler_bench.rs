//! Customer Profiler microbenchmarks: the §3.3 summarizers compared head
//! to head — the paper chose thresholding partly because "calculating the
//! AUC is more time-consuming".

use criterion::{criterion_group, criterion_main, Criterion};
use doppler_core::NegotiabilityStrategy;
use doppler_stats::{hierarchical_cluster, kmeans, KMeansConfig, Linkage, SeededRng};
use doppler_telemetry::PerfDimension;
use doppler_workload::{generate, WorkloadArchetype};

fn bench_summarizers(c: &mut Criterion) {
    let history = generate(&WorkloadArchetype::SpikyCpu.spec(8.0, 14.0), 3);
    let dims =
        [PerfDimension::Cpu, PerfDimension::Memory, PerfDimension::Iops, PerfDimension::LogRate];
    let mut group = c.benchmark_group("negotiability_summarizers");
    for (name, strategy) in NegotiabilityStrategy::table4_lineup() {
        // STL is orders of magnitude slower; trim its sample budget.
        if matches!(strategy, NegotiabilityStrategy::StlVarianceDecomposition { .. }) {
            group.sample_size(10);
        } else {
            group.sample_size(50);
        }
        group.bench_function(name, |b| {
            b.iter(|| strategy.weights(std::hint::black_box(&history), &dims))
        });
    }
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    // 1000 customers' weight vectors near the 16 bit-corners.
    let mut rng = SeededRng::new(9);
    let points: Vec<Vec<f64>> = (0..1000)
        .map(|i| {
            (0..4)
                .map(|d| {
                    let corner = if (i >> d) & 1 == 1 { 0.95 } else { 0.45 };
                    corner + rng.normal_with(0.0, 0.02)
                })
                .collect()
        })
        .collect();
    c.bench_function("kmeans_k16_n1000", |b| {
        b.iter(|| {
            kmeans(
                std::hint::black_box(&points),
                &KMeansConfig { k: 16, seed: 1, ..Default::default() },
            )
        })
    });
    let small: Vec<Vec<f64>> = points.iter().take(200).cloned().collect();
    c.bench_function("hierarchical_k16_n200", |b| {
        b.iter(|| hierarchical_cluster(std::hint::black_box(&small), 16, Linkage::Average))
    });
}

criterion_group!(benches, bench_summarizers, bench_grouping);
criterion_main!(benches);
