//! Engine-registry hot paths: cold resolution (one full training run),
//! warm resolution (sharded read lock + `Arc` bump), and mixed-region
//! fleet throughput against the pre-registry baseline of retraining per
//! run.
//!
//! The headline number is `cold_vs_warm`: warm resolution must be at
//! least an order of magnitude cheaper than cold training — on any real
//! host it is several orders — which is what turns N-trainings-per-fleet
//! into one-training-per-key fleet-wide.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{
    azure_paas_catalog, CatalogKey, CatalogProvider, CatalogSpec, CatalogVersion, DeploymentType,
    InMemoryCatalogProvider, PriceFeed, RefreshableCatalogProvider, Region,
};
use doppler_core::{EngineRegistry, EngineTemplate, TrainingRecord, TrainingSet};
use doppler_fleet::{cloud_fleet, EngineRoute, FleetAssessor, FleetConfig, FleetRequest};
use doppler_workload::PopulationSpec;

const REGIONS: [(&str, f64); 3] = [("global", 1.0), ("westeurope", 1.08), ("eastasia", 1.12)];
const FLEET_PER_REGION: usize = 24;

fn provider() -> InMemoryCatalogProvider {
    // `global` is re-registered at multiplier 1.0 — same contents as
    // `production()`, kept uniform with the other regions.
    REGIONS.iter().fold(InMemoryCatalogProvider::new(), |p, &(region, multiplier)| {
        p.with_region(
            Region::new(region),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            multiplier,
        )
    })
}

/// A migrated training cohort big enough that cold training visibly
/// dwarfs the warm lookup.
fn training() -> TrainingSet {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(16, 909) };
    TrainingSet::new(
        spec.stream_customers(&catalog)
            .map(|c| TrainingRecord {
                history: c.history,
                chosen_sku: c.chosen_sku,
                file_layout: c.file_layout,
            })
            .collect::<Vec<_>>(),
    )
}

fn db_key(region: &str) -> CatalogKey {
    CatalogKey::new(DeploymentType::SqlDb, Region::new(region), CatalogVersion::INITIAL)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let training = training();
    let template = EngineTemplate::production();
    let mut group = c.benchmark_group("registry_resolution");
    group.sample_size(10);

    // Cold: a fresh registry per iteration — every resolution trains.
    group.bench_function("cold_training", |b| {
        b.iter(|| {
            let registry = EngineRegistry::new(Arc::new(provider()));
            std::hint::black_box(
                registry.get_or_train(&db_key("global"), &template, &training).unwrap(),
            )
        })
    });

    // Warm: one registry, trained once up front — every resolution is a
    // sharded read lock + Arc bump.
    let registry = EngineRegistry::new(Arc::new(provider()));
    registry.get_or_train(&db_key("global"), &template, &training).unwrap();
    group.bench_function("warm_resolution", |b| {
        b.iter(|| {
            std::hint::black_box(
                registry.get_or_train(&db_key("global"), &template, &training).unwrap(),
            )
        })
    });
    group.finish();
}

fn mixed_region_fleet() -> Vec<FleetRequest> {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    REGIONS
        .iter()
        .enumerate()
        .flat_map(|(i, &(region, _))| {
            let spec = PopulationSpec {
                days: 1.0,
                ..PopulationSpec::sql_db(FLEET_PER_REGION, 50 + i as u64)
            }
            .in_region(Region::new(region));
            cloud_fleet(&spec, &catalog, None).collect::<Vec<_>>()
        })
        .collect()
}

fn registry_assessor(registry: &Arc<EngineRegistry>, workers: usize) -> FleetAssessor {
    let mut config = FleetConfig::with_workers(workers);
    config.keep_results = false;
    FleetAssessor::over_registry(Arc::clone(registry), config)
        .with_route(EngineRoute::production(db_key("global")).trained(training()))
}

fn bench_mixed_region_fleet(c: &mut Criterion) {
    let fleet = mixed_region_fleet();
    let mut group = c.benchmark_group(format!(
        "mixed_region_fleet_{}x{}_instances",
        REGIONS.len(),
        FLEET_PER_REGION
    ));
    group.sample_size(10);

    // Warm-registry throughput: engines for all three regions are trained
    // on the first iteration and shared ever after, so steady-state cost
    // is pure assessment.
    for workers in [1usize, 4] {
        let registry = Arc::new(EngineRegistry::new(Arc::new(provider())));
        let assessor = registry_assessor(&registry, workers);
        group.bench_with_input(
            BenchmarkId::new("registry_warm/workers", workers),
            &fleet,
            |b, fleet| b.iter(|| assessor.assess(std::hint::black_box(fleet.clone())).report),
        );
    }

    // The pre-registry baseline: a fresh registry per run — every region's
    // engine retrains every fleet, which is what per-run pipelines cost.
    group.bench_with_input(
        BenchmarkId::new("retrain_per_run/workers", 4usize),
        &fleet,
        |b, fleet| {
            b.iter(|| {
                let registry = Arc::new(EngineRegistry::new(Arc::new(provider())));
                let assessor = registry_assessor(&registry, 4);
                assessor.assess(std::hint::black_box(fleet.clone())).report
            })
        },
    );
    group.finish();
}

/// Eviction pressure: a capacity-8 LRU registry cycled over 64 hot keys —
/// the pathological steady state where every resolution is a miss plus an
/// eviction — against the same sweep warm (capacity ≥ key count). The gap
/// is the price of undersizing the cache.
fn bench_eviction_pressure(c: &mut Criterion) {
    const HOT_KEYS: usize = 64;
    const CAPACITY: usize = 8;
    let provider = Arc::new((0..HOT_KEYS).fold(InMemoryCatalogProvider::new(), |p, i| {
        p.with_region(
            Region::new(format!("hot-{i}")),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            1.0,
        )
    }));
    let template = EngineTemplate::production();
    let empty = TrainingSet::empty();
    let key = |i: usize| {
        CatalogKey::new(
            DeploymentType::SqlDb,
            Region::new(format!("hot-{i}")),
            CatalogVersion::INITIAL,
        )
    };
    let mut group = c.benchmark_group(format!("eviction_pressure_{HOT_KEYS}_keys"));
    group.sample_size(10);

    let thrashing = EngineRegistry::new(Arc::clone(&provider) as Arc<dyn CatalogProvider>)
        .with_capacity(CAPACITY);
    group.bench_function(format!("capacity_{CAPACITY}_thrash"), |b| {
        b.iter(|| {
            for i in 0..HOT_KEYS {
                std::hint::black_box(thrashing.get_or_train(&key(i), &template, &empty).unwrap());
            }
        })
    });

    let roomy = EngineRegistry::new(Arc::clone(&provider) as Arc<dyn CatalogProvider>)
        .with_capacity(HOT_KEYS);
    group.bench_function(format!("capacity_{HOT_KEYS}_warm"), |b| {
        b.iter(|| {
            for i in 0..HOT_KEYS {
                std::hint::black_box(roomy.get_or_train(&key(i), &template, &empty).unwrap());
            }
        })
    });
    group.finish();
}

/// Feed-roll latency: how long one `apply_feed` takes — re-price the
/// region's catalog, fingerprint it, bump the version, log the roll — and
/// the retire-then-retrain round trip a roll costs the registry.
fn bench_feed_roll(c: &mut Criterion) {
    let mut group = c.benchmark_group("feed_roll");
    group.sample_size(10);

    let provider = RefreshableCatalogProvider::production();
    group.bench_function("apply_feed_reprice", |b| {
        // Alternate a cut and its inverse so rates stay bounded while
        // every feed is a real (non-idempotent) roll.
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let m = if flip { 0.95 } else { 1.0 / 0.95 };
            std::hint::black_box(
                provider.apply_feed(&Region::global(), PriceFeed::Multiplier(m)).unwrap(),
            )
        })
    });

    group.bench_function("roll_retire_and_retrain", |b| {
        let provider = Arc::new(RefreshableCatalogProvider::production());
        let registry = EngineRegistry::new(Arc::clone(&provider) as Arc<dyn CatalogProvider>);
        let template = EngineTemplate::production();
        let training = training();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let m = if flip { 0.95 } else { 1.0 / 0.95 };
            let rolls = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(m)).unwrap();
            let roll = &rolls[0];
            registry.retire_version(&roll.old_key);
            std::hint::black_box(
                registry.get_or_train(&roll.new_key, &template, &training).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm,
    bench_mixed_region_fleet,
    bench_eviction_pressure,
    bench_feed_roll
);
criterion_main!(benches);
