//! Streaming-service hot paths: submission round-trip latency, streamed
//! cohort throughput against the one-shot assessor, and the cost of the
//! mid-run snapshot a dashboard polls.
//!
//! The one-shot assessor now drives a `FleetService` internally, so
//! `one_shot` vs `streamed` isolates exactly the ticket bookkeeping the
//! streaming front-end adds — on any host the two should be within noise
//! of each other, and `snapshot` should stay microseconds-cheap no matter
//! how much has been aggregated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{azure_paas_catalog, Catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig};
use doppler_fleet::{
    cloud_fleet, FleetAssessor, FleetConfig, FleetRequest, FleetService, TicketQueue,
};
use doppler_workload::PopulationSpec;

const COHORT: usize = 128;

fn catalog() -> Catalog {
    azure_paas_catalog(&CatalogSpec::default())
}

fn db_fleet(catalog: &Catalog) -> Vec<FleetRequest> {
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(COHORT, 11) };
    cloud_fleet(&spec, catalog, None).collect()
}

fn assessor(catalog: &Catalog, workers: usize) -> FleetAssessor {
    let engine =
        DopplerEngine::untrained(catalog.clone(), EngineConfig::production(DeploymentType::SqlDb));
    let mut config = FleetConfig::with_workers(workers);
    config.keep_results = false;
    FleetAssessor::new(engine, config)
}

/// Stream the cohort through a long-lived service: submit with interleaved
/// draining, then block out the tail.
fn stream_cohort(service: &FleetService, fleet: &[FleetRequest]) -> usize {
    let mut tickets = TicketQueue::new();
    let mut done = 0usize;
    for request in fleet {
        tickets.push(service.submit(request.clone()).expect("service open"));
        while tickets.try_next().is_some() {
            done += 1;
        }
    }
    while tickets.next_blocking().is_some() {
        done += 1;
    }
    done
}

fn bench_streamed_vs_one_shot(c: &mut Criterion) {
    let catalog = catalog();
    let fleet = db_fleet(&catalog);
    let mut group = c.benchmark_group(format!("service_cohort_{COHORT}_instances"));
    group.sample_size(10);
    for workers in [1usize, 4] {
        let one_shot = assessor(&catalog, workers);
        group.bench_with_input(BenchmarkId::new("one_shot", workers), &fleet, |b, fleet| {
            b.iter(|| one_shot.assess(std::hint::black_box(fleet.clone())).report)
        });
        // One long-lived service reused across iterations — the steady-state
        // serving shape (no thread spawn per batch).
        let service = assessor(&catalog, workers).into_service();
        group.bench_with_input(BenchmarkId::new("streamed", workers), &fleet, |b, fleet| {
            b.iter(|| stream_cohort(&service, std::hint::black_box(fleet)))
        });
        let report = service.shutdown();
        assert_eq!(report.fleet_size % COHORT, 0);
    }
    group.finish();
}

fn bench_single_submission_latency(c: &mut Criterion) {
    let catalog = catalog();
    let request = db_fleet(&catalog).into_iter().next().expect("non-empty cohort");
    let service = assessor(&catalog, 1).into_service();
    c.bench_function("service_submit_recv_round_trip", |b| {
        b.iter(|| {
            let ticket = service.submit(std::hint::black_box(request.clone())).expect("open");
            ticket.recv().expect("assessed")
        })
    });
}

fn bench_snapshot_cost(c: &mut Criterion) {
    let catalog = catalog();
    let service = assessor(&catalog, 2).into_service();
    let done = stream_cohort(&service, &db_fleet(&catalog));
    assert_eq!(done, COHORT);
    c.bench_function(format!("service_report_snapshot_after_{COHORT}"), |b| {
        b.iter(|| std::hint::black_box(service.report_snapshot()))
    });
}

criterion_group!(
    benches,
    bench_streamed_vs_one_shot,
    bench_single_submission_latency,
    bench_snapshot_cost
);
criterion_main!(benches);
