//! Sharded-fleet hot paths: streamed cohort throughput as the shard count
//! grows, the cost of the merge-based mid-run snapshot against a six-figure
//! aggregate, the per-digest aggregation fold itself, and the price of
//! merging two shard aggregators at reporting time.
//!
//! The snapshot rows are the before/after pair for the clone-under-lock
//! fix: `clone_then_finish` is the shape the old `report_snapshot` executed
//! while holding the progress mutex; `finish_ref` is the by-ref report
//! build the service now runs after merging chunk-shared clones outside
//! the hot path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{
    azure_paas_catalog, CatalogKey, CatalogSpec, CatalogVersion, DeploymentType,
    InMemoryCatalogProvider, Region,
};
use doppler_core::{CurveShape, EngineRegistry};
use doppler_fleet::{
    cloud_fleet, DigestOutcome, EngineRoute, FleetAggregator, FleetAssessor, FleetConfig,
    FleetRequest, FleetService, ResultDigest, ShardPlan, TicketQueue,
};
use doppler_workload::PopulationSpec;

const COHORT: usize = 256;
const REGIONS: usize = 4;

fn regions() -> Vec<Region> {
    (0..REGIONS).map(|i| Region::new(format!("region-{i}"))).collect()
}

/// A mixed-region cohort: the synthetic population, round-robined across
/// four regional catalogs so every shard plan has work on every shard.
fn keyed_fleet() -> Vec<FleetRequest> {
    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(COHORT, 13) };
    let regions = regions();
    cloud_fleet(&spec, &catalog, None)
        .enumerate()
        .map(|(i, r)| {
            r.with_catalog_key(CatalogKey::new(
                DeploymentType::SqlDb,
                regions[i % regions.len()].clone(),
                CatalogVersion::INITIAL,
            ))
        })
        .collect()
}

fn sharded_service(shards: usize, workers: usize) -> FleetService {
    let provider = regions().into_iter().fold(InMemoryCatalogProvider::production(), |p, r| {
        p.with_region(r, CatalogVersion::INITIAL, &CatalogSpec::default(), 1.0)
    });
    let registry = Arc::new(EngineRegistry::new(Arc::new(provider)));
    let config = FleetConfig { workers, queue_depth: workers * 4, keep_results: false };
    FleetAssessor::over_registry(registry, config)
        .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
        .with_shard_plan(ShardPlan::by_region(shards))
        .into_service()
}

fn stream_cohort(service: &FleetService, fleet: &[FleetRequest]) -> usize {
    let mut tickets = TicketQueue::new();
    let mut done = 0usize;
    for request in fleet {
        tickets.push(service.submit(request.clone()).expect("service open"));
        while tickets.try_next().is_some() {
            done += 1;
        }
    }
    while tickets.next_blocking().is_some() {
        done += 1;
    }
    done
}

/// Streamed throughput at 1, 2, and 4 shards (2 workers each): the
/// scale-out curve the README quotes. One long-lived service per shard
/// count, reused across iterations.
fn bench_sharded_stream(c: &mut Criterion) {
    let fleet = keyed_fleet();
    let mut group = c.benchmark_group(format!("sharded_stream_{COHORT}_instances"));
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let service = sharded_service(shards, 2);
        group.bench_with_input(BenchmarkId::new("shards", shards), &fleet, |b, fleet| {
            b.iter(|| stream_cohort(&service, std::hint::black_box(fleet)))
        });
        let report = service.shutdown();
        assert_eq!(report.fleet_size % COHORT, 0);
    }
    group.finish();
}

/// One synthetic digest, varied enough to populate every report facet.
fn digest(i: usize) -> ResultDigest {
    let outcome = if i.is_multiple_of(97) {
        DigestOutcome::Failed { message: format!("probe-{i}") }
    } else {
        DigestOutcome::Assessed {
            databases_assessed: 1 + i % 4,
            shape: [CurveShape::Flat, CurveShape::Simple, CurveShape::Complex][i % 3],
            confidence: i.is_multiple_of(5).then_some(0.15 + (i % 7) as f64 * 0.1),
            sku: Some((Arc::from(format!("SKU_{}", i % 12).as_str()), 40.0 + (i % 12) as f64)),
            eligible_recommendations: 1 + i % 6,
        }
    };
    ResultDigest {
        index: i,
        instance_name: Arc::from(format!("inst-{i}").as_str()),
        deployment: DeploymentType::SqlDb,
        month: Some(Arc::from(["Oct-21", "Nov-21", "Dec-21"][i % 3])),
        outcome,
    }
}

fn folded(n: usize) -> FleetAggregator {
    let mut agg = FleetAggregator::new();
    for i in 0..n {
        agg.accept_digest(&digest(i));
    }
    agg
}

/// Snapshot latency against a 100k-result aggregate: the legacy
/// clone-then-consume report build vs the by-ref `finish_ref` the service's
/// merge-based `report_snapshot` now uses.
fn bench_snapshot_latency(c: &mut Criterion) {
    let agg = folded(100_000);
    let mut group = c.benchmark_group("snapshot_latency_100k_results");
    group.sample_size(10);
    group.bench_function("clone_then_finish", |b| {
        b.iter(|| std::hint::black_box(agg.clone().finish()))
    });
    group.bench_function("finish_ref", |b| b.iter(|| std::hint::black_box(agg.finish_ref())));
    group.finish();
}

/// The per-assessment aggregation fold (what each worker pays per result)
/// and the per-report merge of two half-fleet shard aggregators.
fn bench_fold_and_merge(c: &mut Criterion) {
    let digests: Vec<ResultDigest> = (0..10_000).map(digest).collect();
    c.bench_function("aggregator_fold_10k_digests", |b| {
        b.iter(|| {
            let mut agg = FleetAggregator::new();
            for d in &digests {
                agg.accept_digest(std::hint::black_box(d));
            }
            agg.accepted()
        })
    });

    let left = folded(50_000);
    let right = {
        let mut agg = FleetAggregator::new();
        for i in 50_000..100_000 {
            agg.accept_digest(&digest(i));
        }
        agg
    };
    c.bench_function("aggregator_merge_two_50k_shards", |b| {
        b.iter(|| {
            let mut merged = FleetAggregator::new();
            merged.merge(std::hint::black_box(&left));
            merged.merge(std::hint::black_box(&right));
            merged.accepted()
        })
    });
}

criterion_group!(benches, bench_sharded_stream, bench_snapshot_latency, bench_fold_and_merge);
criterion_main!(benches);
