//! Simulator throughput: how many simulated years of fleet life the
//! [`FleetScheduler`] turns per wall-clock second, as the service scales
//! from one shard to four.
//!
//! Each iteration is one complete two-year simulation — staggered
//! onboarding across three regions, monthly telemetry with mid-life
//! drift for every fifth customer, a rotating price cut every six months
//! (dispatched through the change-log cursor), and idle-TTL retirement —
//! so `iters_per_sec × 2` reads directly as simulated-years/sec.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use doppler_catalog::{
    CatalogKey, CatalogSpec, CatalogVersion, DeploymentType, InMemoryCatalogProvider, PriceFeed,
    RefreshableCatalogProvider, Region,
};
use doppler_core::EngineRegistry;
use doppler_fleet::{
    DriftMonitor, EngineRoute, FleetAssessor, FleetConfig, FleetScheduler, MonitoredCustomer,
    ShardPlan, SimClock,
};
use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

const COHORT: usize = 48;
const YEARS: usize = 2;
const WORKERS: usize = 2;
const REGIONS: [(&str, f64); 3] = [("global", 1.0), ("westeurope", 1.08), ("eastasia", 1.12)];

fn window(cpu: f64) -> PerfHistory {
    PerfHistory::new()
        .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 48]))
        .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 48]))
}

/// A fully scheduled simulation, ready to run: the same calendar
/// `examples/fleet_sim.rs` uses, shrunk to bench scale.
fn scheduled_sim(shards: usize) -> FleetScheduler {
    let horizon = YEARS * 12;
    let inner = REGIONS.iter().fold(InMemoryCatalogProvider::new(), |p, &(region, multiplier)| {
        p.with_region(
            Region::new(region),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            multiplier,
        )
    });
    let provider = Arc::new(RefreshableCatalogProvider::new(Arc::new(inner)));
    let registry = Arc::new(EngineRegistry::new(
        Arc::clone(&provider) as Arc<dyn doppler_catalog::CatalogProvider>
    ));
    let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(WORKERS))
        .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
        .with_shard_plan(ShardPlan::by_region(shards));
    let mut sim = FleetScheduler::new(DriftMonitor::new(assessor), SimClock::starting(2022, 1))
        .with_provider(Arc::clone(&provider))
        .with_idle_ttl(6)
        .with_version_window(2);

    for i in 0..COHORT {
        let (region, _) = REGIONS[i % REGIONS.len()];
        let key = CatalogKey::new(DeploymentType::SqlDb, Region::new(region), CatalogVersion(1));
        let name = format!("cust-{i:04}");
        let base = 0.3 + 0.45 * ((i / REGIONS.len()) % 16) as f64;
        let onboard = i % 12;
        sim.onboard_at(
            onboard,
            MonitoredCustomer::new(&name, DeploymentType::SqlDb, window(base))
                .with_catalog_key(key),
        );
        for m in onboard + 1..(onboard + 18).min(horizon) {
            let cpu = if i % 5 == 0 && m >= onboard + 6 { base * 3.0 + 2.0 } else { base };
            sim.telemetry_at(m, &name, window(cpu));
        }
    }
    for (k, m) in (5..horizon).step_by(6).enumerate() {
        let (region, _) = REGIONS[k % REGIONS.len()];
        sim.feed_at(m, Region::new(region), PriceFeed::Multiplier(0.95));
    }
    sim
}

/// Run the whole simulated life and return the work actually done, so
/// the compiler cannot elide any month.
fn simulate(shards: usize) -> usize {
    let mut sim = scheduled_sim(shards);
    sim.run(YEARS * 12);
    let summary = sim.summary();
    let work = summary.drift_checks + summary.customers_repriced + summary.customers_retired;
    let report = sim.shutdown();
    assert!(report.schedule.is_some());
    work
}

/// Simulated-years/sec at 1, 2, and 4 shards: one complete two-year,
/// 48-customer fleet life per iteration.
fn bench_sim_years(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("fleet_sim_{YEARS}y_{COHORT}_customers"));
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| simulate(std::hint::black_box(shards)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_years);
criterion_main!(benches);
