//! Terminal rendering for the figure reproductions: every plot in the
//! paper gets a printable form (series strip-chart, ECDF, and the
//! price-performance scatter).

/// Render a numeric series as a fixed-height strip chart.
pub fn strip_chart(values: &[f64], width: usize, height: usize) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Downsample to `width` columns by bucket max (peaks matter here).
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = (((c + 1) * values.len()) / width).max(lo + 1).min(values.len());
            values[lo..hi.max(lo + 1).min(values.len())]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let lo = cols.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = cols.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut rows = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let r = (((v - lo) / span) * (height - 1) as f64).round() as usize;
        for (rr, row) in rows.iter_mut().enumerate() {
            // Fill from the bottom to the value for a solid silhouette.
            if height - 1 - rr <= r {
                row[c] = if height - 1 - rr == r { '*' } else { '.' };
            }
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>10.2} |")
        } else if i == height - 1 {
            format!("{lo:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Render `(x, y)` points (e.g. a price-performance curve with y in
/// `[0, 1]`) as a labelled scatter, one row per point.
pub fn curve_table(points: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    let max_cost = points.iter().map(|p| p.1).fold(1e-12, f64::max);
    for (label, cost, score) in points {
        let bar = (score * 40.0).round() as usize;
        out.push_str(&format!(
            "{label:>12} ${cost:>10.2}/mo |{}{}| {score:.3}\n",
            "#".repeat(bar),
            " ".repeat(40usize.saturating_sub(bar)),
        ));
        let _ = max_cost;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_chart_has_requested_height() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let chart = strip_chart(&values, 60, 8);
        assert_eq!(chart.lines().count(), 8);
    }

    #[test]
    fn strip_chart_of_empty_is_empty() {
        assert!(strip_chart(&[], 10, 5).is_empty());
    }

    #[test]
    fn strip_chart_marks_peak_row() {
        let mut v = vec![0.0; 50];
        v[25] = 10.0;
        let chart = strip_chart(&v, 50, 5);
        let first_row = chart.lines().next().unwrap();
        assert!(first_row.contains('*'), "{chart}");
    }

    #[test]
    fn curve_table_lists_every_point() {
        let pts = vec![("GP2".to_string(), 368.0, 0.5), ("GP4".to_string(), 736.0, 1.0)];
        let t = curve_table(&pts);
        assert_eq!(t.lines().count(), 2);
        assert!(t.contains("GP2"));
        assert!(t.contains("1.000"));
    }

    #[test]
    fn constant_series_renders_without_panic() {
        let chart = strip_chart(&[5.0; 30], 30, 4);
        assert_eq!(chart.lines().count(), 4);
    }
}
