//! The §5.2 back-testing loop.
//!
//! "We accomplish this by leveraging internal data we have on successfully
//! migrated customers in Azure and assume that customers that have fixed
//! their cloud SKU for at least 40 days have selected the optimal SKU for
//! their workload needs. We also exclude over-provisioned customers … The
//! frequency at which Doppler can match the same (fixed) SKU as these
//! customers is taken as one proxy to measure the utility (accuracy) of
//! Doppler."

use doppler_catalog::{azure_paas_catalog, Catalog, CatalogSpec, DeploymentType, ServiceTier};
use doppler_core::{DopplerEngine, EngineConfig, TrainingRecord};
use doppler_workload::{CloudCustomer, PopulationSpec};

/// Accuracy per service tier (the "micro accuracy" columns of Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierAccuracy {
    pub matches: usize,
    pub total: usize,
}

impl TierAccuracy {
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.matches as f64 / self.total as f64
        }
    }
}

/// Outcome of one back-test run.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestResult {
    pub deployment: DeploymentType,
    /// Customers scored (over-provisioned ones excluded).
    pub n_scored: usize,
    /// Customers excluded as over-provisioned.
    pub n_excluded: usize,
    pub matches: usize,
    pub gp: TierAccuracy,
    pub bc: TierAccuracy,
}

impl BacktestResult {
    /// Overall accuracy over scored customers.
    pub fn accuracy(&self) -> f64 {
        if self.n_scored == 0 {
            f64::NAN
        } else {
            self.matches as f64 / self.n_scored as f64
        }
    }
}

/// The standard catalog every experiment uses.
pub fn catalog() -> Catalog {
    azure_paas_catalog(&CatalogSpec::default())
}

/// Generate a cohort, train the engine on its non-over-provisioned members,
/// and back-test. `include_over_provisioned` keeps the over-provisioned
/// segment in scoring (the "before exclusion" accuracy the paper contrasts
/// with Table 5).
pub fn backtest(
    spec: &PopulationSpec,
    engine_config: EngineConfig,
    include_over_provisioned: bool,
) -> BacktestResult {
    let cat = catalog();
    let customers = spec.customers(&cat);
    backtest_customers(&cat, &customers, engine_config, include_over_provisioned)
}

/// Back-test over an already-generated cohort (lets callers reuse one
/// cohort across engine configurations, as Table 4 does).
pub fn backtest_customers(
    cat: &Catalog,
    customers: &[CloudCustomer],
    engine_config: EngineConfig,
    include_over_provisioned: bool,
) -> BacktestResult {
    // Train on the well-provisioned segment only.
    let records: Vec<TrainingRecord> = customers
        .iter()
        .filter(|c| !c.over_provisioned)
        .map(|c| TrainingRecord {
            history: c.history.clone(),
            chosen_sku: c.chosen_sku.clone(),
            file_layout: c.file_layout.clone(),
        })
        .collect();
    let engine = DopplerEngine::train(cat.clone(), engine_config, &records);

    let mut result = BacktestResult {
        deployment: engine_config.deployment,
        n_scored: 0,
        n_excluded: 0,
        matches: 0,
        gp: TierAccuracy::default(),
        bc: TierAccuracy::default(),
    };
    for c in customers {
        if c.over_provisioned && !include_over_provisioned {
            result.n_excluded += 1;
            continue;
        }
        let rec = engine.recommend(&c.history, c.file_layout.as_ref());
        let hit = rec.sku_id.as_deref() == Some(c.chosen_sku.0.as_str());
        result.n_scored += 1;
        if hit {
            result.matches += 1;
        }
        let tier = match c.chosen_tier {
            ServiceTier::GeneralPurpose => &mut result.gp,
            ServiceTier::BusinessCritical => &mut result.bc,
        };
        tier.total += 1;
        if hit {
            tier.matches += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_core::engine::EngineConfig;

    #[test]
    fn db_backtest_reaches_high_accuracy_on_a_small_cohort() {
        let spec = PopulationSpec { days: 4.0, ..PopulationSpec::sql_db(120, 7) };
        let r = backtest(&spec, EngineConfig::production(DeploymentType::SqlDb), false);
        assert!(r.n_scored > 80);
        assert!(
            r.accuracy() > 0.75,
            "accuracy {} ({}ic/{} scored)",
            r.accuracy(),
            r.matches,
            r.n_scored
        );
    }

    #[test]
    fn excluding_over_provisioned_raises_accuracy() {
        let spec = PopulationSpec { days: 4.0, ..PopulationSpec::sql_db(150, 13) };
        let with = backtest(&spec, EngineConfig::production(DeploymentType::SqlDb), true);
        let without = backtest(&spec, EngineConfig::production(DeploymentType::SqlDb), false);
        assert!(
            without.accuracy() > with.accuracy(),
            "excluded {} !> included {}",
            without.accuracy(),
            with.accuracy()
        );
    }

    #[test]
    fn tier_totals_partition_the_scored_set() {
        let spec = PopulationSpec { days: 4.0, ..PopulationSpec::sql_db(100, 3) };
        let r = backtest(&spec, EngineConfig::production(DeploymentType::SqlDb), false);
        assert_eq!(r.gp.total + r.bc.total, r.n_scored);
        assert_eq!(r.gp.matches + r.bc.matches, r.matches);
    }
}
