//! Calibration diagnostics: where do back-test mismatches concentrate?

use std::collections::BTreeMap;

use doppler_bench::backtest::catalog;
use doppler_catalog::DeploymentType;
use doppler_core::{DopplerEngine, EngineConfig, TrainingRecord};
use doppler_workload::PopulationSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let deployment = if args.get(2).map(|s| s == "mi").unwrap_or(false) {
        DeploymentType::SqlMi
    } else {
        DeploymentType::SqlDb
    };
    let spec = match deployment {
        DeploymentType::SqlDb => PopulationSpec { days: 7.0, ..PopulationSpec::sql_db(n, 42) },
        DeploymentType::SqlMi => PopulationSpec { days: 7.0, ..PopulationSpec::sql_mi(n, 42) },
    };
    let cat = catalog();
    let customers = spec.customers(&cat);
    let records: Vec<TrainingRecord> = customers
        .iter()
        .filter(|c| !c.over_provisioned)
        .map(|c| TrainingRecord {
            history: c.history.clone(),
            chosen_sku: c.chosen_sku.clone(),
            file_layout: c.file_layout.clone(),
        })
        .collect();
    let engine = DopplerEngine::train(cat.clone(), EngineConfig::production(deployment), &records);

    let mut by_shape: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut group_match: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut mismatch_examples = Vec::new();
    for c in &customers {
        if c.over_provisioned {
            continue;
        }
        let rec = engine.recommend(&c.history, c.file_layout.as_ref());
        let hit = rec.sku_id.as_deref() == Some(c.chosen_sku.0.as_str());
        let shape = format!("{:?}/lat={}", c.shape_class, c.latency_critical);
        let e = by_shape.entry(shape).or_default();
        e.1 += 1;
        if hit {
            e.0 += 1;
        }
        // ground-truth group vs assigned group
        let truth =
            c.negotiability.iter().enumerate().fold(0usize, |a, (i, &b)| a | ((b as usize) << i));
        *group_match.entry((truth, rec.group)).or_default() += 1;
        if !hit && mismatch_examples.len() < 12 && c.latency_critical {
            mismatch_examples.push(format!(
                "id={} off_model={} shape={:?} bits_true={:?} bits_est={:?} chosen={} rec={:?} p_g={:.4} score@chosen={:?}",
                c.id,
                c.off_model,
                c.shape_class,
                c.negotiability,
                rec.bits,
                c.chosen_sku,
                rec.sku_id,
                rec.preferred_p,
                rec.curve.point_for(c.chosen_sku.0.as_str()).map(|p| p.score),
            ));
        }
    }
    println!("accuracy by shape:");
    for (k, (m, t)) in &by_shape {
        println!("  {k:<24} {m}/{t} = {:.3}", *m as f64 / *t as f64);
    }
    let agree: usize = group_match.iter().filter(|((a, b), _)| a == b).map(|(_, &v)| v).sum();
    let total: usize = group_match.values().sum();
    println!("profiler group recovery: {agree}/{total} = {:.3}", agree as f64 / total as f64);
    println!("mismatch examples:");
    for m in mismatch_examples {
        println!("  {m}");
    }

    let r = doppler_bench::backtest::backtest_customers(
        &cat,
        &customers,
        EngineConfig::production(deployment),
        false,
    );
    println!(
        "TABLE5 {:?}: accuracy {:.3} (GP {:.3} / BC {:.3}), scored {}, excluded {}",
        deployment,
        r.accuracy(),
        r.gp.accuracy(),
        r.bc.accuracy(),
        r.n_scored,
        r.n_excluded
    );
}
