//! Paired observability-overhead probe: the authoritative check that
//! instrumentation stays within a few percent of the no-op path.
//!
//! The `obs_bench` criterion rows measure `instrumentation/noop` and
//! `instrumentation/enabled` in separate windows, minutes apart on a busy
//! CI container — run-to-run drift there (±10 % and more) swamps the
//! effect being measured. This probe interleaves the two modes
//! round-robin and compares medians, so machine drift hits both sides
//! equally:
//!
//! ```text
//! cargo run --release -p doppler-bench --bin overhead_probe
//! ```
//!
//! Env knobs: `COHORT` (default 1000 customers), `ROUNDS` (default 10;
//! the first round is warm-up and discarded), `FLEET_WORKERS` (default 4).
//! Exits non-zero when the median overhead exceeds `MAX_OVERHEAD_PCT`
//! (5 %), so CI can gate on it directly.

use std::time::Instant;

use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig};
use doppler_fleet::{cloud_fleet, FleetAssessor, FleetConfig, FleetRequest};
use doppler_obs::ObsRegistry;
use doppler_workload::PopulationSpec;

const MAX_OVERHEAD_PCT: f64 = 5.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let cohort_size = env_usize("COHORT", 1000);
    let rounds = env_usize("ROUNDS", 10).max(2);
    let workers = env_usize("FLEET_WORKERS", 4);

    let catalog = azure_paas_catalog(&CatalogSpec::default());
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(cohort_size, 17) };
    let fleet: Vec<FleetRequest> = cloud_fleet(&spec, &catalog, None).collect();
    let assessor = |obs: &ObsRegistry| {
        let engine = DopplerEngine::untrained(
            catalog.clone(),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let mut config = FleetConfig::with_workers(workers);
        config.keep_results = false;
        FleetAssessor::new(engine, config).with_obs(obs)
    };

    let mut noop = Vec::new();
    let mut enabled = Vec::new();
    for round in 0..rounds {
        for mode in 0..2 {
            let obs = if mode == 0 { ObsRegistry::disabled() } else { ObsRegistry::enabled() };
            let a = assessor(&obs);
            let t0 = Instant::now();
            std::hint::black_box(a.assess(fleet.clone()).report);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            // Round 0 is warm-up: caches, lazy statics, allocator pools.
            if round > 0 {
                if mode == 0 {
                    noop.push(ms)
                } else {
                    enabled.push(ms)
                }
            }
        }
    }
    noop.sort_by(f64::total_cmp);
    enabled.sort_by(f64::total_cmp);
    let median = |v: &[f64]| v[v.len() / 2];
    let overhead_pct = (median(&enabled) / median(&noop) - 1.0) * 100.0;
    println!(
        "obs overhead probe: {cohort_size} customers x {} measured rounds on {workers} worker(s)",
        rounds - 1
    );
    println!(
        "  noop    median {:>8.2} ms   (spread {:.2}..{:.2})",
        median(&noop),
        noop[0],
        noop[noop.len() - 1]
    );
    println!(
        "  enabled median {:>8.2} ms   (spread {:.2}..{:.2})",
        median(&enabled),
        enabled[0],
        enabled[enabled.len() - 1]
    );
    println!("  overhead: {overhead_pct:.2}% (budget {MAX_OVERHEAD_PCT:.0}%)");
    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!("FAIL: instrumentation overhead exceeds the {MAX_OVERHEAD_PCT:.0}% budget");
        std::process::exit(1);
    }
}
