//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p doppler-bench --release --bin reproduce -- all
//! cargo run -p doppler-bench --release --bin reproduce -- table5 --cohort 1200 --seed 7
//! cargo run -p doppler-bench --release --bin reproduce -- list
//! ```
//!
//! Every experiment is deterministic in `--seed`; `--cohort` trades
//! fidelity for runtime (the defaults run the full set in a few minutes).

use doppler_bench::experiments::{registry, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::default();
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cohort" | "--n" => {
                i += 1;
                scale.cohort = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cohort needs a number"));
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        usage::<()>("no experiment named");
    }

    let all = registry();
    if targets.iter().any(|t| t == "list") {
        println!("available experiments:");
        for (id, description, _) in &all {
            println!("  {id:<10} {description}");
        }
        return;
    }
    let run_all = targets.iter().any(|t| t == "all");
    let mut ran = 0;
    for (id, description, runner) in &all {
        if run_all || targets.iter().any(|t| t == id) {
            println!("================================================================");
            println!("{description}   [{id}, cohort={}, seed={}]", scale.cohort, scale.seed);
            println!("================================================================");
            let started = std::time::Instant::now();
            println!("{}", runner(&scale));
            println!("({id} completed in {:.1}s)\n", started.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        usage::<()>(&format!("unknown experiment(s): {targets:?} — try `list`"));
    }
}

fn usage<T>(problem: &str) -> T {
    eprintln!("error: {problem}");
    eprintln!("usage: reproduce [all|list|<experiment-id>...] [--cohort N] [--seed S]");
    std::process::exit(2);
}
