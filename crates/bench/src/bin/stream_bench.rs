//! Memory-bounded streaming bench: one million synthetic customers pushed
//! through a sharded `FleetService` without ever materialising the cohort
//! or its results.
//!
//! Requests are synthesised on the fly from a small pool of Arc-shared
//! telemetry windows (a refcount bump per submission, not a buffer copy),
//! results are drained as they complete with `keep_results = false`, and
//! the report is built by merging per-shard aggregates at the end — so
//! resident memory stays flat no matter how many customers stream through.
//! `VmHWM` from `/proc/self/status` is asserted against a hard budget to
//! keep it that way.
//!
//! ```text
//! cargo run --release -p doppler-bench --bin stream_bench            # 1M
//! cargo run --release -p doppler-bench --bin stream_bench -- --quick # 100k
//! ```
//!
//! Env knobs: `STREAM_CUSTOMERS` (overrides the cohort size),
//! `FLEET_WORKERS` (default 2, per shard), `SHARD_SWEEP` (default
//! `1,2,4`), `RSS_BUDGET_MB` (default 4096; exits non-zero past it),
//! `STREAM_JSON_LOG` (append JSON-lines rows for the bench trajectory).
//!
//! Row schema (one JSON object per line, `BENCH_pr8.json` trajectory):
//! `{"label":"stream_1m_customers/shards/4","customers":1000000,
//!   "elapsed_s":..,"throughput_per_s":..,"ns_per_iter":..,
//!   "iters_per_sec":..,"vm_hwm_mib":..}`
//! (`ns_per_iter`/`iters_per_sec` are per-customer, matching the criterion
//! rows in the rest of the file.)

use std::io::Write as _;
use std::sync::Arc;

use doppler_catalog::{
    CatalogKey, CatalogSpec, CatalogVersion, DeploymentType, InMemoryCatalogProvider, Region,
};
use doppler_core::EngineRegistry;
use doppler_dma::preprocess::PreprocessedInstance;
use doppler_dma::AssessmentRequest;
use doppler_fleet::{
    EngineRoute, FleetAssessor, FleetConfig, FleetRequest, FleetService, ShardPlan, TicketQueue,
};
use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

const REGIONS: usize = 8;
const WINDOW_POOL: usize = 64;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Peak resident set (`VmHWM`) in MiB, from the kernel's own accounting.
fn vm_hwm_mib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

fn regions() -> Vec<Region> {
    (0..REGIONS).map(|i| Region::new(format!("region-{i}"))).collect()
}

/// The shared telemetry pool: every customer reuses one of these windows,
/// so a submission clones two `Arc<[f64]>` handles instead of re-allocating
/// a multi-sample buffer per customer.
fn window_pool() -> Vec<PerfHistory> {
    (0..WINDOW_POOL)
        .map(|i| {
            let cpu = 0.3 + (i % 9) as f64 * 0.7 + (i / 9) as f64 * 0.05;
            PerfHistory::new()
                .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 144]))
                .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 144]))
        })
        .collect()
}

fn request(i: usize, pool: &[PerfHistory], regions: &[Region]) -> FleetRequest {
    let history = pool[i % pool.len()].clone();
    FleetRequest::new(
        DeploymentType::SqlDb,
        AssessmentRequest {
            instance_name: format!("cust-{i}"),
            input: PreprocessedInstance {
                instance: history.clone(),
                databases: vec![(format!("cust-{i}/db0"), history)],
                file_sizes_gib: vec![],
            },
            confidence: None,
        },
    )
    .with_month(["Oct-21", "Nov-21", "Dec-21"][i % 3])
    .with_catalog_key(CatalogKey::new(
        DeploymentType::SqlDb,
        regions[i % regions.len()].clone(),
        CatalogVersion::INITIAL,
    ))
}

fn service(shards: usize, workers: usize) -> FleetService {
    let provider = regions().into_iter().fold(InMemoryCatalogProvider::production(), |p, r| {
        p.with_region(r, CatalogVersion::INITIAL, &CatalogSpec::default(), 1.0)
    });
    let registry = Arc::new(EngineRegistry::new(Arc::new(provider)));
    let config = FleetConfig { workers, queue_depth: workers * 8, keep_results: false };
    FleetAssessor::over_registry(registry, config)
        .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
        .with_shard_plan(ShardPlan::by_region(shards))
        .into_service()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let customers = env_usize("STREAM_CUSTOMERS", if quick { 100_000 } else { 1_000_000 });
    let workers = env_usize("FLEET_WORKERS", 2);
    let rss_budget_mib = env_usize("RSS_BUDGET_MB", 4096) as f64;
    let sweep: Vec<usize> = std::env::var("SHARD_SWEEP")
        .unwrap_or_else(|_| "1,2,4".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let pool = window_pool();
    let regions = regions();
    let mut rows = Vec::new();
    println!("streaming {customers} customers, {workers} worker(s) per shard");

    for &shards in &sweep {
        let service = service(shards, workers);
        let mut tickets = TicketQueue::new();
        let mut done = 0usize;
        let t0 = std::time::Instant::now();
        for i in 0..customers {
            let ticket =
                service.submit(request(i, &pool, &regions)).unwrap_or_else(|_| unreachable!());
            tickets.push(ticket);
            // Drain as we go: in-flight results stay bounded by the queue
            // depth, never by the cohort size.
            while tickets.try_next().is_some() {
                done += 1;
            }
        }
        while tickets.next_blocking().is_some() {
            done += 1;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let report = service.shutdown();
        assert_eq!(done, customers, "every ticket resolved");
        assert_eq!(report.fleet_size, customers, "report covers the fleet");
        assert_eq!(report.failed, 0, "no assessment failures: {:?}", report.failures);

        let hwm = vm_hwm_mib();
        let per_customer_ns = elapsed * 1e9 / customers as f64;
        println!(
            "  shards {shards}: {elapsed:>7.2} s   {:>9.0} customers/s   VmHWM {hwm:.0} MiB",
            customers as f64 / elapsed
        );
        rows.push(format!(
            concat!(
                "{{\"label\":\"stream_{}_customers/shards/{}\",\"customers\":{},",
                "\"elapsed_s\":{:.3},\"throughput_per_s\":{:.0},\"ns_per_iter\":{:.1},",
                "\"iters_per_sec\":{:.3},\"vm_hwm_mib\":{:.0}}}"
            ),
            if customers == 1_000_000 { "1m".to_string() } else { format!("{customers}") },
            shards,
            customers,
            elapsed,
            customers as f64 / elapsed,
            per_customer_ns,
            1e9 / per_customer_ns,
            hwm,
        ));
    }

    if let Ok(path) = std::env::var("STREAM_JSON_LOG") {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open STREAM_JSON_LOG");
        for row in &rows {
            writeln!(file, "{row}").expect("append row");
        }
    } else {
        for row in &rows {
            println!("{row}");
        }
    }

    let hwm = vm_hwm_mib();
    println!("peak RSS (VmHWM): {hwm:.0} MiB (budget {rss_budget_mib:.0} MiB)");
    if hwm > rss_budget_mib {
        eprintln!("FAIL: peak RSS exceeds the {rss_budget_mib:.0} MiB budget");
        std::process::exit(1);
    }
}
