//! Figure reproductions (Figures 1, 4, 5, 6, 8, 9, 10, 11, 12, 13).

use std::fmt::Write as _;

use doppler_catalog::{DeploymentType, SkuId};
use doppler_core::{
    detect_drift, ConfidenceConfig, CurveHeuristic, CurveShape, DopplerEngine, EngineConfig,
    PricePerformanceCurve, TrainingRecord,
};
use doppler_replay::replay;
use doppler_stats::{Ecdf, SeededRng, Summary};
use doppler_telemetry::PerfDimension;
use doppler_workload::{
    drift_scenario, generate, onprem_population, BenchmarkFragment, BenchmarkKind, PopulationSpec,
    SynthesizedWorkload, WorkloadArchetype,
};

use crate::ascii::{curve_table, strip_chart};
use crate::backtest::catalog;
use crate::experiments::ExperimentScale;

fn curve_rows(curve: &PricePerformanceCurve) -> Vec<(String, f64, f64)> {
    curve.points().iter().map(|p| (p.sku_id.clone(), p.monthly_cost, p.score)).collect()
}

/// Figure 1: the six example SKU rows.
pub fn figure1(_scale: &ExperimentScale) -> String {
    let cat = catalog();
    let mut out = String::from(
        "Figure 1 — example Azure SQL DB SKU offerings\n\
         Tier vCores MaxData(GB) MaxMem(GB) MaxIOPS  MaxLog(MB/s) MinLat(ms) Price($/h)\n",
    );
    for id in ["DB_BC_2", "DB_GP_2", "DB_BC_4", "DB_GP_4", "DB_BC_6", "DB_GP_6"] {
        let s = cat.get(&SkuId(id.into())).expect("known id");
        let _ = writeln!(
            out,
            "{:<4} {:>6} {:>11} {:>10.1} {:>8} {:>12.1} {:>10} {:>10.2}",
            s.tier.to_string(),
            s.vcores(),
            s.caps.max_data_gb,
            s.caps.memory_gb,
            s.caps.iops,
            s.caps.log_rate_mbps,
            s.caps.min_io_latency_ms,
            s.price_per_hour
        );
    }
    out
}

/// Figure 4: a spiky-CPU workload's trace (a) and its price-performance
/// curve (b).
pub fn figure4(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let history = generate(&WorkloadArchetype::SpikyCpu.spec(12.0, 14.0), scale.seed);
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let curve = PricePerformanceCurve::generate(&history, &skus);
    let mut out = String::from("Figure 4a — CPU usage by time (vCores, 14 days)\n");
    out.push_str(&strip_chart(history.values(PerfDimension::Cpu).unwrap(), 96, 10));
    out.push_str("\nFigure 4b — price-performance curve\n");
    out.push_str(&curve_table(&curve_rows(&curve)));
    let _ = writeln!(out, "curve shape: {:?}", curve.classify());
    out
}

/// Figure 5: the complex curve where the three heuristics disagree.
pub fn figure5(scale: &ExperimentScale) -> String {
    let cat = catalog();
    // A workload engineered for a complex curve: several dimensions spiking
    // at different levels so the envelope climbs in stages.
    let spec = doppler_workload::WorkloadSpec::new("fig5", 14.0)
        .with_dim(PerfDimension::Cpu, doppler_workload::DimensionProfile::spiky(3.0, 9.0, 4.0, 2))
        .with_dim(
            PerfDimension::Memory,
            doppler_workload::DimensionProfile::spiky(20.0, 45.0, 2.0, 3),
        )
        .with_dim(
            PerfDimension::Iops,
            doppler_workload::DimensionProfile::spiky(1500.0, 2800.0, 1.5, 2),
        )
        .with_dim(
            PerfDimension::IoLatency,
            doppler_workload::DimensionProfile::steady(6.0, 0.3).with_floor(0.5),
        );
    let history = generate(&spec, scale.seed);
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let curve = PricePerformanceCurve::generate(&history, &skus);

    let mut out = String::from("Figure 5 — a complex price-performance curve\n");
    out.push_str(&curve_table(&curve_rows(&curve)));
    let picks = [
        ("Largest Performance Increase", CurveHeuristic::largest_performance_increase()),
        ("Largest Slope", CurveHeuristic::LargestSlope),
        ("Performance Threshold (95%)", CurveHeuristic::performance_threshold_95()),
    ];
    out.push_str("\nHeuristic selections:\n");
    let mut selected = Vec::new();
    for (name, h) in picks {
        let pick = h.select(&curve).unwrap_or_else(|| "(none)".into());
        let _ = writeln!(out, "  {name:<30} -> {pick}");
        selected.push(pick);
    }
    selected.dedup();
    let _ = writeln!(
        out,
        "Distinct answers from 3 heuristics: {} (the paper's Figure 5 pathology)",
        selected.len()
    );
    out
}

/// Figure 6: ECDFs and raw time series for contrasting archetypes.
pub fn figure6(scale: &ExperimentScale) -> String {
    let mut out =
        String::from("Figure 6 — ECDFs (top) and raw series (bottom) per workload type\n");
    for (name, arch) in [
        ("steady", WorkloadArchetype::Steady),
        ("spiky", WorkloadArchetype::SpikyCpu),
        ("diurnal", WorkloadArchetype::Diurnal),
        ("bursty-io", WorkloadArchetype::BurstyIo),
    ] {
        let h = generate(&arch.spec(8.0, 7.0), scale.seed ^ name.len() as u64);
        let cpu = h.values(PerfDimension::Cpu).unwrap();
        let e = Ecdf::new(cpu).expect("nonempty");
        let s = Summary::of(cpu).expect("nonempty");
        let _ =
            writeln!(out, "\n[{name}] CPU mean {:.2}, p95 {:.2}, max {:.2}", s.mean, s.p95, s.max);
        out.push_str("  ECDF (x: vCores, y: F(x)):\n");
        for (x, f) in e.grid(8) {
            let bar = (f * 40.0).round() as usize;
            let _ = writeln!(out, "  {x:>8.2} |{}", "#".repeat(bar));
        }
        out.push_str("  raw series:\n");
        out.push_str(&strip_chart(cpu, 80, 6));
    }
    out
}

/// Figure 8: the four canonical curve shapes.
pub fn figure8(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let mut out = String::from("Figure 8 — major types of price-performance curves\n");
    let cases: [(&str, doppler_workload::WorkloadSpec); 4] = [
        ("(a) Flat", WorkloadArchetype::Idle.spec(1.0, 7.0)),
        ("(b) Simple", WorkloadArchetype::HardStep.spec(14.0, 7.0)),
        ("(c) Complex I", WorkloadArchetype::SpikyCpu.spec(10.0, 7.0)),
        ("(d) Complex II", WorkloadArchetype::OlapLike.spec(8.0, 7.0)),
    ];
    for (name, spec) in cases {
        let h = generate(&spec, scale.seed);
        let curve = PricePerformanceCurve::generate(&h, &skus);
        let _ = writeln!(out, "\n{name} — classified {:?}", curve.classify());
        // Print a compact curve: every point collapsed to score buckets.
        out.push_str(&curve_table(&curve_rows(&curve).into_iter().take(12).collect::<Vec<_>>()));
    }
    out
}

/// Figure 9: breakdown of curve types per cohort.
pub fn figure9(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let mut out = String::from(
        "Figure 9 — curve-type breakdown\n\
         Cohort        Flat     Simple   Complex\n",
    );
    let mut classify_cohort =
        |label: &str,
         histories: Vec<(doppler_telemetry::PerfHistory, Option<doppler_catalog::FileLayout>)>,
         deployment| {
            let engine =
                DopplerEngine::untrained(cat.clone(), EngineConfig::production(deployment));
            let mut counts = [0usize; 3];
            let total = histories.len();
            for (h, layout) in histories {
                let (curve, _) = engine.curve_for(&h, layout.as_ref());
                match curve.classify() {
                    CurveShape::Flat => counts[0] += 1,
                    CurveShape::Simple => counts[1] += 1,
                    CurveShape::Complex => counts[2] += 1,
                }
            }
            let pct = |c: usize| 100.0 * c as f64 / total.max(1) as f64;
            let _ = writeln!(
                out,
                "{label:<12} {:>6.1}%  {:>6.1}%  {:>6.1}%",
                pct(counts[0]),
                pct(counts[1]),
                pct(counts[2])
            );
        };
    let db = PopulationSpec::sql_db(scale.cohort, scale.seed).customers(&cat);
    classify_cohort(
        "SQL DB",
        db.into_iter().map(|c| (c.history, None)).collect(),
        DeploymentType::SqlDb,
    );
    let mi = PopulationSpec::sql_mi(scale.cohort, scale.seed ^ 1).customers(&cat);
    classify_cohort(
        "SQL MI",
        mi.into_iter().map(|c| (c.history, c.file_layout)).collect(),
        DeploymentType::SqlMi,
    );
    let onprem = onprem_population(scale.cohort.min(257), 7.0, scale.seed ^ 2);
    classify_cohort(
        "On-prem",
        onprem.into_iter().map(|c| (c.history, None)).collect(),
        DeploymentType::SqlDb,
    );
    out
}

/// Figure 10: confidence-score distribution against the bootstrap window
/// length, over 30-day histories.
pub fn figure10(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let n = (scale.cohort / 20).clamp(8, 30);
    let spec = PopulationSpec {
        days: 30.0,
        // Confidence is interesting on non-trivial workloads: force complex.
        shape_weights: [0.0, 0.0, 1.0],
        ..PopulationSpec::sql_db(n, scale.seed)
    };
    let customers = spec.customers(&cat);
    let records: Vec<TrainingRecord> = customers
        .iter()
        .map(|c| TrainingRecord {
            history: c.history.clone(),
            chosen_sku: c.chosen_sku.clone(),
            file_layout: None,
        })
        .collect();
    let engine = DopplerEngine::train(
        cat.clone(),
        EngineConfig::production(DeploymentType::SqlDb),
        &records,
    );

    let mut out = String::from(
        "Figure 10 — confidence score vs bootstrap window (30-day histories)\n\
         Window     mean   p25    median p75\n",
    );
    for (label, hours) in
        [("6 hours", 6.0), ("1 day", 24.0), ("3 days", 72.0), ("1 week", 168.0), ("2 weeks", 336.0)]
    {
        let window_samples = (hours * 6.0) as usize;
        let scores: Vec<f64> = customers
            .iter()
            .map(|c| {
                let rec = engine.recommend_with_confidence(
                    &c.history,
                    None,
                    &ConfidenceConfig { replicates: 20, window_samples, seed: scale.seed },
                );
                rec.confidence.unwrap_or(0.0)
            })
            .collect();
        let s = Summary::of(&scores).expect("nonempty");
        let _ =
            writeln!(out, "{label:<10} {:.3}  {:.3}  {:.3}  {:.3}", s.mean, s.p25, s.median, s.p75);
    }
    out
}

/// Figure 11: price-performance curves before and after a SKU change.
pub fn figure11(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let scenario = drift_scenario(7.0, scale.seed);
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let report = detect_drift(&scenario.history, scenario.change_point, &skus, 0.0);
    let mut out = String::from("Figure 11 — curves before (top) and after (bottom) a SKU change\n");
    out.push_str("before:\n");
    out.push_str(&curve_table(
        &curve_rows(&report.before_curve).into_iter().take(10).collect::<Vec<_>>(),
    ));
    out.push_str("after:\n");
    out.push_str(&curve_table(
        &curve_rows(&report.after_curve).into_iter().take(10).collect::<Vec<_>>(),
    ));
    let _ = writeln!(
        out,
        "recommendation before: {:?}, after: {:?} (changed: {})",
        report.before_sku, report.after_sku, report.changed
    );
    let _ = writeln!(
        out,
        "throttling if the customer had kept the old SKU: {:.1}% (paper: >40%)",
        report.throttle_if_unchanged * 100.0
    );
    out
}

/// The synthesized workload of §5.4 sized to make SKU2 the knee.
pub fn synth_workload() -> SynthesizedWorkload {
    SynthesizedWorkload {
        fragments: vec![
            BenchmarkFragment {
                kind: BenchmarkKind::TpcC,
                scale_factor: 1.0,
                query_frequency: 1.0,
                concurrency: 24,
            },
            BenchmarkFragment {
                kind: BenchmarkKind::TpcH,
                scale_factor: 1.0,
                query_frequency: 1.0,
                concurrency: 3,
            },
            BenchmarkFragment {
                kind: BenchmarkKind::Ycsb,
                scale_factor: 1.0,
                query_frequency: 0.5,
                concurrency: 10,
            },
        ],
        days: 0.3, // the paper's 7-hour replay window
        burstiness: 0.16,
        data_size_gb: 400.0,
    }
}

/// Figure 12: the synthesized workload's curve over the Table 6 SKUs.
pub fn figure12(scale: &ExperimentScale) -> String {
    let demand = synth_workload().demand_trace(scale.seed);
    let skus = doppler_catalog::replay_skus();
    let refs: Vec<&doppler_catalog::Sku> = skus.iter().collect();
    let curve = PricePerformanceCurve::generate(&demand, &refs);
    let mut out =
        String::from("Figure 12 — price-performance curve for the synthesized workload\n");
    out.push_str(&curve_table(&curve_rows(&curve)));
    let pick = doppler_core::matching::select_for_p(&curve, 0.10);
    let _ = writeln!(
        out,
        "Doppler selection at a 10% tolerance: {} (paper: SKU2)",
        pick.map(|p| p.sku_id.clone()).unwrap_or_default()
    );
    out
}

/// Figure 13: replayed counters on the four Table 6 SKUs.
pub fn figure13(scale: &ExperimentScale) -> String {
    let demand = synth_workload().demand_trace(scale.seed);
    let mut out = String::from("Figure 13 — synthesized workload replayed on SKU1-SKU4\n");
    let mut rng = SeededRng::new(scale.seed);
    let _ = rng.unit();
    for sku in doppler_catalog::replay_skus() {
        let r = replay(&demand, &sku);
        let _ = writeln!(
            out,
            "\n[{}] mean vCores {:.2} (cap {}), mean latency {:.2} ms, p95 latency {:.2} ms, \
             throttled {:.1}% of ticks",
            r.sku_id,
            r.mean_vcores,
            sku.caps.vcores,
            r.mean_latency_ms,
            r.p95_latency_ms,
            r.throttle_fraction * 100.0
        );
        out.push_str("  used vCores:\n");
        out.push_str(&strip_chart(r.observed.values(PerfDimension::Cpu).unwrap(), 72, 5));
        out.push_str("  observed latency (ms):\n");
        out.push_str(&strip_chart(r.observed.values(PerfDimension::IoLatency).unwrap(), 72, 5));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale { cohort: 40, seed: 11 }
    }

    #[test]
    fn figure1_reprints_the_six_rows() {
        let f = figure1(&tiny());
        assert_eq!(f.lines().count(), 2 + 6);
        assert!(f.contains("BC"));
        assert!(f.contains("GP"));
    }

    #[test]
    fn figure5_heuristics_disagree() {
        let f = figure5(&tiny());
        assert!(
            f.contains("Distinct answers from 3 heuristics: 2")
                || f.contains("Distinct answers from 3 heuristics: 3"),
            "{f}"
        );
    }

    #[test]
    fn figure8_produces_all_shapes() {
        let f = figure8(&tiny());
        assert!(f.contains("Flat"), "{f}");
        assert!(f.contains("Simple"), "{f}");
        assert!(f.contains("Complex"), "{f}");
    }

    #[test]
    fn figure11_detects_the_change() {
        let f = figure11(&tiny());
        assert!(f.contains("changed: true"), "{f}");
        // The paper's §5.2.3 customer: GP 2 cores before, BC 6 cores after.
        assert!(f.contains("before: Some(\"DB_GP_2\"), after: Some(\"DB_BC_6\")"), "{f}");
    }

    #[test]
    fn figure12_selects_sku2() {
        let f = figure12(&tiny());
        assert!(f.contains("SKU2"), "{f}");
    }
}
