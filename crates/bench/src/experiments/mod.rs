//! One reproduction function per table and figure of the paper's
//! evaluation. Each returns the formatted rows/series the paper reports;
//! EXPERIMENTS.md records the paper-vs-measured comparison.

pub mod figures;
pub mod sections;
pub mod tables;

/// Experiment scale knobs shared by the reproductions.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Cohort size per deployment for the back-testing experiments.
    pub cohort: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> ExperimentScale {
        ExperimentScale { cohort: 600, seed: 42 }
    }
}

/// A reproduction runner.
pub type ExperimentFn = fn(&ExperimentScale) -> String;

/// The experiment registry: `(id, paper element, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        ("table1", "Table 1: DMA adoption counters", tables::table1 as ExperimentFn),
        ("table2", "Table 2: MI GP storage tiers", tables::table2),
        ("table3", "Table 3: MI group scores", tables::table3),
        ("table4", "Table 4: accuracy by negotiability definition (k-means)", tables::table4),
        ("table5", "Table 5: elastic accuracy excl. over-provisioned", tables::table5),
        ("table6", "Table 6: replay SKUs", tables::table6),
        ("figure1", "Figure 1: example Azure SQL DB SKUs", figures::figure1),
        ("figure4", "Figure 4: spiky CPU trace and its price-performance curve", figures::figure4),
        ("figure5", "Figure 5: heuristics disagree on a complex curve", figures::figure5),
        ("figure6", "Figure 6: ECDFs and raw series across dimensions", figures::figure6),
        ("figure8", "Figure 8: the four canonical curve shapes", figures::figure8),
        ("figure9", "Figure 9: curve-type breakdown per cohort", figures::figure9),
        ("figure10", "Figure 10: confidence score vs bootstrap window", figures::figure10),
        ("figure11", "Figure 11: curves before/after a SKU change", figures::figure11),
        ("figure12", "Figure 12: synthesized workload curve over Table 6 SKUs", figures::figure12),
        ("figure13", "Figure 13: replayed counters on the Table 6 SKUs", figures::figure13),
        ("sec5_3", "Section 5.3: Doppler vs the baseline on on-prem data", sections::sec5_3),
        ("survey", "Section 1 survey: over-provisioned CPU in the cloud fleet", sections::survey),
    ]
}
