//! Prose-result reproductions: the §5.3 baseline comparison and the §1
//! over-provisioning survey.

use std::fmt::Write as _;

use doppler_catalog::{DeploymentType, SkuId};
use doppler_core::{
    rightsize, BaselineStrategy, DopplerEngine, EngineConfig, PricePerformanceCurve, TrainingRecord,
};
use doppler_stats::descriptive::{mean, min};
use doppler_telemetry::PerfDimension;
use doppler_workload::{sec53_instances, PopulationSpec};

use crate::backtest::catalog;
use crate::experiments::ExperimentScale;

/// §5.3: compare Doppler against the p95 baseline on the ten on-prem
/// instances. The paper reports: 80 % of the time Doppler's SKU meets the
/// workload's latency requirement while the baseline under-specifies; for
/// the rest the baseline fails to recommend anything at all.
pub fn sec5_3(scale: &ExperimentScale) -> String {
    let cat = catalog();
    // Doppler needs a trained group model; train on a small cloud cohort.
    let training = PopulationSpec::sql_db(scale.cohort.min(300), scale.seed).customers(&cat);
    let records: Vec<TrainingRecord> = training
        .iter()
        .filter(|c| !c.over_provisioned)
        .map(|c| TrainingRecord {
            history: c.history.clone(),
            chosen_sku: c.chosen_sku.clone(),
            file_layout: None,
        })
        .collect();
    let engine = DopplerEngine::train(
        cat.clone(),
        EngineConfig::production(DeploymentType::SqlDb),
        &records,
    );
    let baseline = BaselineStrategy::p95();

    let instances = sec53_instances(7.0, scale.seed ^ 0x53);
    let mut out = String::from(
        "Section 5.3 — Doppler vs the baseline strategy on 10 on-prem instances\n\
         Instance                      Baseline       Doppler        Latency need met?\n",
    );
    let mut doppler_meets = 0usize;
    let mut baseline_meets = 0usize;
    let mut baseline_none = 0usize;
    for inst in &instances {
        let lat_need =
            min(inst.history.values(PerfDimension::IoLatency).unwrap_or(&[])).unwrap_or(10.0);
        let b = baseline.recommend(&inst.history, &cat, DeploymentType::SqlDb);
        let d = engine.recommend(&inst.history, None);
        let meets = |sku_id: Option<&str>| -> bool {
            sku_id
                .and_then(|id| cat.get(&SkuId(id.into())))
                .map(|s| s.caps.min_io_latency_ms <= lat_need)
                .unwrap_or(false)
        };
        let b_id = b.map(|s| s.id.to_string());
        let d_meets = meets(d.sku_id.as_deref());
        let b_meets = meets(b_id.as_deref());
        if d_meets {
            doppler_meets += 1;
        }
        if b_meets {
            baseline_meets += 1;
        }
        if b_id.is_none() {
            baseline_none += 1;
        }
        let _ = writeln!(
            out,
            "{:<28} {:<14} {:<14} baseline {} / doppler {}",
            inst.name,
            b_id.as_deref().unwrap_or("(none)"),
            d.sku_id.as_deref().unwrap_or("(none)"),
            if b_meets { "yes" } else { "NO " },
            if d_meets { "yes" } else { "NO " },
        );
    }
    let _ = writeln!(
        out,
        "\nDoppler meets the latency requirement on {doppler_meets}/10 instances \
         (paper: 8/10 = 80%);\nthe baseline meets it on {baseline_meets}/10 and returns \
         no recommendation at all on {baseline_none}/10 (paper: 2/10)."
    );
    out
}

/// §1's fleet survey: "30% of SQL databases consume 43% or less of
/// provisioned CPU resources, and only 5% of SQL databases reach the
/// maximum provisioned CPU usage for more than 10% of this study's
/// duration" — plus the right-sizing outcome of §5.1/§5.2.1.
pub fn survey(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let customers = PopulationSpec::sql_db(scale.cohort, scale.seed).customers(&cat);
    let skus = cat.for_deployment(DeploymentType::SqlDb);
    let mut low_util = 0usize;
    let mut pegged = 0usize;
    let mut flagged = 0usize;
    let mut truly_over = 0usize;
    let mut flagged_and_over = 0usize;
    let mut total_savings = 0.0;
    for c in &customers {
        let provisioned = cat.get(&c.chosen_sku).expect("chosen exists").caps.vcores;
        let cpu = c.history.values(PerfDimension::Cpu).expect("cpu collected");
        if mean(cpu) <= 0.43 * provisioned {
            low_util += 1;
        }
        let at_max =
            cpu.iter().filter(|&&v| v >= 0.98 * provisioned).count() as f64 / cpu.len() as f64;
        if at_max > 0.10 {
            pegged += 1;
        }
        // Right-sizing audit on the customer's own curve.
        let curve = PricePerformanceCurve::generate(&c.history, &skus);
        if let Some(r) = rightsize(&curve, c.chosen_sku.0.as_str(), 1.5) {
            if c.over_provisioned {
                truly_over += 1;
            }
            if r.over_provisioned {
                flagged += 1;
                total_savings += r.annual_savings();
                if c.over_provisioned {
                    flagged_and_over += 1;
                }
            }
        }
    }
    let n = customers.len() as f64;
    let mut out = String::from("Section 1 survey + §5.1 right-sizing audit (SQL DB cohort)\n");
    let _ = writeln!(
        out,
        "databases consuming <=43% of provisioned CPU: {:.1}% (paper: 30%)",
        100.0 * low_util as f64 / n
    );
    let _ = writeln!(
        out,
        "databases at max provisioned CPU >10% of the window: {:.1}% (paper: 5%)",
        100.0 * pegged as f64 / n
    );
    let _ = writeln!(
        out,
        "right-sizing flags {:.1}% of the fleet as over-provisioned (paper: ~10%)",
        100.0 * flagged as f64 / n
    );
    let _ = writeln!(
        out,
        "recall against ground truth: {flagged_and_over}/{truly_over} generated \
         over-provisioned customers flagged"
    );
    let _ = writeln!(
        out,
        "aggregate annual savings opportunity: ${:.0} (the Figure 8a customer alone saved >$100k)",
        total_savings
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale { cohort: 80, seed: 3 }
    }

    #[test]
    fn sec5_3_baseline_fails_where_doppler_negotiates() {
        let s = sec5_3(&tiny());
        assert!(s.contains("no recommendation at all on 2/10"), "{s}");
    }

    #[test]
    fn survey_reports_all_headline_numbers() {
        let s = survey(&tiny());
        assert!(s.contains("<=43%"), "{s}");
        assert!(s.contains("right-sizing flags"), "{s}");
    }
}
