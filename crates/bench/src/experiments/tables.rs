//! Table reproductions (Tables 1-6).

use std::fmt::Write as _;

use doppler_catalog::{DeploymentType, StorageTier};
use doppler_core::grouping::bits_to_group;
use doppler_core::{
    DopplerEngine, EngineConfig, GroupingStrategy, NegotiabilityStrategy, TrainingRecord,
};
use doppler_dma::{
    AdoptionLedger, AssessmentRequest, PreprocessedInstance, SkuRecommendationPipeline,
};
use doppler_fleet::AssessmentService;
use doppler_stats::SeededRng;
use doppler_workload::{PopulationSpec, WorkloadArchetype};

use crate::backtest::{backtest_customers, catalog};
use crate::experiments::ExperimentScale;

/// Table 1: run the batch assessment service over four months of seeded
/// request volume and print the adoption ledger. The paper's counts are
/// operational telemetry; the reproduction demonstrates the counting
/// harness at the same order of magnitude.
pub fn table1(scale: &ExperimentScale) -> String {
    let engine =
        DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlDb));
    let service = AssessmentService::new(SkuRecommendationPipeline::new(engine), 8);
    let mut ledger = AdoptionLedger::default();
    let mut rng = SeededRng::new(scale.seed);
    // Paper-scale monthly volumes (instances assessed per month).
    let months: [(&str, usize); 4] =
        [("Oct-21", 185), ("Nov-21", 215), ("Dec-21", 57), ("Jan-22", 231)];
    for (label, instances) in months {
        // Scale request volume down proportionally for fast runs while
        // keeping the relative month-to-month shape.
        let n = (instances * scale.cohort / 600).max(5);
        let requests: Vec<AssessmentRequest> = (0..n)
            .map(|i| {
                let dbs = 1 + rng.index(40); // instances host 1-40 databases
                let archetype = if rng.chance(0.7) {
                    WorkloadArchetype::Idle
                } else {
                    WorkloadArchetype::Steady
                };
                let h = doppler_workload::generate(
                    &archetype.spec(rng.range(0.5, 4.0), 3.0),
                    rng.fork(i as u64).unit().to_bits(),
                );
                AssessmentRequest {
                    instance_name: format!("{label}-{i}"),
                    input: PreprocessedInstance {
                        instance: h.clone(),
                        databases: (0..dbs).map(|d| (format!("db{d}"), h.clone())).collect(),
                        file_sizes_gib: vec![],
                    },
                    confidence: None,
                }
            })
            .collect();
        service.assess_and_record(label, &requests, &mut ledger);
    }
    let mut out = String::from(
        "Table 1 — DMA adoption (simulated request stream)\n\
         Month    Unique instances  Unique databases  Recommendations\n",
    );
    for (month, m) in ledger.rows() {
        let _ = writeln!(
            out,
            "{month:<8} {:>16}  {:>16}  {:>15}",
            m.unique_instances, m.unique_databases, m.recommendations_generated
        );
    }
    out
}

/// Table 2: the MI GP premium-disk storage tiers.
pub fn table2(_scale: &ExperimentScale) -> String {
    let mut out = String::from(
        "Table 2 — File IO characteristics of Azure SQL MI GP storage tiers\n\
         Tier   File size (GiB)     IOPS   Throughput (MiB/s)  $/month\n",
    );
    let mut lo = 0.0;
    for t in StorageTier::ALL {
        let _ = writeln!(
            out,
            "{:<6} ({:>5}, {:>5}]   {:>6}   {:>18}  {:>7.2}",
            t.to_string(),
            lo,
            t.max_file_gib(),
            t.iops(),
            t.throughput_mibps(),
            t.monthly_price()
        );
        lo = t.max_file_gib();
    }
    out
}

fn records_of(customers: &[doppler_workload::CloudCustomer]) -> Vec<TrainingRecord> {
    customers
        .iter()
        .filter(|c| !c.over_provisioned)
        .map(|c| TrainingRecord {
            history: c.history.clone(),
            chosen_sku: c.chosen_sku.clone(),
            file_layout: c.file_layout.clone(),
        })
        .collect()
}

/// Table 3: per-group score statistics for SQL MI under the thresholding
/// profiler and straightforward enumeration.
pub fn table3(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let spec = PopulationSpec::sql_mi(scale.cohort, scale.seed);
    let customers = spec.customers(&cat);
    let engine = DopplerEngine::train(
        cat.clone(),
        EngineConfig::production(DeploymentType::SqlMi),
        &records_of(&customers),
    );
    let mut out = String::from(
        "Table 3 — Azure SQL MI customer groups (0 = negotiable, as in the paper)\n\
         Group  vCores Memory IOPS   Members  Operating  Average (Std) Score\n",
    );
    for paper_group in 1..=8usize {
        // Paper digits (vCores, Memory, IOPS), 0 = negotiable, counted in
        // binary from group 1 (000) to group 8 (111).
        let d = paper_group - 1;
        let digits = [(d >> 2) & 1, (d >> 1) & 1, d & 1];
        // Our encoding: bit i set when dimension i (Cpu, Memory, Iops in
        // canonical order) is negotiable.
        let ours = bits_to_group(&[digits[0] == 0, digits[1] == 0, digits[2] == 0]);
        let s = engine.group_model().stats()[ours];
        let score = if s.n_informative == 0 {
            "     (unobserved)".to_string()
        } else {
            format!("{:.4} ({:.3})", s.mean_score, s.std_score)
        };
        let _ = writeln!(
            out,
            "{paper_group:<6} {:<6} {:<6} {:<6} {:>7}  {:>9}  {score}",
            digits[0], digits[1], digits[2], s.n_total, s.n_operating,
        );
    }
    out
}

/// Table 4: back-test accuracy per negotiability definition under k-means
/// grouping (k = 2^dims). The paper's Table 4 numbers sit well below
/// Table 5's because the over-provisioned segment is still included here —
/// Table 5 is introduced precisely by noting how accuracy "drastically
/// improves when over-provisioned customers are excluded".
pub fn table4(scale: &ExperimentScale) -> String {
    let cat = catalog();
    // STL-heavy strategies make this the slowest table; cap the cohort.
    let n = scale.cohort.min(400);
    let db = PopulationSpec::sql_db(n, scale.seed).customers(&cat);
    let mi = PopulationSpec::sql_mi(n, scale.seed ^ 0xA5).customers(&cat);
    let mut out = String::from(
        "Table 4 — accuracy of Doppler per negotiability definition (k-means grouping)\n\
         Negotiability Definition                            DB       MI\n",
    );
    for (name, strategy) in NegotiabilityStrategy::table4_lineup() {
        let acc = |deployment, customers: &[doppler_workload::CloudCustomer], k| {
            let config = EngineConfig {
                deployment,
                negotiability: strategy,
                grouping: GroupingStrategy::KMeans { k, seed: scale.seed },
                rates: Default::default(),
            };
            backtest_customers(&cat, customers, config, true).accuracy()
        };
        let _ = writeln!(
            out,
            "{name:<50} {:>6.1}%  {:>6.1}%",
            acc(DeploymentType::SqlDb, &db, 16) * 100.0,
            acc(DeploymentType::SqlMi, &mi, 8) * 100.0
        );
    }
    out
}

/// Table 5: the production configuration's accuracy with over-provisioned
/// customers excluded, plus per-tier micro accuracy.
pub fn table5(scale: &ExperimentScale) -> String {
    let cat = catalog();
    let mut out = String::from(
        "Table 5 — elastic strategy accuracy excluding over-provisioned customers\n\
         Customer Type  Accuracy   Micro Accuracy\n",
    );
    for (label, deployment, spec) in [
        ("DB", DeploymentType::SqlDb, PopulationSpec::sql_db(scale.cohort, scale.seed)),
        ("MI", DeploymentType::SqlMi, PopulationSpec::sql_mi(scale.cohort, scale.seed)),
    ] {
        let customers = spec.customers(&cat);
        let r = backtest_customers(&cat, &customers, EngineConfig::production(deployment), false);
        let with_over =
            backtest_customers(&cat, &customers, EngineConfig::production(deployment), true);
        let _ = writeln!(
            out,
            "{label:<14} {:>7.1}%   GP: {:.1}% / BC: {:.1}%   (incl. over-provisioned: {:.1}%)",
            r.accuracy() * 100.0,
            r.gp.accuracy() * 100.0,
            r.bc.accuracy() * 100.0,
            with_over.accuracy() * 100.0
        );
    }
    out
}

/// Table 6: the four machines synthesized workloads are replayed on.
pub fn table6(_scale: &ExperimentScale) -> String {
    let mut out = String::from(
        "Table 6 — SKUs used to execute synthetic workloads\n\
         ID     vCPU      Memory    Cache/Throughput  Disk IOPS   $/hour\n",
    );
    for sku in doppler_catalog::replay_skus() {
        let _ = writeln!(
            out,
            "{:<6} {:>2} cores  {:>4} GB   {:>7} MB/s      {:>7}   {:>6.2}",
            sku.id.to_string(),
            sku.vcores(),
            sku.caps.memory_gb,
            sku.caps.throughput_mbps,
            sku.caps.iops,
            sku.price_per_hour
        );
    }
    out.push_str("(all four machines share a 2 TB SSD)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale { cohort: 60, seed: 7 }
    }

    #[test]
    fn table2_prints_six_tiers() {
        let t = table2(&tiny());
        for tier in ["P10", "P20", "P30", "P40", "P50", "P60"] {
            assert!(t.contains(tier), "{t}");
        }
    }

    #[test]
    fn table6_prints_four_skus() {
        let t = table6(&tiny());
        for sku in ["SKU1", "SKU2", "SKU3", "SKU4"] {
            assert!(t.contains(sku), "{t}");
        }
        assert!(t.contains("154000"));
    }

    #[test]
    fn table3_has_eight_groups() {
        let t = table3(&tiny());
        assert_eq!(t.lines().count(), 2 + 8, "{t}");
    }

    #[test]
    fn table5_reports_both_deployments() {
        let t = table5(&tiny());
        assert!(t.contains("DB"));
        assert!(t.contains("MI"));
        assert!(t.contains("GP:"));
    }

    #[test]
    fn table1_counts_scale_with_months() {
        let t = table1(&tiny());
        assert!(t.contains("Oct-21"));
        assert!(t.contains("Jan-22"));
        assert_eq!(t.lines().count(), 2 + 4);
    }

    #[test]
    fn bits_to_group_is_consistent_with_table3_rows() {
        assert_eq!(bits_to_group(&[true, true, true]), 0b111);
    }
}
