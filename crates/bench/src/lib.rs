//! Shared harness code for the Doppler reproduction benchmarks.
//!
//! The `reproduce` binary (one subcommand per paper table/figure) and the
//! criterion benches both build on these helpers:
//!
//! * [`backtest`] — the §5.2 evaluation loop: train the engine on a
//!   synthetic migrated-customer cohort, recommend for every member, and
//!   score against the SKU each member actually fixed;
//! * [`ascii`] — terminal rendering of curves and series so every figure
//!   has a printable form;
//! * [`experiments`] — one reproduction function per paper table/figure,
//!   dispatched by the `reproduce` binary.

pub mod ascii;
pub mod backtest;
pub mod experiments;
