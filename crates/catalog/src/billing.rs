//! The billing interface of §4: "A billing interface exists to compute the
//! prices for each SKU."
//!
//! Prices are anchored to the $/hour figures the paper reprints in Figure 1
//! (GP ≈ $0.2525/vCore/h, BC ≈ $0.68/vCore/h for SQL DB) and expand with a
//! per-deployment multiplier. Monthly cost uses Azure's 730-hour month.

use crate::sku::{DeploymentType, ServiceTier, Sku};
use crate::storage::TierAssignment;

/// Hours in a billing month (Azure convention).
pub const HOURS_PER_MONTH: f64 = 730.0;

/// Per-vCore hourly rates by deployment and tier.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BillingRates {
    /// SQL DB General Purpose, $/vCore/h.
    pub db_gp: f64,
    /// SQL DB Business Critical, $/vCore/h.
    pub db_bc: f64,
    /// SQL MI General Purpose, $/vCore/h.
    pub mi_gp: f64,
    /// SQL MI Business Critical, $/vCore/h.
    pub mi_bc: f64,
}

impl Default for BillingRates {
    /// Rates reverse-engineered from Figure 1 (DB) and Azure's public MI
    /// price sheet (MI runs a few percent above DB for the managed server
    /// surface).
    fn default() -> BillingRates {
        BillingRates { db_gp: 0.2525, db_bc: 0.68, mi_gp: 0.2703, mi_bc: 0.7252 }
    }
}

impl BillingRates {
    /// Hourly compute price for a (deployment, tier, vCores) combination.
    pub fn hourly(&self, deployment: DeploymentType, tier: ServiceTier, vcores: f64) -> f64 {
        let rate = match (deployment, tier) {
            (DeploymentType::SqlDb, ServiceTier::GeneralPurpose) => self.db_gp,
            (DeploymentType::SqlDb, ServiceTier::BusinessCritical) => self.db_bc,
            (DeploymentType::SqlMi, ServiceTier::GeneralPurpose) => self.mi_gp,
            (DeploymentType::SqlMi, ServiceTier::BusinessCritical) => self.mi_bc,
        };
        rate * vcores
    }

    /// Monthly compute price.
    pub fn monthly(&self, deployment: DeploymentType, tier: ServiceTier, vcores: f64) -> f64 {
        self.hourly(deployment, tier, vcores) * HOURS_PER_MONTH
    }

    /// Full monthly cost of an MI SKU with its storage layout: compute plus
    /// the premium disks backing the file layout.
    pub fn monthly_with_storage(&self, sku: &Sku, storage: &TierAssignment) -> f64 {
        sku.monthly_cost() + storage.monthly_storage_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sku::{ResourceCaps, SkuId};
    use crate::storage::FileLayout;

    #[test]
    fn figure1_prices_are_reproduced() {
        // Figure 1: GP 2 vCores $0.51/h, BC 2 $1.36/h, GP 4 $1.01/h,
        // BC 4 $2.72/h, GP 6 $1.52/h, BC 6 $4.08/h.
        let r = BillingRates::default();
        let cases = [
            (ServiceTier::GeneralPurpose, 2.0, 0.51),
            (ServiceTier::BusinessCritical, 2.0, 1.36),
            (ServiceTier::GeneralPurpose, 4.0, 1.01),
            (ServiceTier::BusinessCritical, 4.0, 2.72),
            (ServiceTier::GeneralPurpose, 6.0, 1.52),
            (ServiceTier::BusinessCritical, 6.0, 4.08),
        ];
        for (tier, vcores, want) in cases {
            let got = r.hourly(DeploymentType::SqlDb, tier, vcores);
            assert!((got - want).abs() < 0.011, "{tier} {vcores}: got {got}, want {want}");
        }
    }

    #[test]
    fn bc_costs_more_than_gp_everywhere() {
        let r = BillingRates::default();
        for d in [DeploymentType::SqlDb, DeploymentType::SqlMi] {
            assert!(
                r.hourly(d, ServiceTier::BusinessCritical, 4.0)
                    > r.hourly(d, ServiceTier::GeneralPurpose, 4.0)
            );
        }
    }

    #[test]
    fn monthly_is_730_hourly() {
        let r = BillingRates::default();
        let h = r.hourly(DeploymentType::SqlDb, ServiceTier::GeneralPurpose, 8.0);
        assert!(
            (r.monthly(DeploymentType::SqlDb, ServiceTier::GeneralPurpose, 8.0) - h * 730.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn price_scales_linearly_in_vcores() {
        let r = BillingRates::default();
        let h2 = r.hourly(DeploymentType::SqlMi, ServiceTier::GeneralPurpose, 2.0);
        let h8 = r.hourly(DeploymentType::SqlMi, ServiceTier::GeneralPurpose, 8.0);
        assert!((h8 - 4.0 * h2).abs() < 1e-9);
    }

    #[test]
    fn storage_cost_is_added_for_mi() {
        let r = BillingRates::default();
        let sku = Sku {
            id: SkuId("MI_GP_4".into()),
            deployment: DeploymentType::SqlMi,
            tier: ServiceTier::GeneralPurpose,
            caps: ResourceCaps {
                vcores: 4.0,
                memory_gb: 20.8,
                max_data_gb: 2048.0,
                iops: 0.0,
                log_rate_mbps: 15.0,
                min_io_latency_ms: 5.0,
                throughput_mbps: 400.0,
            },
            price_per_hour: r.hourly(DeploymentType::SqlMi, ServiceTier::GeneralPurpose, 4.0),
        };
        let storage = FileLayout::from_sizes(&[100.0]).assign_tiers().unwrap();
        let total = r.monthly_with_storage(&sku, &storage);
        assert!((total - (sku.monthly_cost() + 19.71)).abs() < 1e-9);
    }
}
