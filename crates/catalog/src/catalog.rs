//! The catalog query API the engine enumerates candidates from.

use crate::sku::{DeploymentType, ResourceCaps, ServiceTier, Sku, SkuId};

/// An immutable collection of SKUs with the lookups the engine needs.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Catalog {
    skus: Vec<Sku>,
}

impl Catalog {
    /// Build a catalog. SKUs are kept sorted by (deployment, tier, vCores)
    /// so iteration order is stable regardless of input order.
    pub fn new(mut skus: Vec<Sku>) -> Catalog {
        skus.sort_by(|a, b| {
            (a.deployment, a.tier)
                .cmp(&(b.deployment, b.tier))
                .then(a.caps.vcores.partial_cmp(&b.caps.vcores).expect("finite vcores"))
        });
        Catalog { skus }
    }

    /// Number of SKUs.
    pub fn len(&self) -> usize {
        self.skus.len()
    }

    /// True when the catalog holds no SKUs.
    pub fn is_empty(&self) -> bool {
        self.skus.is_empty()
    }

    /// Iterate over all SKUs.
    pub fn iter(&self) -> impl Iterator<Item = &Sku> {
        self.skus.iter()
    }

    /// Look up a SKU by id.
    pub fn get(&self, id: &SkuId) -> Option<&Sku> {
        self.skus.iter().find(|s| &s.id == id)
    }

    /// All SKUs of one deployment type (the assessment scoping choice the
    /// DMA tool asks the customer for up front).
    pub fn for_deployment(&self, deployment: DeploymentType) -> Vec<&Sku> {
        self.skus.iter().filter(|s| s.deployment == deployment).collect()
    }

    /// SKUs of one deployment restricted to one service tier (the §3.2
    /// Step 1 fallback "restrict our search of relevant SKUs to Business
    /// Critical ones").
    pub fn for_deployment_tier(&self, deployment: DeploymentType, tier: ServiceTier) -> Vec<&Sku> {
        self.skus.iter().filter(|s| s.deployment == deployment && s.tier == tier).collect()
    }

    /// SKUs sorted by ascending monthly cost — the x-axis of every
    /// price-performance curve.
    pub fn sorted_by_price(&self, deployment: DeploymentType) -> Vec<&Sku> {
        let mut v = self.for_deployment(deployment);
        v.sort_by(|a, b| {
            a.price_per_hour
                .partial_cmp(&b.price_per_hour)
                .expect("finite prices")
                .then_with(|| a.id.cmp(&b.id))
        });
        v
    }

    /// The cheapest SKU of a deployment whose capacities dominate the given
    /// requirement — the primitive behind the baseline strategy of §2.
    pub fn cheapest_satisfying(
        &self,
        deployment: DeploymentType,
        requirement: &ResourceCaps,
    ) -> Option<&Sku> {
        self.sorted_by_price(deployment).into_iter().find(|s| s.caps.dominates(requirement))
    }

    /// Add a SKU (used by tests and the replay harness to splice in the
    /// Table 6 machines).
    pub fn with_extra(mut self, sku: Sku) -> Catalog {
        self.skus.push(sku);
        Catalog::new(self.skus)
    }
}

impl FromIterator<Sku> for Catalog {
    fn from_iter<T: IntoIterator<Item = Sku>>(iter: T) -> Catalog {
        Catalog::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{azure_paas_catalog, CatalogSpec};

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    #[test]
    fn get_finds_known_ids() {
        let c = catalog();
        assert!(c.get(&SkuId("DB_GP_2".into())).is_some());
        assert!(c.get(&SkuId("MI_BC_80".into())).is_some());
        assert!(c.get(&SkuId("DB_GP_3".into())).is_none());
    }

    #[test]
    fn deployment_filter_partitions_catalog() {
        let c = catalog();
        let db = c.for_deployment(DeploymentType::SqlDb).len();
        let mi = c.for_deployment(DeploymentType::SqlMi).len();
        assert_eq!(db + mi, c.len());
        assert!(db > 0 && mi > 0);
    }

    #[test]
    fn sorted_by_price_is_ascending() {
        let c = catalog();
        let sorted = c.sorted_by_price(DeploymentType::SqlDb);
        for w in sorted.windows(2) {
            assert!(w[0].price_per_hour <= w[1].price_per_hour);
        }
    }

    #[test]
    fn cheapest_satisfying_small_requirement_is_smallest_gp() {
        let c = catalog();
        let req = ResourceCaps {
            vcores: 1.0,
            memory_gb: 2.0,
            max_data_gb: 100.0,
            iops: 100.0,
            log_rate_mbps: 1.0,
            min_io_latency_ms: 10.0,
            throughput_mbps: 10.0,
        };
        let s = c.cheapest_satisfying(DeploymentType::SqlDb, &req).unwrap();
        assert_eq!(s.id.to_string(), "DB_GP_2");
    }

    #[test]
    fn tight_latency_requirement_forces_bc() {
        let c = catalog();
        let req = ResourceCaps {
            vcores: 2.0,
            memory_gb: 4.0,
            max_data_gb: 100.0,
            iops: 500.0,
            log_rate_mbps: 5.0,
            min_io_latency_ms: 2.0, // GP's 5 ms floor cannot meet this
            throughput_mbps: 10.0,
        };
        let s = c.cheapest_satisfying(DeploymentType::SqlDb, &req).unwrap();
        assert_eq!(s.tier, ServiceTier::BusinessCritical);
    }

    #[test]
    fn impossible_requirement_finds_nothing() {
        let c = catalog();
        let req = ResourceCaps {
            vcores: 10_000.0,
            memory_gb: 0.0,
            max_data_gb: 0.0,
            iops: 0.0,
            log_rate_mbps: 0.0,
            min_io_latency_ms: 10.0,
            throughput_mbps: 0.0,
        };
        assert!(c.cheapest_satisfying(DeploymentType::SqlDb, &req).is_none());
    }

    #[test]
    fn with_extra_keeps_sorted_order_and_len() {
        let c = catalog();
        let before = c.len();
        let extra = c.get(&SkuId("DB_GP_2".into())).unwrap().clone();
        let mut extra = extra;
        extra.id = SkuId("DB_GP_custom".into());
        let c2 = c.with_extra(extra);
        assert_eq!(c2.len(), before + 1);
        assert!(c2.get(&SkuId("DB_GP_custom".into())).is_some());
    }

    #[test]
    fn empty_catalog_behaves() {
        let c = Catalog::new(Vec::new());
        assert!(c.is_empty());
        assert!(c.sorted_by_price(DeploymentType::SqlDb).is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let c = catalog();
        let rebuilt: Catalog = c.iter().cloned().collect();
        assert_eq!(rebuilt.len(), c.len());
    }
}
