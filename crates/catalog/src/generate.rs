//! Catalog generation: expand the per-vCore scaling rules into the full
//! SKU universe, and pin the special-purpose SKU sets the paper prints.
//!
//! Azure's published resource-limit pages ([30, 32, 37] in the paper) scale
//! almost every capacity linearly in vCores within a (deployment, tier)
//! family; Figure 1 reprints six rows of that table and this module encodes
//! the implied rules:
//!
//! | dimension        | GP              | BC            |
//! |------------------|-----------------|---------------|
//! | memory           | 5.2 GB/vCore    | 5.2 GB/vCore  |
//! | data IOPS        | 320 /vCore      | 4000 /vCore   |
//! | log rate         | 3.75 MB/s/vCore | 12 MB/s/vCore |
//! | min IO latency   | 5 ms            | 1 ms          |
//! | max data size    | max(1 TB, 256 GB/vCore), capped at 4 TB |

use crate::billing::BillingRates;
use crate::catalog::Catalog;
use crate::sku::{DeploymentType, ResourceCaps, ServiceTier, Sku, SkuId};

/// vCore ladders per deployment type (SQL DB sells smaller slices; MI
/// starts at 4 vCores).
const DB_VCORES: [u32; 14] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 32, 40, 80];
const MI_VCORES: [u32; 8] = [4, 8, 16, 24, 32, 40, 64, 80];

/// Parameters of catalog generation; the defaults produce the Azure-like
/// universe used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CatalogSpec {
    pub rates: BillingRates,
    /// Memory per vCore, GB (Figure 1: 10.4 GB at 2 vCores).
    pub memory_gb_per_vcore: f64,
    /// GP data IOPS per vCore (Figure 1: 640 at 2 vCores).
    pub gp_iops_per_vcore: f64,
    /// BC data IOPS per vCore (Figure 1: 8000 at 2 vCores).
    pub bc_iops_per_vcore: f64,
    /// GP log rate per vCore, MB/s (Figure 1: 7.5 at 2 vCores).
    pub gp_log_mbps_per_vcore: f64,
    /// BC log rate per vCore, MB/s (Figure 1: 24 at 2 vCores).
    pub bc_log_mbps_per_vcore: f64,
    /// Min IO latency, ms (Figure 1).
    pub gp_latency_ms: f64,
    pub bc_latency_ms: f64,
    /// IO throughput per vCore, MB/s.
    pub gp_throughput_per_vcore: f64,
    pub bc_throughput_per_vcore: f64,
}

impl Default for CatalogSpec {
    fn default() -> CatalogSpec {
        CatalogSpec {
            rates: BillingRates::default(),
            memory_gb_per_vcore: 5.2,
            gp_iops_per_vcore: 320.0,
            bc_iops_per_vcore: 4000.0,
            gp_log_mbps_per_vcore: 3.75,
            bc_log_mbps_per_vcore: 12.0,
            gp_latency_ms: 5.0,
            bc_latency_ms: 1.0,
            gp_throughput_per_vcore: 24.0,
            bc_throughput_per_vcore: 128.0,
        }
    }
}

fn max_data_gb(vcores: f64) -> f64 {
    (256.0 * vcores).clamp(1024.0, 4096.0)
}

fn build_sku(
    spec: &CatalogSpec,
    deployment: DeploymentType,
    tier: ServiceTier,
    vcores: u32,
) -> Sku {
    let v = vcores as f64;
    let bc = tier == ServiceTier::BusinessCritical;
    let caps = ResourceCaps {
        vcores: v,
        memory_gb: spec.memory_gb_per_vcore * v,
        max_data_gb: max_data_gb(v),
        iops: if bc { spec.bc_iops_per_vcore * v } else { spec.gp_iops_per_vcore * v },
        log_rate_mbps: if bc {
            spec.bc_log_mbps_per_vcore * v
        } else {
            spec.gp_log_mbps_per_vcore * v
        },
        min_io_latency_ms: if bc { spec.bc_latency_ms } else { spec.gp_latency_ms },
        throughput_mbps: if bc {
            spec.bc_throughput_per_vcore * v
        } else {
            spec.gp_throughput_per_vcore * v
        },
    };
    Sku {
        id: SkuId(format!("{deployment}_{tier}_{vcores}")),
        deployment,
        tier,
        caps,
        price_per_hour: spec.rates.hourly(deployment, tier, v),
    }
}

/// Generate the full Azure SQL PaaS catalog: DB and MI, GP and BC, every
/// vCore rung — 44 compute shapes whose MI GP entries later expand across
/// file layouts into the 200+ effective SKUs the paper counts.
pub fn azure_paas_catalog(spec: &CatalogSpec) -> Catalog {
    let mut skus = Vec::new();
    for &v in &DB_VCORES {
        skus.push(build_sku(spec, DeploymentType::SqlDb, ServiceTier::GeneralPurpose, v));
        skus.push(build_sku(spec, DeploymentType::SqlDb, ServiceTier::BusinessCritical, v));
    }
    for &v in &MI_VCORES {
        skus.push(build_sku(spec, DeploymentType::SqlMi, ServiceTier::GeneralPurpose, v));
        skus.push(build_sku(spec, DeploymentType::SqlMi, ServiceTier::BusinessCritical, v));
    }
    Catalog::new(skus)
}

/// The four machines of Table 6, used to execute synthesized workloads in
/// §5.4. Memory runs at 4 GB/vCore and IOPS at the table's printed values;
/// prices extrapolate the GP rate so the price-performance curve of
/// Figure 12 has an x-axis.
pub fn replay_skus() -> Vec<Sku> {
    let rates = BillingRates::default();
    let rows: [(u32, f64, f64, f64); 4] = [
        (4, 16.0, 100.0, 6_000.0),
        (8, 32.0, 200.0, 12_000.0),
        (16, 64.0, 400.0, 154_000.0),
        (32, 128.0, 800.0, 308_000.0),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, &(vcores, mem, cache_gb, iops))| {
            let v = vcores as f64;
            Sku {
                id: SkuId(format!("SKU{}", i + 1)),
                deployment: DeploymentType::SqlDb,
                tier: ServiceTier::GeneralPurpose,
                caps: ResourceCaps {
                    vcores: v,
                    memory_gb: mem,
                    // Table 6 footnote: all four machines share a 2 TB SSD.
                    max_data_gb: 2048.0,
                    iops,
                    log_rate_mbps: 3.75 * v,
                    // Dedicated machines over local SSD (the shared 2 TB
                    // drive): all four deliver ~1 ms best-case IO latency.
                    min_io_latency_ms: 1.0,
                    // Cache column doubles as the throughput proxy.
                    throughput_mbps: cache_gb,
                },
                price_per_hour: rates.hourly(DeploymentType::SqlDb, ServiceTier::GeneralPurpose, v),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_rows_are_reproduced() {
        // The six rows of Figure 1, checked field by field.
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let check = |id: &str, mem: f64, iops: f64, log: f64, lat: f64, price: f64| {
            let s = cat.get(&SkuId(id.into())).unwrap_or_else(|| panic!("{id} missing"));
            // Azure rounds the published memory figures (31.1 GB at 6
            // vCores vs the exact 5.2/vCore = 31.2), so allow 0.5 %.
            assert!((s.caps.memory_gb - mem).abs() / mem < 0.005, "{id} memory");
            assert_eq!(s.caps.iops, iops, "{id} iops");
            assert!((s.caps.log_rate_mbps - log).abs() < 1e-9, "{id} log rate");
            assert_eq!(s.caps.min_io_latency_ms, lat, "{id} latency");
            assert!((s.price_per_hour - price).abs() < 0.011, "{id} price {}", s.price_per_hour);
        };
        check("DB_BC_2", 10.4, 8000.0, 24.0, 1.0, 1.36);
        check("DB_GP_2", 10.4, 640.0, 7.5, 5.0, 0.51);
        check("DB_BC_4", 20.8, 16000.0, 48.0, 1.0, 2.72);
        check("DB_GP_4", 20.8, 1280.0, 15.0, 5.0, 1.01);
        check("DB_BC_6", 31.1, 24000.0, 72.0, 1.0, 4.08);
        check("DB_GP_6", 31.1, 1920.0, 22.5, 5.0, 1.52);
    }

    #[test]
    fn figure1_max_data_sizes() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let size = |id: &str| cat.get(&SkuId(id.into())).unwrap().caps.max_data_gb;
        assert_eq!(size("DB_GP_2"), 1024.0);
        assert_eq!(size("DB_GP_4"), 1024.0);
        assert_eq!(size("DB_GP_6"), 1536.0);
    }

    #[test]
    fn catalog_covers_both_deployments_and_tiers() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        for d in [DeploymentType::SqlDb, DeploymentType::SqlMi] {
            for t in [ServiceTier::GeneralPurpose, ServiceTier::BusinessCritical] {
                assert!(cat.iter().any(|s| s.deployment == d && s.tier == t), "missing {d}/{t}");
            }
        }
        assert_eq!(cat.len(), 2 * DB_VCORES.len() + 2 * MI_VCORES.len());
    }

    #[test]
    fn ids_are_unique() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let mut ids: Vec<_> = cat.iter().map(|s| s.id.clone()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn bc_beats_gp_on_every_performance_axis_at_equal_vcores() {
        let spec = CatalogSpec::default();
        let cat = azure_paas_catalog(&spec);
        for &v in &DB_VCORES {
            let gp = cat.get(&SkuId(format!("DB_GP_{v}"))).unwrap();
            let bc = cat.get(&SkuId(format!("DB_BC_{v}"))).unwrap();
            assert!(bc.caps.iops > gp.caps.iops);
            assert!(bc.caps.log_rate_mbps > gp.caps.log_rate_mbps);
            assert!(bc.caps.min_io_latency_ms < gp.caps.min_io_latency_ms);
            assert!(bc.price_per_hour > gp.price_per_hour);
        }
    }

    #[test]
    fn price_increases_with_vcores_within_family() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let mut gp: Vec<_> = cat
            .iter()
            .filter(|s| {
                s.deployment == DeploymentType::SqlDb && s.tier == ServiceTier::GeneralPurpose
            })
            .collect();
        gp.sort_by(|a, b| a.caps.vcores.partial_cmp(&b.caps.vcores).unwrap());
        for w in gp.windows(2) {
            assert!(w[1].price_per_hour > w[0].price_per_hour);
            assert!(w[1].caps.dominates(&w[0].caps));
        }
    }

    #[test]
    fn replay_skus_match_table6() {
        let skus = replay_skus();
        assert_eq!(skus.len(), 4);
        assert_eq!(skus[0].vcores(), 4);
        assert_eq!(skus[0].caps.memory_gb, 16.0);
        assert_eq!(skus[0].caps.iops, 6_000.0);
        assert_eq!(skus[1].vcores(), 8);
        assert_eq!(skus[1].caps.iops, 12_000.0);
        assert_eq!(skus[2].caps.iops, 154_000.0);
        assert_eq!(skus[3].vcores(), 32);
        assert_eq!(skus[3].caps.memory_gb, 128.0);
        assert_eq!(skus[3].caps.iops, 308_000.0);
        // Prices must be strictly increasing so Figure 12 has a usable x-axis.
        for w in skus.windows(2) {
            assert!(w[1].price_per_hour > w[0].price_per_hour);
        }
    }

    #[test]
    fn mi_catalog_starts_at_four_vcores() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let min_mi = cat
            .iter()
            .filter(|s| s.deployment == DeploymentType::SqlMi)
            .map(|s| s.vcores())
            .min()
            .unwrap();
        assert_eq!(min_mi, 4);
    }
}
