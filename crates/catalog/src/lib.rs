//! Azure SQL PaaS SKU catalog model for the Doppler engine.
//!
//! The paper's recommendation engine consumes three fixed inputs besides the
//! customer's telemetry (§3.1): "(ii) all the possible cloud target PaaS
//! SKUs; and (iii) the real-time pricing associated with each SKU". This
//! crate provides both:
//!
//! * [`sku`] — the SKU record: deployment type (SQL DB / SQL MI), service
//!   tier (General Purpose / Business Critical), and per-dimension resource
//!   capacities (Figure 1),
//! * [`storage`] — the premium-disk storage tiers P10–P60 and database file
//!   layouts that drive SQL MI General Purpose IOPS limits (Table 2, §3.2),
//! * [`generate`] — a catalog builder that expands the per-vCore scaling
//!   rules the paper reprints into the full 200+ SKU universe, plus the four
//!   machines of Table 6 used for workload replay,
//! * [`billing`] — hourly/monthly pricing (the "billing interface" of §4),
//! * [`catalog`] — the query API the engine uses to enumerate and filter
//!   candidates,
//! * [`provider`] — catalog *resolution*: a [`CatalogKey`]
//!   `(deployment, region, version)` resolves through a
//!   [`CatalogProvider`] to the `Arc`-shared catalog and billing rates
//!   serving that offer, with content fingerprints engine caches key on.

pub mod billing;
pub mod catalog;
pub mod generate;
pub mod provider;
pub mod sku;
pub mod storage;

pub use billing::{BillingRates, HOURS_PER_MONTH};
pub use catalog::Catalog;
pub use generate::{azure_paas_catalog, replay_skus, CatalogSpec};
pub use provider::{
    CatalogKey, CatalogProvider, CatalogRoll, CatalogVersion, FeedError, Fingerprint,
    InMemoryCatalogProvider, PriceFeed, RefreshableCatalogProvider, Region, ResolvedCatalog,
};
pub use sku::{DeploymentType, ResourceCaps, ServiceTier, Sku, SkuId};
pub use storage::{DataFile, FileLayout, StorageTier, TierAssignment};
