//! Catalog resolution: from a `(deployment, region, version)` key to the
//! SKU catalog and billing rates that serve it.
//!
//! Production Doppler recommends against *many* offer catalogs, not one:
//! each Azure region prices the same compute shapes differently, and the
//! catalog itself is versioned as Azure adds rungs and revises limits
//! (§4's "real-time pricing associated with each SKU" is a per-region
//! feed). This module is the seam that keeps the engine agnostic of where
//! its catalog came from:
//!
//! * [`CatalogKey`] — the full identity of one offer catalog:
//!   deployment target, [`Region`], and [`CatalogVersion`];
//! * [`CatalogProvider`] — the resolution trait: key → [`ResolvedCatalog`]
//!   (an `Arc`-shared [`Catalog`], its [`BillingRates`], and a content
//!   [`fingerprint`](Catalog::fingerprint) that downstream caches key on);
//! * [`InMemoryCatalogProvider`] — the multi-region in-memory
//!   implementation: one generated Azure catalog per region at a
//!   region-specific price multiplier (the Lorentz-style abstraction of
//!   the candidate/pricing source);
//! * [`RefreshableCatalogProvider`] — the *lifecycle* wrapper: billing
//!   changes arrive as [`PriceFeed`]s (or whole-catalog swaps), each roll
//!   bumps the region's [`CatalogVersion`] atomically and appends a
//!   [`CatalogRoll`] to the change log, while every previously published
//!   key keeps resolving so in-flight work is never yanked mid-assessment.
//!
//! # Example
//!
//! ```
//! use doppler_catalog::{
//!     CatalogKey, CatalogProvider, CatalogSpec, CatalogVersion, DeploymentType,
//!     InMemoryCatalogProvider, Region,
//! };
//!
//! // East US at list price, West Europe 8 % above it.
//! let provider = InMemoryCatalogProvider::new()
//!     .with_region(Region::new("eastus"), CatalogVersion::INITIAL, &CatalogSpec::default(), 1.0)
//!     .with_region(Region::new("westeurope"), CatalogVersion::INITIAL, &CatalogSpec::default(), 1.08);
//!
//! let east = CatalogKey::new(DeploymentType::SqlDb, Region::new("eastus"), CatalogVersion::INITIAL);
//! let west = CatalogKey::new(DeploymentType::SqlDb, Region::new("westeurope"), CatalogVersion::INITIAL);
//! let cheap = provider.resolve(&east).unwrap();
//! let dear = provider.resolve(&west).unwrap();
//! assert!(dear.rates.db_gp > cheap.rates.db_gp);
//! assert_ne!(cheap.fingerprint, dear.fingerprint);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

use doppler_obs::{Counter, Histogram, ObsRegistry};

use crate::billing::BillingRates;
use crate::catalog::Catalog;
use crate::generate::{azure_paas_catalog, CatalogSpec};
use crate::sku::DeploymentType;

/// An Azure-style region label (`"eastus"`, `"westeurope"`, …). Plain
/// newtype, so multi-cloud scenarios can mint their own namespaces
/// (`"aws/us-east-1"`) without touching the engine.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Region(pub String);

impl Region {
    /// A region from any string-ish label.
    pub fn new(label: impl Into<String>) -> Region {
        Region(label.into())
    }

    /// The region used when a caller never says — the single-catalog
    /// behaviour the seed shipped with.
    pub fn global() -> Region {
        Region("global".to_string())
    }

    /// The label.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Region {
    fn from(s: &str) -> Region {
        Region::new(s)
    }
}

/// A monotonically increasing catalog revision. Azure revises limits and
/// adds rungs; pinning the version in the key means an engine trained
/// against `v1` is never served a `v2` catalog by accident.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct CatalogVersion(pub u32);

impl CatalogVersion {
    /// The first published revision.
    pub const INITIAL: CatalogVersion = CatalogVersion(1);

    /// The next revision after this one.
    pub fn next(self) -> CatalogVersion {
        CatalogVersion(self.0 + 1)
    }
}

impl Default for CatalogVersion {
    fn default() -> CatalogVersion {
        CatalogVersion::INITIAL
    }
}

impl fmt::Display for CatalogVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The full identity of one offer catalog: which deployment family it
/// serves, in which [`Region`], at which [`CatalogVersion`].
///
/// This is the unit engines are trained and cached per: two fleets
/// assessing the same deployment in different regions resolve different
/// keys and therefore different prices, while two fleets sharing a key
/// share one trained engine.
///
/// ```
/// use doppler_catalog::{CatalogKey, CatalogVersion, DeploymentType, Region};
///
/// let key = CatalogKey::new(DeploymentType::SqlMi, Region::new("eastus"), CatalogVersion::INITIAL);
/// assert_eq!(key.to_string(), "MI@eastus#v1");
/// assert_eq!(CatalogKey::production(DeploymentType::SqlDb).region, Region::global());
/// ```
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct CatalogKey {
    pub deployment: DeploymentType,
    pub region: Region,
    pub version: CatalogVersion,
}

impl CatalogKey {
    pub fn new(deployment: DeploymentType, region: Region, version: CatalogVersion) -> CatalogKey {
        CatalogKey { deployment, region, version }
    }

    /// The default key for a deployment: the [`Region::global`] catalog at
    /// its initial version — what single-catalog callers resolve.
    pub fn production(deployment: DeploymentType) -> CatalogKey {
        CatalogKey::new(deployment, Region::global(), CatalogVersion::INITIAL)
    }

    /// The same key against another region.
    pub fn in_region(mut self, region: Region) -> CatalogKey {
        self.region = region;
        self
    }

    /// The same key at another catalog version.
    pub fn at_version(mut self, version: CatalogVersion) -> CatalogKey {
        self.version = version;
        self
    }
}

impl fmt::Display for CatalogKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.deployment, self.region, self.version)
    }
}

/// A streaming FNV-1a 64-bit hasher for content fingerprints.
///
/// Deliberately *not* `std::hash::Hasher`: fingerprints are stable
/// identities that cross thread and (in principle) process boundaries, so
/// they must not depend on `RandomState` seeding, and `f64`s are hashed by
/// bit pattern explicitly rather than through a blanket impl.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET_BASIS)
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hash an `f64` by bit pattern (`-0.0` and `0.0` therefore differ —
    /// fingerprints identify inputs, they do not define numeric equality).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hash a string length-prefixed, so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

impl BillingRates {
    /// Rates scaled by a region price multiplier (West Europe lists ~8 %
    /// above East US; sovereign clouds run higher still).
    pub fn scaled(&self, multiplier: f64) -> BillingRates {
        BillingRates {
            db_gp: self.db_gp * multiplier,
            db_bc: self.db_bc * multiplier,
            mi_gp: self.mi_gp * multiplier,
            mi_bc: self.mi_bc * multiplier,
        }
    }

    /// Fold these rates into a content fingerprint.
    pub fn write_fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.db_gp);
        fp.write_f64(self.db_bc);
        fp.write_f64(self.mi_gp);
        fp.write_f64(self.mi_bc);
    }
}

impl Catalog {
    /// A deterministic content fingerprint over every SKU's identity,
    /// capacities, and price — two catalogs fingerprint equal iff their
    /// contents are bit-for-bit equal. Engine caches key on this, so a
    /// revised catalog can never serve a stale engine.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_usize(self.len());
        for sku in self.iter() {
            fp.write_str(&sku.id.0);
            fp.write_u8(sku.deployment as u8);
            fp.write_u8(sku.tier as u8);
            fp.write_f64(sku.caps.vcores);
            fp.write_f64(sku.caps.memory_gb);
            fp.write_f64(sku.caps.max_data_gb);
            fp.write_f64(sku.caps.iops);
            fp.write_f64(sku.caps.log_rate_mbps);
            fp.write_f64(sku.caps.min_io_latency_ms);
            fp.write_f64(sku.caps.throughput_mbps);
            fp.write_f64(sku.price_per_hour);
        }
        fp.finish()
    }
}

/// One resolved catalog: the shared SKU universe, the billing rates that
/// priced it, and the content fingerprint caches key on.
#[derive(Debug, Clone)]
pub struct ResolvedCatalog {
    pub catalog: Arc<Catalog>,
    pub rates: BillingRates,
    /// Covers the catalog contents *and* the rates — precomputed at
    /// registration so the warm resolution path never rehashes 40+ SKUs.
    pub fingerprint: u64,
}

impl ResolvedCatalog {
    /// Bundle a catalog with its rates, computing the fingerprint once.
    pub fn new(catalog: Arc<Catalog>, rates: BillingRates) -> ResolvedCatalog {
        let mut fp = Fingerprint::new();
        fp.write_u64(catalog.fingerprint());
        rates.write_fingerprint(&mut fp);
        ResolvedCatalog { catalog, rates, fingerprint: fp.finish() }
    }
}

/// The resolution seam between engines and their catalog source.
///
/// Implementations must be cheap on the warm path — `resolve` is called
/// once per engine lookup, so a map access plus an `Arc` bump is the
/// budget. `Send + Sync` because one provider serves every worker of a
/// fleet.
pub trait CatalogProvider: Send + Sync {
    /// The catalog serving `key`, or `None` when no such offer exists.
    fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog>;

    /// Every key this provider can resolve, in deterministic order.
    /// Default: unknown (empty) — providers backed by remote feeds cannot
    /// enumerate.
    fn keys(&self) -> Vec<CatalogKey> {
        Vec::new()
    }
}

/// An in-memory multi-region [`CatalogProvider`]: one entry per
/// [`CatalogKey`], typically generated per region from a [`CatalogSpec`]
/// at a region price multiplier.
///
/// Both deployments of a region share one `Arc<Catalog>` allocation — the
/// key narrows *which* SKUs an engine enumerates, not which catalog object
/// it holds.
#[derive(Default)]
pub struct InMemoryCatalogProvider {
    entries: HashMap<CatalogKey, ResolvedCatalog>,
}

impl InMemoryCatalogProvider {
    pub fn new() -> InMemoryCatalogProvider {
        InMemoryCatalogProvider::default()
    }

    /// A provider holding only the default production catalog (both
    /// deployments, [`Region::global`], [`CatalogVersion::INITIAL`]) — the
    /// drop-in equivalent of the seed's single hard-coded catalog.
    pub fn production() -> InMemoryCatalogProvider {
        InMemoryCatalogProvider::new().with_region(
            Region::global(),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            1.0,
        )
    }

    /// Register (or replace) one key's catalog and rates.
    pub fn insert(&mut self, key: CatalogKey, catalog: Arc<Catalog>, rates: BillingRates) {
        self.entries.insert(key, ResolvedCatalog::new(catalog, rates));
    }

    /// Builder-style [`insert`](InMemoryCatalogProvider::insert).
    pub fn with_catalog(
        mut self,
        key: CatalogKey,
        catalog: Arc<Catalog>,
        rates: BillingRates,
    ) -> InMemoryCatalogProvider {
        self.insert(key, catalog, rates);
        self
    }

    /// Generate and register a whole region at a price multiplier: the
    /// Azure PaaS universe of `spec` is expanded once with the scaled
    /// rates, shared across both deployment keys of the region.
    pub fn with_region(
        mut self,
        region: Region,
        version: CatalogVersion,
        spec: &CatalogSpec,
        price_multiplier: f64,
    ) -> InMemoryCatalogProvider {
        let rates = spec.rates.scaled(price_multiplier);
        let regional_spec = CatalogSpec { rates, ..*spec };
        let catalog = Arc::new(azure_paas_catalog(&regional_spec));
        for deployment in [DeploymentType::SqlDb, DeploymentType::SqlMi] {
            self.insert(
                CatalogKey::new(deployment, region.clone(), version),
                Arc::clone(&catalog),
                rates,
            );
        }
        self
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl CatalogProvider for InMemoryCatalogProvider {
    fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog> {
        self.entries.get(key).cloned()
    }

    fn keys(&self) -> Vec<CatalogKey> {
        let mut keys: Vec<CatalogKey> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }
}

/// One price-feed update for a region — the §4 "real-time pricing" input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriceFeed {
    /// Scale the region's *current* rates (and therefore every SKU price)
    /// by a factor — a percentage price cut or rise, compounding across
    /// feeds.
    Multiplier(f64),
    /// Replace the region's rates outright; SKU prices re-derive from the
    /// new rates exactly as catalog generation would.
    Rates(BillingRates),
}

/// One entry of the [`RefreshableCatalogProvider`] change log: which key
/// rolled to which, and the content fingerprint the new key resolves to.
/// Downstream caches (the engine registry) retire `old_key` and train
/// `new_key` off this record.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogRoll {
    pub old_key: CatalogKey,
    pub new_key: CatalogKey,
    /// Fingerprint of the new key's [`ResolvedCatalog`].
    pub fingerprint: u64,
}

/// Why a feed or swap could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedError {
    /// No catalog is published for this region (feeds re-price existing
    /// offers; they do not create regions).
    UnknownRegion(Region),
    /// The multiplier was not a finite positive number.
    InvalidMultiplier(f64),
    /// The fed rates contained a non-finite or non-positive entry — a
    /// corrupted feed must be rejected before it can publish a catalog
    /// that panics downstream price sorts.
    InvalidRates(BillingRates),
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::UnknownRegion(region) => {
                write!(f, "no catalog published for region {region}")
            }
            FeedError::InvalidMultiplier(m) => {
                write!(f, "price multiplier must be finite and positive, got {m}")
            }
            FeedError::InvalidRates(rates) => {
                write!(f, "billing rates must be finite and positive, got {rates:?}")
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// Every rate finite and positive — what a publishable feed must satisfy.
fn rates_are_valid(rates: &BillingRates) -> bool {
    [rates.db_gp, rates.db_bc, rates.mi_gp, rates.mi_bc]
        .iter()
        .all(|rate| rate.is_finite() && *rate > 0.0)
}

/// Re-price a catalog against new rates, exactly as generation would:
/// every SKU's hourly price is re-derived through
/// [`BillingRates::hourly`], so a re-priced catalog is bit-for-bit equal
/// to one generated from a spec carrying those rates. Capacities are
/// untouched — a price feed changes what a shape costs, not what it does.
fn reprice(catalog: &Catalog, rates: &BillingRates) -> Catalog {
    Catalog::new(
        catalog
            .iter()
            .map(|sku| {
                let mut sku = sku.clone();
                sku.price_per_hour = rates.hourly(sku.deployment, sku.tier, sku.caps.vcores);
                sku
            })
            .collect(),
    )
}

/// Versioned entries layered over a wrapped provider, plus the per-region
/// version frontier and the roll log — everything behind one `RwLock` so a
/// feed lands atomically: no reader ever sees half a region rolled.
struct RefreshState {
    /// Keys published by feeds and swaps (the wrapped provider's own keys
    /// stay resolvable underneath).
    overrides: HashMap<CatalogKey, ResolvedCatalog>,
    /// Latest published version per (deployment, region). Strictly
    /// monotone: feeds and swaps only ever move it forward.
    latest: HashMap<(DeploymentType, Region), CatalogVersion>,
    log: Vec<CatalogRoll>,
}

/// A [`CatalogProvider`] wrapper that accepts **price-feed updates** and
/// **catalog swaps** at runtime — the missing lifecycle half of the
/// provider seam (PAPER.md §4: pricing is a live feed, not a constant).
///
/// Semantics:
///
/// * [`apply_feed`](RefreshableCatalogProvider::apply_feed) re-prices one
///   region and bumps its [`CatalogVersion`] — atomically for every
///   deployment published in the region, so `DB@west#v2` and `MI@west#v2`
///   appear together;
/// * a feed that changes nothing (multiplier `1.0`, or re-sending the
///   rates already in force) is **idempotent**: no version bump, no roll —
///   the fingerprint changes iff the rates change;
/// * old keys are never unpublished: an engine pinned to `v1` keeps
///   resolving until a registry-level retirement tombstones it, so version
///   rolls never race in-flight assessments;
/// * every roll is appended to the
///   [`change_log`](RefreshableCatalogProvider::change_log) as a
///   [`CatalogRoll`], the record fleet operators feed into
///   `DriftMonitor::on_catalog_roll`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use doppler_catalog::{
///     CatalogProvider, DeploymentType, InMemoryCatalogProvider, PriceFeed,
///     RefreshableCatalogProvider, Region,
/// };
///
/// let provider = RefreshableCatalogProvider::new(Arc::new(InMemoryCatalogProvider::production()));
/// let v1 = provider.latest(DeploymentType::SqlDb, &Region::global()).unwrap();
///
/// // A 7 % price cut lands: the global region rolls to v2.
/// let rolls = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(0.93)).unwrap();
/// let v2 = provider.latest(DeploymentType::SqlDb, &Region::global()).unwrap();
/// assert_eq!(v2.version, v1.version.next());
/// assert_eq!(rolls.len(), 2, "both deployments of the region roll together");
///
/// // Old and new keys both resolve; the new one is 7 % cheaper.
/// let old = provider.resolve(&v1).unwrap();
/// let new = provider.resolve(&v2).unwrap();
/// assert!(new.rates.db_gp < old.rates.db_gp);
/// ```
pub struct RefreshableCatalogProvider {
    inner: Arc<dyn CatalogProvider>,
    state: RwLock<RefreshState>,
    obs: ProviderObs,
}

/// Write-aside lifecycle instrumentation: feed-apply latency, a roll
/// counter, and a `catalog.roll` event per published roll. No-ops until
/// [`RefreshableCatalogProvider::with_obs`] is called.
#[derive(Default)]
struct ProviderObs {
    registry: ObsRegistry,
    /// `catalog.feed_apply` — one observation per
    /// [`apply_feed`](RefreshableCatalogProvider::apply_feed) call,
    /// including rejected and idempotent feeds.
    feed_apply: Histogram,
    /// `catalog.rolls` — rolls published by feeds and swaps.
    rolls: Counter,
}

impl RefreshableCatalogProvider {
    /// Wrap a provider. The wrapped provider's enumerable keys seed the
    /// per-region version frontier; providers that cannot enumerate
    /// ([`CatalogProvider::keys`] empty) start with no known regions and
    /// gain them through [`swap`](RefreshableCatalogProvider::swap).
    pub fn new(inner: Arc<dyn CatalogProvider>) -> RefreshableCatalogProvider {
        let mut latest: HashMap<(DeploymentType, Region), CatalogVersion> = HashMap::new();
        for key in inner.keys() {
            let entry = latest.entry((key.deployment, key.region.clone())).or_insert(key.version);
            *entry = (*entry).max(key.version);
        }
        RefreshableCatalogProvider {
            inner,
            state: RwLock::new(RefreshState { overrides: HashMap::new(), latest, log: Vec::new() }),
            obs: ProviderObs::default(),
        }
    }

    /// Record feed-apply latency (`catalog.feed_apply`), a roll counter
    /// (`catalog.rolls`), and one `catalog.roll` event per published roll
    /// into `obs`. Write-aside: resolution, feeds, and the change log are
    /// unaffected. Builder-style; set before sharing the provider.
    pub fn with_obs(mut self, obs: &ObsRegistry) -> RefreshableCatalogProvider {
        self.obs = ProviderObs {
            registry: obs.clone(),
            feed_apply: obs.histogram("catalog.feed_apply"),
            rolls: obs.counter("catalog.rolls"),
        };
        self
    }

    /// Emit one `catalog.roll` event per published roll and bump the roll
    /// counter — shared by feeds and swaps.
    fn record_rolls(&self, rolls: &[CatalogRoll]) {
        self.obs.rolls.add(rolls.len() as u64);
        if self.obs.registry.is_enabled() {
            for roll in rolls {
                self.obs
                    .registry
                    .event("catalog.roll", &format!("{} -> {}", roll.old_key, roll.new_key));
            }
        }
    }

    /// The production single-region provider, made refreshable.
    pub fn production() -> RefreshableCatalogProvider {
        RefreshableCatalogProvider::new(Arc::new(InMemoryCatalogProvider::production()))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, RefreshState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, RefreshState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The latest published key for `(deployment, region)`, or `None` when
    /// the region has never been published for that deployment.
    pub fn latest(&self, deployment: DeploymentType, region: &Region) -> Option<CatalogKey> {
        self.read()
            .latest
            .get(&(deployment, region.clone()))
            .map(|&version| CatalogKey::new(deployment, region.clone(), version))
    }

    /// The full change log, oldest roll first.
    pub fn change_log(&self) -> Vec<CatalogRoll> {
        self.read().log.clone()
    }

    /// The change log from `offset` onward — the cursor-based
    /// subscription primitive. A consumer that has already handled the
    /// first `offset` rolls calls this with its cursor and advances it by
    /// the returned length; replaying the same cursor twice between rolls
    /// returns nothing, so a subscriber (e.g.
    /// `DriftMonitor::dispatch_rolls`) never re-dispatches a roll it has
    /// handled. An `offset` past the end of the log is not an error — it
    /// returns the empty tail.
    pub fn change_log_since(&self, offset: usize) -> Vec<CatalogRoll> {
        let state = self.read();
        state.log[offset.min(state.log.len())..].to_vec()
    }

    /// Rolls applied so far.
    pub fn rolls(&self) -> usize {
        self.read().log.len()
    }

    /// Apply a price feed to one region: every deployment published in the
    /// region is re-priced and republished under the region's next
    /// [`CatalogVersion`], in one atomic update. Returns the
    /// [`CatalogRoll`]s appended to the change log — empty when the feed
    /// changes nothing (idempotent duplicate).
    pub fn apply_feed(
        &self,
        region: &Region,
        feed: PriceFeed,
    ) -> Result<Vec<CatalogRoll>, FeedError> {
        let _span = self.obs.feed_apply.start();
        match feed {
            PriceFeed::Multiplier(m) if !m.is_finite() || m <= 0.0 => {
                return Err(FeedError::InvalidMultiplier(m));
            }
            PriceFeed::Rates(rates) if !rates_are_valid(&rates) => {
                return Err(FeedError::InvalidRates(rates));
            }
            _ => {}
        }
        let mut state = self.write();
        // Deployments published in this region, in fixed (SqlDb, SqlMi)
        // order so the change log is deterministic.
        let deployments: Vec<DeploymentType> = [DeploymentType::SqlDb, DeploymentType::SqlMi]
            .into_iter()
            .filter(|&d| state.latest.contains_key(&(d, region.clone())))
            .collect();
        if deployments.is_empty() {
            return Err(FeedError::UnknownRegion(region.clone()));
        }

        // Resolve every current entry and compute its re-priced successor.
        // Deployments sharing one catalog allocation keep sharing it.
        let mut repriced: Vec<(CatalogKey, ResolvedCatalog, ResolvedCatalog)> = Vec::new();
        let mut shared: Vec<(*const Catalog, Arc<Catalog>)> = Vec::new();
        for &deployment in &deployments {
            let version = state.latest[&(deployment, region.clone())];
            let old_key = CatalogKey::new(deployment, region.clone(), version);
            let current = resolve_layered(&state, &self.inner, &old_key)
                .ok_or_else(|| FeedError::UnknownRegion(region.clone()))?;
            let rates = match feed {
                PriceFeed::Multiplier(m) => current.rates.scaled(m),
                PriceFeed::Rates(rates) => rates,
            };
            let ptr = Arc::as_ptr(&current.catalog);
            let catalog = match shared.iter().find(|(p, _)| *p == ptr) {
                Some((_, arc)) => Arc::clone(arc),
                None => {
                    let arc = Arc::new(reprice(&current.catalog, &rates));
                    shared.push((ptr, Arc::clone(&arc)));
                    arc
                }
            };
            repriced.push((old_key, current, ResolvedCatalog::new(catalog, rates)));
        }

        // Idempotence: a feed that leaves every fingerprint unchanged is a
        // no-op — no version bump, no log entries.
        if repriced.iter().all(|(_, old, new)| old.fingerprint == new.fingerprint) {
            return Ok(Vec::new());
        }

        // One atomic bump for the whole region: every deployment lands on
        // the same next version (the successor of the region's frontier),
        // even if per-deployment swaps had let their versions diverge.
        let next = deployments
            .iter()
            .map(|&d| state.latest[&(d, region.clone())])
            .max()
            .expect("non-empty")
            .next();
        let mut rolls = Vec::with_capacity(repriced.len());
        for (old_key, _, resolved) in repriced {
            let new_key = old_key.clone().at_version(next);
            let roll = CatalogRoll {
                old_key,
                new_key: new_key.clone(),
                fingerprint: resolved.fingerprint,
            };
            state.latest.insert((new_key.deployment, new_key.region.clone()), next);
            state.overrides.insert(new_key, resolved);
            state.log.push(roll.clone());
            rolls.push(roll);
        }
        drop(state);
        self.record_rolls(&rolls);
        Ok(rolls)
    }

    /// Swap in a whole new catalog for one `(deployment, region)` — the
    /// full-catalog update path (Azure added rungs, revised limits). The
    /// entry is republished at the deployment-region's next version and
    /// the roll is logged. Unlike feeds, a swap is never elided: a new
    /// catalog object is a new version even at identical prices.
    pub fn swap(
        &self,
        deployment: DeploymentType,
        region: &Region,
        catalog: Arc<Catalog>,
        rates: BillingRates,
    ) -> Result<CatalogRoll, FeedError> {
        if !rates_are_valid(&rates) {
            return Err(FeedError::InvalidRates(rates));
        }
        let mut state = self.write();
        let version = *state
            .latest
            .get(&(deployment, region.clone()))
            .ok_or_else(|| FeedError::UnknownRegion(region.clone()))?;
        let old_key = CatalogKey::new(deployment, region.clone(), version);
        let new_key = old_key.clone().at_version(version.next());
        let resolved = ResolvedCatalog::new(catalog, rates);
        let roll =
            CatalogRoll { old_key, new_key: new_key.clone(), fingerprint: resolved.fingerprint };
        state.latest.insert((deployment, region.clone()), new_key.version);
        state.overrides.insert(new_key, resolved);
        state.log.push(roll.clone());
        drop(state);
        self.record_rolls(std::slice::from_ref(&roll));
        Ok(roll)
    }
}

/// Overrides first, the wrapped provider underneath — the single
/// resolution rule, shared by the trait impl and `apply_feed`'s
/// read-current step (which already holds the lock).
fn resolve_layered(
    state: &RefreshState,
    inner: &Arc<dyn CatalogProvider>,
    key: &CatalogKey,
) -> Option<ResolvedCatalog> {
    state.overrides.get(key).cloned().or_else(|| inner.resolve(key))
}

impl CatalogProvider for RefreshableCatalogProvider {
    fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog> {
        let state = self.read();
        resolve_layered(&state, &self.inner, key)
    }

    fn keys(&self) -> Vec<CatalogKey> {
        let state = self.read();
        let mut keys = self.inner.keys();
        keys.extend(state.overrides.keys().cloned());
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CatalogSpec {
        CatalogSpec::default()
    }

    #[test]
    fn with_obs_counts_rolls_and_times_feeds() {
        let obs = ObsRegistry::enabled();
        let provider = RefreshableCatalogProvider::production().with_obs(&obs);
        let rolls = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(0.9)).unwrap();
        assert!(!rolls.is_empty());
        // Idempotent duplicate: latency still recorded, no new rolls.
        provider.apply_feed(&Region::global(), PriceFeed::Multiplier(1.0)).unwrap();
        let s = obs.snapshot();
        assert_eq!(s.counter("catalog.rolls"), Some(provider.rolls() as u64));
        assert_eq!(s.histogram("catalog.feed_apply").unwrap().count, 2);
        assert_eq!(s.events.iter().filter(|e| e.name == "catalog.roll").count(), rolls.len());
    }

    #[test]
    fn key_display_reads_compactly() {
        let key = CatalogKey::production(DeploymentType::SqlDb);
        assert_eq!(key.to_string(), "DB@global#v1");
        let key = key.in_region(Region::new("eastus")).at_version(CatalogVersion(3));
        assert_eq!(key.to_string(), "DB@eastus#v3");
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = azure_paas_catalog(&spec());
        let b = azure_paas_catalog(&spec());
        assert_eq!(a.fingerprint(), b.fingerprint());

        let pricier = CatalogSpec { rates: spec().rates.scaled(1.01), ..spec() };
        assert_ne!(a.fingerprint(), azure_paas_catalog(&pricier).fingerprint());

        let extra = a.clone().with_extra(
            b.iter()
                .next()
                .cloned()
                .map(|mut s| {
                    s.id = crate::sku::SkuId("DB_GP_custom".into());
                    s
                })
                .unwrap(),
        );
        assert_ne!(a.fingerprint(), extra.fingerprint());
    }

    #[test]
    fn fingerprint_write_str_is_length_prefixed() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn region_multiplier_scales_every_price() {
        let provider = InMemoryCatalogProvider::new()
            .with_region(Region::new("eastus"), CatalogVersion::INITIAL, &spec(), 1.0)
            .with_region(Region::new("westeurope"), CatalogVersion::INITIAL, &spec(), 1.08);
        let east = provider
            .resolve(&CatalogKey::new(
                DeploymentType::SqlDb,
                Region::new("eastus"),
                CatalogVersion::INITIAL,
            ))
            .unwrap();
        let west = provider
            .resolve(&CatalogKey::new(
                DeploymentType::SqlDb,
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
            ))
            .unwrap();
        assert_eq!(east.catalog.len(), west.catalog.len());
        for (e, w) in east.catalog.iter().zip(west.catalog.iter()) {
            assert_eq!(e.id, w.id);
            assert!((w.price_per_hour - e.price_per_hour * 1.08).abs() < 1e-9, "{}", e.id);
        }
        assert!((west.rates.mi_bc - east.rates.mi_bc * 1.08).abs() < 1e-12);
    }

    #[test]
    fn both_deployments_of_a_region_share_one_catalog_allocation() {
        let provider = InMemoryCatalogProvider::production();
        let db = provider.resolve(&CatalogKey::production(DeploymentType::SqlDb)).unwrap();
        let mi = provider.resolve(&CatalogKey::production(DeploymentType::SqlMi)).unwrap();
        assert!(Arc::ptr_eq(&db.catalog, &mi.catalog));
        assert_eq!(db.fingerprint, mi.fingerprint);
    }

    #[test]
    fn unknown_keys_resolve_to_none() {
        let provider = InMemoryCatalogProvider::production();
        let missing = CatalogKey::production(DeploymentType::SqlDb).in_region("mars".into());
        assert!(provider.resolve(&missing).is_none());
        let stale = CatalogKey::production(DeploymentType::SqlDb).at_version(CatalogVersion(2));
        assert!(provider.resolve(&stale).is_none());
    }

    #[test]
    fn keys_enumerate_sorted() {
        let provider = InMemoryCatalogProvider::new()
            .with_region(Region::new("b"), CatalogVersion::INITIAL, &spec(), 1.0)
            .with_region(Region::new("a"), CatalogVersion::INITIAL, &spec(), 1.0);
        let keys = provider.keys();
        assert_eq!(keys.len(), 4);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn versions_advance() {
        assert_eq!(CatalogVersion::INITIAL.next(), CatalogVersion(2));
        assert_eq!(CatalogVersion::default(), CatalogVersion::INITIAL);
        assert!(CatalogVersion(2) > CatalogVersion::INITIAL);
    }

    fn refreshable() -> RefreshableCatalogProvider {
        RefreshableCatalogProvider::new(Arc::new(
            InMemoryCatalogProvider::production().with_region(
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
                &spec(),
                1.08,
            ),
        ))
    }

    #[test]
    fn feed_rolls_every_deployment_of_the_region_to_one_new_version() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        let rolls = provider.apply_feed(&west, PriceFeed::Multiplier(0.9)).unwrap();
        assert_eq!(rolls.len(), 2);
        for roll in &rolls {
            assert_eq!(roll.old_key.version, CatalogVersion::INITIAL);
            assert_eq!(roll.new_key.version, CatalogVersion(2));
            assert_eq!(roll.new_key.region, west);
            let resolved = provider.resolve(&roll.new_key).unwrap();
            assert_eq!(resolved.fingerprint, roll.fingerprint);
        }
        assert_eq!(provider.change_log(), rolls);
        // The untouched region's frontier did not move.
        let global = provider.latest(DeploymentType::SqlDb, &Region::global()).unwrap();
        assert_eq!(global.version, CatalogVersion::INITIAL);
    }

    #[test]
    fn change_log_since_is_a_replay_safe_cursor() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        assert!(provider.change_log_since(0).is_empty(), "no rolls yet");

        let first = provider.apply_feed(&west, PriceFeed::Multiplier(0.9)).unwrap();
        assert_eq!(provider.change_log_since(0), provider.change_log());
        assert_eq!(provider.change_log_since(0), first);
        let mut cursor = provider.rolls();
        assert!(provider.change_log_since(cursor).is_empty(), "cursor drained the log");
        assert!(
            provider.change_log_since(cursor).is_empty(),
            "replaying the same cursor twice yields nothing new"
        );

        let second = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(0.8)).unwrap();
        let tail = provider.change_log_since(cursor);
        assert_eq!(tail, second, "only the rolls after the cursor come back");
        cursor += tail.len();
        assert_eq!(cursor, provider.rolls());
        assert!(provider.change_log_since(cursor).is_empty());
        assert!(
            provider.change_log_since(cursor + 10).is_empty(),
            "past-the-end is empty, not a panic"
        );
    }

    #[test]
    fn feed_reprices_exactly_like_generation_would() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        provider.apply_feed(&west, PriceFeed::Multiplier(0.9)).unwrap();
        let key = provider.latest(DeploymentType::SqlDb, &west).unwrap();
        let rolled = provider.resolve(&key).unwrap();
        // The reference: generate the catalog from the rolled rates
        // directly. Bit-for-bit equal prices and fingerprint.
        let rates = spec().rates.scaled(1.08).scaled(0.9);
        let reference = azure_paas_catalog(&CatalogSpec { rates, ..spec() });
        assert_eq!(rolled.catalog.fingerprint(), reference.fingerprint());
        for (a, b) in rolled.catalog.iter().zip(reference.iter()) {
            assert_eq!(a.price_per_hour.to_bits(), b.price_per_hour.to_bits(), "{}", a.id);
            assert_eq!(a.caps.iops, b.caps.iops, "capacities are untouched");
        }
        // Both deployments of the rolled region still share one catalog
        // allocation, as the in-memory provider publishes them.
        let mi_key = CatalogKey::new(DeploymentType::SqlMi, west, key.version);
        let mi = provider.resolve(&mi_key).unwrap();
        assert!(Arc::ptr_eq(&rolled.catalog, &mi.catalog));
    }

    #[test]
    fn old_keys_keep_resolving_after_a_roll() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        let v1 = provider.latest(DeploymentType::SqlDb, &west).unwrap();
        let before = provider.resolve(&v1).unwrap();
        provider.apply_feed(&west, PriceFeed::Multiplier(1.2)).unwrap();
        let after = provider.resolve(&v1).unwrap();
        assert_eq!(before.fingerprint, after.fingerprint, "v1 is immutable");
        assert_eq!(provider.keys().len(), 4 + 2, "old and new keys both enumerate");
    }

    #[test]
    fn feed_to_unknown_region_is_a_typed_error() {
        let provider = refreshable();
        let err =
            provider.apply_feed(&Region::new("mars"), PriceFeed::Multiplier(0.5)).unwrap_err();
        assert_eq!(err, FeedError::UnknownRegion(Region::new("mars")));
        assert!(err.to_string().contains("mars"));
        assert_eq!(provider.rolls(), 0);
        // Swaps demand a published region too.
        let err = provider
            .swap(
                DeploymentType::SqlDb,
                &Region::new("mars"),
                Arc::new(azure_paas_catalog(&spec())),
                spec().rates,
            )
            .unwrap_err();
        assert_eq!(err, FeedError::UnknownRegion(Region::new("mars")));
    }

    #[test]
    fn invalid_multipliers_are_rejected() {
        let provider = refreshable();
        for m in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(m)).unwrap_err();
            assert!(matches!(err, FeedError::InvalidMultiplier(_)), "{m}");
        }
        assert_eq!(provider.rolls(), 0);
    }

    #[test]
    fn corrupted_rates_feeds_are_rejected_before_publishing() {
        let provider = refreshable();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.25] {
            let rates = BillingRates { db_gp: bad, ..BillingRates::default() };
            let err = provider.apply_feed(&Region::global(), PriceFeed::Rates(rates)).unwrap_err();
            assert!(matches!(err, FeedError::InvalidRates(_)), "{bad}");
            let err = provider
                .swap(
                    DeploymentType::SqlDb,
                    &Region::global(),
                    Arc::new(azure_paas_catalog(&spec())),
                    rates,
                )
                .unwrap_err();
            assert!(matches!(err, FeedError::InvalidRates(_)), "{bad} (swap)");
        }
        // Nothing rolled, nothing published: the frontier never moved.
        assert_eq!(provider.rolls(), 0);
        assert_eq!(provider.latest(DeploymentType::SqlDb, &Region::global()).unwrap().version.0, 1);
    }

    #[test]
    fn duplicate_feeds_are_idempotent() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        // Multiplier 1.0 changes nothing: no roll, no version bump.
        assert!(provider.apply_feed(&west, PriceFeed::Multiplier(1.0)).unwrap().is_empty());
        assert_eq!(provider.latest(DeploymentType::SqlDb, &west).unwrap().version.0, 1);
        // A real change rolls once; re-sending the same absolute rates is
        // then a no-op.
        let rates = spec().rates.scaled(0.8);
        assert_eq!(provider.apply_feed(&west, PriceFeed::Rates(rates)).unwrap().len(), 2);
        assert!(provider.apply_feed(&west, PriceFeed::Rates(rates)).unwrap().is_empty());
        assert_eq!(provider.latest(DeploymentType::SqlDb, &west).unwrap().version.0, 2);
        assert_eq!(provider.rolls(), 2);
    }

    #[test]
    fn fingerprint_changes_iff_rates_change() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        let v1 = provider.resolve(&provider.latest(DeploymentType::SqlDb, &west).unwrap()).unwrap();
        // Unchanged rates → no new fingerprint (no roll at all).
        assert!(provider.apply_feed(&west, PriceFeed::Multiplier(1.0)).unwrap().is_empty());
        // Changed rates → the roll's fingerprint differs from v1's.
        let rolls = provider.apply_feed(&west, PriceFeed::Multiplier(1.01)).unwrap();
        assert!(rolls.iter().all(|r| r.fingerprint != v1.fingerprint));
    }

    #[test]
    fn swap_publishes_a_new_catalog_at_the_next_version() {
        let provider = refreshable();
        let bigger = azure_paas_catalog(&spec()).with_extra(crate::sku::Sku {
            id: crate::sku::SkuId("DB_GP_custom".into()),
            ..azure_paas_catalog(&spec()).iter().next().unwrap().clone()
        });
        let roll = provider
            .swap(DeploymentType::SqlDb, &Region::global(), Arc::new(bigger), spec().rates)
            .unwrap();
        assert_eq!(roll.new_key.version, CatalogVersion(2));
        let resolved = provider.resolve(&roll.new_key).unwrap();
        assert_eq!(resolved.catalog.len(), 45);
        assert_eq!(provider.latest(DeploymentType::SqlDb, &Region::global()).unwrap().version.0, 2);
        // The sibling deployment did not move — but the next feed realigns
        // the whole region on one version.
        assert_eq!(provider.latest(DeploymentType::SqlMi, &Region::global()).unwrap().version.0, 1);
        let rolls = provider.apply_feed(&Region::global(), PriceFeed::Multiplier(1.1)).unwrap();
        assert!(rolls.iter().all(|r| r.new_key.version == CatalogVersion(3)));
    }

    #[test]
    fn multiplier_feeds_compound() {
        let provider = refreshable();
        let west = Region::new("westeurope");
        provider.apply_feed(&west, PriceFeed::Multiplier(0.5)).unwrap();
        provider.apply_feed(&west, PriceFeed::Multiplier(0.5)).unwrap();
        let key = provider.latest(DeploymentType::SqlDb, &west).unwrap();
        assert_eq!(key.version.0, 3);
        let resolved = provider.resolve(&key).unwrap();
        let base = spec().rates.scaled(1.08);
        assert!((resolved.rates.db_gp - base.db_gp * 0.25).abs() < 1e-12);
    }
}
