//! Catalog resolution: from a `(deployment, region, version)` key to the
//! SKU catalog and billing rates that serve it.
//!
//! Production Doppler recommends against *many* offer catalogs, not one:
//! each Azure region prices the same compute shapes differently, and the
//! catalog itself is versioned as Azure adds rungs and revises limits
//! (§4's "real-time pricing associated with each SKU" is a per-region
//! feed). This module is the seam that keeps the engine agnostic of where
//! its catalog came from:
//!
//! * [`CatalogKey`] — the full identity of one offer catalog:
//!   deployment target, [`Region`], and [`CatalogVersion`];
//! * [`CatalogProvider`] — the resolution trait: key → [`ResolvedCatalog`]
//!   (an `Arc`-shared [`Catalog`], its [`BillingRates`], and a content
//!   [`fingerprint`](Catalog::fingerprint) that downstream caches key on);
//! * [`InMemoryCatalogProvider`] — the multi-region in-memory
//!   implementation: one generated Azure catalog per region at a
//!   region-specific price multiplier (the Lorentz-style abstraction of
//!   the candidate/pricing source).
//!
//! # Example
//!
//! ```
//! use doppler_catalog::{
//!     CatalogKey, CatalogProvider, CatalogSpec, CatalogVersion, DeploymentType,
//!     InMemoryCatalogProvider, Region,
//! };
//!
//! // East US at list price, West Europe 8 % above it.
//! let provider = InMemoryCatalogProvider::new()
//!     .with_region(Region::new("eastus"), CatalogVersion::INITIAL, &CatalogSpec::default(), 1.0)
//!     .with_region(Region::new("westeurope"), CatalogVersion::INITIAL, &CatalogSpec::default(), 1.08);
//!
//! let east = CatalogKey::new(DeploymentType::SqlDb, Region::new("eastus"), CatalogVersion::INITIAL);
//! let west = CatalogKey::new(DeploymentType::SqlDb, Region::new("westeurope"), CatalogVersion::INITIAL);
//! let cheap = provider.resolve(&east).unwrap();
//! let dear = provider.resolve(&west).unwrap();
//! assert!(dear.rates.db_gp > cheap.rates.db_gp);
//! assert_ne!(cheap.fingerprint, dear.fingerprint);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::billing::BillingRates;
use crate::catalog::Catalog;
use crate::generate::{azure_paas_catalog, CatalogSpec};
use crate::sku::DeploymentType;

/// An Azure-style region label (`"eastus"`, `"westeurope"`, …). Plain
/// newtype, so multi-cloud scenarios can mint their own namespaces
/// (`"aws/us-east-1"`) without touching the engine.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Region(pub String);

impl Region {
    /// A region from any string-ish label.
    pub fn new(label: impl Into<String>) -> Region {
        Region(label.into())
    }

    /// The region used when a caller never says — the single-catalog
    /// behaviour the seed shipped with.
    pub fn global() -> Region {
        Region("global".to_string())
    }

    /// The label.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Region {
    fn from(s: &str) -> Region {
        Region::new(s)
    }
}

/// A monotonically increasing catalog revision. Azure revises limits and
/// adds rungs; pinning the version in the key means an engine trained
/// against `v1` is never served a `v2` catalog by accident.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct CatalogVersion(pub u32);

impl CatalogVersion {
    /// The first published revision.
    pub const INITIAL: CatalogVersion = CatalogVersion(1);

    /// The next revision after this one.
    pub fn next(self) -> CatalogVersion {
        CatalogVersion(self.0 + 1)
    }
}

impl Default for CatalogVersion {
    fn default() -> CatalogVersion {
        CatalogVersion::INITIAL
    }
}

impl fmt::Display for CatalogVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The full identity of one offer catalog: which deployment family it
/// serves, in which [`Region`], at which [`CatalogVersion`].
///
/// This is the unit engines are trained and cached per: two fleets
/// assessing the same deployment in different regions resolve different
/// keys and therefore different prices, while two fleets sharing a key
/// share one trained engine.
///
/// ```
/// use doppler_catalog::{CatalogKey, CatalogVersion, DeploymentType, Region};
///
/// let key = CatalogKey::new(DeploymentType::SqlMi, Region::new("eastus"), CatalogVersion::INITIAL);
/// assert_eq!(key.to_string(), "MI@eastus#v1");
/// assert_eq!(CatalogKey::production(DeploymentType::SqlDb).region, Region::global());
/// ```
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct CatalogKey {
    pub deployment: DeploymentType,
    pub region: Region,
    pub version: CatalogVersion,
}

impl CatalogKey {
    pub fn new(deployment: DeploymentType, region: Region, version: CatalogVersion) -> CatalogKey {
        CatalogKey { deployment, region, version }
    }

    /// The default key for a deployment: the [`Region::global`] catalog at
    /// its initial version — what single-catalog callers resolve.
    pub fn production(deployment: DeploymentType) -> CatalogKey {
        CatalogKey::new(deployment, Region::global(), CatalogVersion::INITIAL)
    }

    /// The same key against another region.
    pub fn in_region(mut self, region: Region) -> CatalogKey {
        self.region = region;
        self
    }

    /// The same key at another catalog version.
    pub fn at_version(mut self, version: CatalogVersion) -> CatalogKey {
        self.version = version;
        self
    }
}

impl fmt::Display for CatalogKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.deployment, self.region, self.version)
    }
}

/// A streaming FNV-1a 64-bit hasher for content fingerprints.
///
/// Deliberately *not* `std::hash::Hasher`: fingerprints are stable
/// identities that cross thread and (in principle) process boundaries, so
/// they must not depend on `RandomState` seeding, and `f64`s are hashed by
/// bit pattern explicitly rather than through a blanket impl.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET_BASIS)
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hash an `f64` by bit pattern (`-0.0` and `0.0` therefore differ —
    /// fingerprints identify inputs, they do not define numeric equality).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hash a string length-prefixed, so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

impl BillingRates {
    /// Rates scaled by a region price multiplier (West Europe lists ~8 %
    /// above East US; sovereign clouds run higher still).
    pub fn scaled(&self, multiplier: f64) -> BillingRates {
        BillingRates {
            db_gp: self.db_gp * multiplier,
            db_bc: self.db_bc * multiplier,
            mi_gp: self.mi_gp * multiplier,
            mi_bc: self.mi_bc * multiplier,
        }
    }

    /// Fold these rates into a content fingerprint.
    pub fn write_fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_f64(self.db_gp);
        fp.write_f64(self.db_bc);
        fp.write_f64(self.mi_gp);
        fp.write_f64(self.mi_bc);
    }
}

impl Catalog {
    /// A deterministic content fingerprint over every SKU's identity,
    /// capacities, and price — two catalogs fingerprint equal iff their
    /// contents are bit-for-bit equal. Engine caches key on this, so a
    /// revised catalog can never serve a stale engine.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_usize(self.len());
        for sku in self.iter() {
            fp.write_str(&sku.id.0);
            fp.write_u8(sku.deployment as u8);
            fp.write_u8(sku.tier as u8);
            fp.write_f64(sku.caps.vcores);
            fp.write_f64(sku.caps.memory_gb);
            fp.write_f64(sku.caps.max_data_gb);
            fp.write_f64(sku.caps.iops);
            fp.write_f64(sku.caps.log_rate_mbps);
            fp.write_f64(sku.caps.min_io_latency_ms);
            fp.write_f64(sku.caps.throughput_mbps);
            fp.write_f64(sku.price_per_hour);
        }
        fp.finish()
    }
}

/// One resolved catalog: the shared SKU universe, the billing rates that
/// priced it, and the content fingerprint caches key on.
#[derive(Debug, Clone)]
pub struct ResolvedCatalog {
    pub catalog: Arc<Catalog>,
    pub rates: BillingRates,
    /// Covers the catalog contents *and* the rates — precomputed at
    /// registration so the warm resolution path never rehashes 40+ SKUs.
    pub fingerprint: u64,
}

impl ResolvedCatalog {
    /// Bundle a catalog with its rates, computing the fingerprint once.
    pub fn new(catalog: Arc<Catalog>, rates: BillingRates) -> ResolvedCatalog {
        let mut fp = Fingerprint::new();
        fp.write_u64(catalog.fingerprint());
        rates.write_fingerprint(&mut fp);
        ResolvedCatalog { catalog, rates, fingerprint: fp.finish() }
    }
}

/// The resolution seam between engines and their catalog source.
///
/// Implementations must be cheap on the warm path — `resolve` is called
/// once per engine lookup, so a map access plus an `Arc` bump is the
/// budget. `Send + Sync` because one provider serves every worker of a
/// fleet.
pub trait CatalogProvider: Send + Sync {
    /// The catalog serving `key`, or `None` when no such offer exists.
    fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog>;

    /// Every key this provider can resolve, in deterministic order.
    /// Default: unknown (empty) — providers backed by remote feeds cannot
    /// enumerate.
    fn keys(&self) -> Vec<CatalogKey> {
        Vec::new()
    }
}

/// An in-memory multi-region [`CatalogProvider`]: one entry per
/// [`CatalogKey`], typically generated per region from a [`CatalogSpec`]
/// at a region price multiplier.
///
/// Both deployments of a region share one `Arc<Catalog>` allocation — the
/// key narrows *which* SKUs an engine enumerates, not which catalog object
/// it holds.
#[derive(Default)]
pub struct InMemoryCatalogProvider {
    entries: HashMap<CatalogKey, ResolvedCatalog>,
}

impl InMemoryCatalogProvider {
    pub fn new() -> InMemoryCatalogProvider {
        InMemoryCatalogProvider::default()
    }

    /// A provider holding only the default production catalog (both
    /// deployments, [`Region::global`], [`CatalogVersion::INITIAL`]) — the
    /// drop-in equivalent of the seed's single hard-coded catalog.
    pub fn production() -> InMemoryCatalogProvider {
        InMemoryCatalogProvider::new().with_region(
            Region::global(),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            1.0,
        )
    }

    /// Register (or replace) one key's catalog and rates.
    pub fn insert(&mut self, key: CatalogKey, catalog: Arc<Catalog>, rates: BillingRates) {
        self.entries.insert(key, ResolvedCatalog::new(catalog, rates));
    }

    /// Builder-style [`insert`](InMemoryCatalogProvider::insert).
    pub fn with_catalog(
        mut self,
        key: CatalogKey,
        catalog: Arc<Catalog>,
        rates: BillingRates,
    ) -> InMemoryCatalogProvider {
        self.insert(key, catalog, rates);
        self
    }

    /// Generate and register a whole region at a price multiplier: the
    /// Azure PaaS universe of `spec` is expanded once with the scaled
    /// rates, shared across both deployment keys of the region.
    pub fn with_region(
        mut self,
        region: Region,
        version: CatalogVersion,
        spec: &CatalogSpec,
        price_multiplier: f64,
    ) -> InMemoryCatalogProvider {
        let rates = spec.rates.scaled(price_multiplier);
        let regional_spec = CatalogSpec { rates, ..*spec };
        let catalog = Arc::new(azure_paas_catalog(&regional_spec));
        for deployment in [DeploymentType::SqlDb, DeploymentType::SqlMi] {
            self.insert(
                CatalogKey::new(deployment, region.clone(), version),
                Arc::clone(&catalog),
                rates,
            );
        }
        self
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl CatalogProvider for InMemoryCatalogProvider {
    fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog> {
        self.entries.get(key).cloned()
    }

    fn keys(&self) -> Vec<CatalogKey> {
        let mut keys: Vec<CatalogKey> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CatalogSpec {
        CatalogSpec::default()
    }

    #[test]
    fn key_display_reads_compactly() {
        let key = CatalogKey::production(DeploymentType::SqlDb);
        assert_eq!(key.to_string(), "DB@global#v1");
        let key = key.in_region(Region::new("eastus")).at_version(CatalogVersion(3));
        assert_eq!(key.to_string(), "DB@eastus#v3");
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = azure_paas_catalog(&spec());
        let b = azure_paas_catalog(&spec());
        assert_eq!(a.fingerprint(), b.fingerprint());

        let pricier = CatalogSpec { rates: spec().rates.scaled(1.01), ..spec() };
        assert_ne!(a.fingerprint(), azure_paas_catalog(&pricier).fingerprint());

        let extra = a.clone().with_extra(
            b.iter()
                .next()
                .cloned()
                .map(|mut s| {
                    s.id = crate::sku::SkuId("DB_GP_custom".into());
                    s
                })
                .unwrap(),
        );
        assert_ne!(a.fingerprint(), extra.fingerprint());
    }

    #[test]
    fn fingerprint_write_str_is_length_prefixed() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn region_multiplier_scales_every_price() {
        let provider = InMemoryCatalogProvider::new()
            .with_region(Region::new("eastus"), CatalogVersion::INITIAL, &spec(), 1.0)
            .with_region(Region::new("westeurope"), CatalogVersion::INITIAL, &spec(), 1.08);
        let east = provider
            .resolve(&CatalogKey::new(
                DeploymentType::SqlDb,
                Region::new("eastus"),
                CatalogVersion::INITIAL,
            ))
            .unwrap();
        let west = provider
            .resolve(&CatalogKey::new(
                DeploymentType::SqlDb,
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
            ))
            .unwrap();
        assert_eq!(east.catalog.len(), west.catalog.len());
        for (e, w) in east.catalog.iter().zip(west.catalog.iter()) {
            assert_eq!(e.id, w.id);
            assert!((w.price_per_hour - e.price_per_hour * 1.08).abs() < 1e-9, "{}", e.id);
        }
        assert!((west.rates.mi_bc - east.rates.mi_bc * 1.08).abs() < 1e-12);
    }

    #[test]
    fn both_deployments_of_a_region_share_one_catalog_allocation() {
        let provider = InMemoryCatalogProvider::production();
        let db = provider.resolve(&CatalogKey::production(DeploymentType::SqlDb)).unwrap();
        let mi = provider.resolve(&CatalogKey::production(DeploymentType::SqlMi)).unwrap();
        assert!(Arc::ptr_eq(&db.catalog, &mi.catalog));
        assert_eq!(db.fingerprint, mi.fingerprint);
    }

    #[test]
    fn unknown_keys_resolve_to_none() {
        let provider = InMemoryCatalogProvider::production();
        let missing = CatalogKey::production(DeploymentType::SqlDb).in_region("mars".into());
        assert!(provider.resolve(&missing).is_none());
        let stale = CatalogKey::production(DeploymentType::SqlDb).at_version(CatalogVersion(2));
        assert!(provider.resolve(&stale).is_none());
    }

    #[test]
    fn keys_enumerate_sorted() {
        let provider = InMemoryCatalogProvider::new()
            .with_region(Region::new("b"), CatalogVersion::INITIAL, &spec(), 1.0)
            .with_region(Region::new("a"), CatalogVersion::INITIAL, &spec(), 1.0);
        let keys = provider.keys();
        assert_eq!(keys.len(), 4);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn versions_advance() {
        assert_eq!(CatalogVersion::INITIAL.next(), CatalogVersion(2));
        assert_eq!(CatalogVersion::default(), CatalogVersion::INITIAL);
        assert!(CatalogVersion(2) > CatalogVersion::INITIAL);
    }
}
