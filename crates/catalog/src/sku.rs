//! The SKU record and its resource capacities.
//!
//! Figure 1 of the paper shows the shape this module models: a SKU is a
//! (deployment type, service tier, vCores) triple carrying hard capacities
//! per performance dimension — max memory, max data size, max data IOPS,
//! max log rate, minimum achievable IO latency — and an hourly price.

use std::fmt;

/// Azure SQL PaaS deployment type (§2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum DeploymentType {
    /// Azure SQL Database: fully managed, isolated single databases.
    SqlDb,
    /// Azure SQL Managed Instance: fully managed SQL servers hosting many
    /// databases.
    SqlMi,
}

impl fmt::Display for DeploymentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentType::SqlDb => write!(f, "DB"),
            DeploymentType::SqlMi => write!(f, "MI"),
        }
    }
}

/// Service tier within the vCore purchasing model (§2): Business Critical
/// "offers higher transaction rates and lower-latency I/O" than General
/// Purpose.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ServiceTier {
    GeneralPurpose,
    BusinessCritical,
}

impl fmt::Display for ServiceTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceTier::GeneralPurpose => write!(f, "GP"),
            ServiceTier::BusinessCritical => write!(f, "BC"),
        }
    }
}

/// Identifier of a SKU, unique within a catalog, e.g. `DB_GP_8`.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SkuId(pub String);

impl fmt::Display for SkuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for SkuId {
    fn from(s: &str) -> SkuId {
        SkuId(s.to_string())
    }
}

/// Hard resource capacities of a SKU, one per performance dimension the
/// engine models (Eq. 1's `R` vector).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceCaps {
    /// Compute capacity in vCores.
    pub vcores: f64,
    /// Max memory, GB.
    pub memory_gb: f64,
    /// Max data size, GB.
    pub max_data_gb: f64,
    /// Max data IOPS. For SQL MI General Purpose this is the *default*
    /// before the file-layout adjustment of §3.2 replaces it with the sum
    /// of per-file storage-tier limits.
    pub iops: f64,
    /// Max transaction-log rate, MB/s.
    pub log_rate_mbps: f64,
    /// Best-case IO latency the SKU can deliver, ms (1 ms for BC, 5 ms for
    /// GP in Figure 1). Lower is better — Eq. 1 inverts this dimension.
    pub min_io_latency_ms: f64,
    /// IO throughput cap, MB/s (drives the MI storage-tier filter).
    pub throughput_mbps: f64,
}

impl ResourceCaps {
    /// True when every capacity of `self` is at least as large as `other`'s
    /// (latency compares inverted: smaller is more capable).
    pub fn dominates(&self, other: &ResourceCaps) -> bool {
        self.vcores >= other.vcores
            && self.memory_gb >= other.memory_gb
            && self.max_data_gb >= other.max_data_gb
            && self.iops >= other.iops
            && self.log_rate_mbps >= other.log_rate_mbps
            && self.min_io_latency_ms <= other.min_io_latency_ms
            && self.throughput_mbps >= other.throughput_mbps
    }
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sku {
    pub id: SkuId,
    pub deployment: DeploymentType,
    pub tier: ServiceTier,
    pub caps: ResourceCaps,
    /// Compute price, US dollars per hour (Figure 1's `Price` column).
    pub price_per_hour: f64,
}

impl Sku {
    /// Monthly compute cost in dollars (730 h/month, the Azure convention).
    pub fn monthly_cost(&self) -> f64 {
        self.price_per_hour * crate::billing::HOURS_PER_MONTH
    }

    /// Number of vCores as an integer for display.
    pub fn vcores(&self) -> u32 {
        self.caps.vcores.round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sku(vcores: f64, tier: ServiceTier) -> Sku {
        let bc = tier == ServiceTier::BusinessCritical;
        Sku {
            id: SkuId(format!("DB_{tier}_{vcores}")),
            deployment: DeploymentType::SqlDb,
            tier,
            caps: ResourceCaps {
                vcores,
                memory_gb: 5.2 * vcores,
                max_data_gb: 1024.0,
                iops: if bc { 4000.0 * vcores } else { 320.0 * vcores },
                log_rate_mbps: if bc { 12.0 * vcores } else { 3.75 * vcores },
                min_io_latency_ms: if bc { 1.0 } else { 5.0 },
                throughput_mbps: 100.0 * vcores,
            },
            price_per_hour: if bc { 0.68 * vcores } else { 0.2525 * vcores },
        }
    }

    #[test]
    fn display_formats_match_paper_shorthand() {
        assert_eq!(DeploymentType::SqlDb.to_string(), "DB");
        assert_eq!(DeploymentType::SqlMi.to_string(), "MI");
        assert_eq!(ServiceTier::GeneralPurpose.to_string(), "GP");
        assert_eq!(ServiceTier::BusinessCritical.to_string(), "BC");
    }

    #[test]
    fn monthly_cost_uses_730_hours() {
        let s = sku(2.0, ServiceTier::GeneralPurpose);
        assert!((s.monthly_cost() - 0.505 * 730.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_sku_dominates_smaller_same_tier() {
        let small = sku(2.0, ServiceTier::BusinessCritical);
        let big = sku(8.0, ServiceTier::BusinessCritical);
        assert!(big.caps.dominates(&small.caps));
        assert!(!small.caps.dominates(&big.caps));
    }

    #[test]
    fn gp_does_not_dominate_bc_because_of_latency() {
        // GP 80 cores has more of everything except latency: domination
        // must fail on the inverted dimension.
        let gp = sku(80.0, ServiceTier::GeneralPurpose);
        let bc = sku(2.0, ServiceTier::BusinessCritical);
        assert!(!gp.caps.dominates(&bc.caps));
    }

    #[test]
    fn domination_is_reflexive() {
        let s = sku(4.0, ServiceTier::GeneralPurpose);
        assert!(s.caps.dominates(&s.caps));
    }

    #[test]
    fn sku_id_round_trips_through_display() {
        let id: SkuId = "MI_GP_16".into();
        assert_eq!(id.to_string(), "MI_GP_16");
    }
}
