//! Premium-disk storage tiers and database file layouts (Table 2, §3.2).
//!
//! "The data layer for SQL MI is implemented using Azure Premium Disk
//! storage, and every database file is placed on a separate disk. Each disk
//! has a fixed size, and bigger disks are associated with better throughput
//! and IOPs." The SKU choice for MI customers therefore *begins with fixing
//! the file layout*; the instance-level IOPS limit is "the summation of
//! IOPs limit on all the data files".

use std::fmt;

/// A premium-disk storage tier. The four tiers the paper prints in Table 2
/// (P10, P20, P50, P60) use the paper's numbers verbatim; P30/P40 fill the
/// elided ". . ." columns with Azure's published limits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum StorageTier {
    P10,
    P20,
    P30,
    P40,
    P50,
    P60,
}

impl fmt::Display for StorageTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl StorageTier {
    /// All tiers, smallest first.
    pub const ALL: [StorageTier; 6] = [
        StorageTier::P10,
        StorageTier::P20,
        StorageTier::P30,
        StorageTier::P40,
        StorageTier::P50,
        StorageTier::P60,
    ];

    /// Upper bound of the file-size bracket, GiB (Table 2 row "File size").
    pub fn max_file_gib(&self) -> f64 {
        match self {
            StorageTier::P10 => 128.0,
            StorageTier::P20 => 512.0,
            StorageTier::P30 => 1024.0,
            StorageTier::P40 => 2048.0,
            StorageTier::P50 => 4096.0,
            StorageTier::P60 => 8192.0,
        }
    }

    /// IOPS limit of a disk in this tier (Table 2 row "IOPS").
    pub fn iops(&self) -> f64 {
        match self {
            StorageTier::P10 => 500.0,
            StorageTier::P20 => 2300.0,
            StorageTier::P30 => 5000.0,
            StorageTier::P40 => 7500.0,
            StorageTier::P50 => 7500.0,
            StorageTier::P60 => 12500.0,
        }
    }

    /// Throughput limit, MiB/s (Table 2 row "Throughput").
    pub fn throughput_mibps(&self) -> f64 {
        match self {
            StorageTier::P10 => 100.0,
            StorageTier::P20 => 150.0,
            StorageTier::P30 => 200.0,
            StorageTier::P40 => 250.0,
            StorageTier::P50 => 250.0,
            StorageTier::P60 => 480.0,
        }
    }

    /// Monthly price of one disk of this tier, dollars (Azure premium-disk
    /// list prices; feeds the MI cost model).
    pub fn monthly_price(&self) -> f64 {
        match self {
            StorageTier::P10 => 19.71,
            StorageTier::P20 => 73.22,
            StorageTier::P30 => 135.17,
            StorageTier::P40 => 259.05,
            StorageTier::P50 => 495.57,
            StorageTier::P60 => 962.98,
        }
    }

    /// Smallest tier whose disk fits a file of `size_gib`; `None` when the
    /// file exceeds the largest disk (8 TiB).
    pub fn for_file_size(size_gib: f64) -> Option<StorageTier> {
        StorageTier::ALL.iter().copied().find(|t| size_gib <= t.max_file_gib())
    }
}

/// One database file, to be placed on its own premium disk.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DataFile {
    /// Allocated size, GiB.
    pub size_gib: f64,
}

/// A database file layout: the set of files an MI instance hosts.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct FileLayout {
    pub files: Vec<DataFile>,
}

/// A file layout with every file assigned to a storage tier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TierAssignment {
    pub tiers: Vec<StorageTier>,
}

impl FileLayout {
    /// Layout from raw file sizes in GiB.
    pub fn from_sizes(sizes_gib: &[f64]) -> FileLayout {
        FileLayout { files: sizes_gib.iter().map(|&s| DataFile { size_gib: s }).collect() }
    }

    /// Total data size across files, GiB.
    pub fn total_gib(&self) -> f64 {
        self.files.iter().map(|f| f.size_gib).sum()
    }

    /// Assign each file the smallest tier that fits it (§3.2 Step 1's
    /// "satisfy the storage requirement of the data file at a minimum of
    /// 100%"). `None` if any file exceeds the largest disk.
    pub fn assign_tiers(&self) -> Option<TierAssignment> {
        let tiers = self
            .files
            .iter()
            .map(|f| StorageTier::for_file_size(f.size_gib))
            .collect::<Option<Vec<_>>>()?;
        Some(TierAssignment { tiers })
    }

    /// Upgrade every file's tier until the summed IOPS/throughput satisfy
    /// the given demands at `fraction` (the paper's 95 % rule), or tiers run
    /// out. Returns the final assignment and whether the demands were met.
    pub fn assign_tiers_for_demand(
        &self,
        iops_demand: f64,
        throughput_demand_mibps: f64,
        fraction: f64,
    ) -> Option<(TierAssignment, bool)> {
        let mut assignment = self.assign_tiers()?;
        loop {
            let satisfied = assignment.total_iops() >= fraction * iops_demand
                && assignment.total_throughput_mibps() >= fraction * throughput_demand_mibps;
            if satisfied {
                return Some((assignment, true));
            }
            // Upgrade the cheapest upgradable file one tier.
            let upgradable: Vec<usize> = assignment
                .tiers
                .iter()
                .enumerate()
                .filter(|(_, &t)| t != StorageTier::P60)
                .map(|(i, _)| i)
                .collect();
            let Some(&pick) = upgradable.iter().min_by(|&&a, &&b| {
                let ca = assignment.tiers[a].monthly_price();
                let cb = assignment.tiers[b].monthly_price();
                ca.partial_cmp(&cb).expect("finite prices")
            }) else {
                return Some((assignment, false));
            };
            let next = StorageTier::ALL[StorageTier::ALL
                .iter()
                .position(|&t| t == assignment.tiers[pick])
                .expect("tier in ALL")
                + 1];
            assignment.tiers[pick] = next;
        }
    }
}

impl TierAssignment {
    /// Instance-level IOPS limit: "the summation of IOPs limit on all the
    /// data files" (§3.2 Step 2).
    pub fn total_iops(&self) -> f64 {
        self.tiers.iter().map(|t| t.iops()).sum()
    }

    /// Summed throughput limit, MiB/s.
    pub fn total_throughput_mibps(&self) -> f64 {
        self.tiers.iter().map(|t| t.throughput_mibps()).sum()
    }

    /// Summed monthly storage price, dollars.
    pub fn monthly_storage_cost(&self) -> f64 {
        self.tiers.iter().map(|t| t.monthly_price()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_are_pinned() {
        // The four tiers printed in Table 2 must match the paper exactly.
        assert_eq!(StorageTier::P10.max_file_gib(), 128.0);
        assert_eq!(StorageTier::P10.iops(), 500.0);
        assert_eq!(StorageTier::P10.throughput_mibps(), 100.0);
        assert_eq!(StorageTier::P20.max_file_gib(), 512.0);
        assert_eq!(StorageTier::P20.iops(), 2300.0);
        assert_eq!(StorageTier::P20.throughput_mibps(), 150.0);
        assert_eq!(StorageTier::P50.max_file_gib(), 4096.0);
        assert_eq!(StorageTier::P50.iops(), 7500.0);
        assert_eq!(StorageTier::P60.max_file_gib(), 8192.0);
        assert_eq!(StorageTier::P60.iops(), 12500.0);
        assert_eq!(StorageTier::P60.throughput_mibps(), 480.0);
    }

    #[test]
    fn tiers_scale_monotonically() {
        for w in StorageTier::ALL.windows(2) {
            assert!(w[1].max_file_gib() > w[0].max_file_gib());
            assert!(w[1].iops() >= w[0].iops());
            assert!(w[1].throughput_mibps() >= w[0].throughput_mibps());
            assert!(w[1].monthly_price() > w[0].monthly_price());
        }
    }

    #[test]
    fn file_size_picks_smallest_fitting_tier() {
        assert_eq!(StorageTier::for_file_size(100.0), Some(StorageTier::P10));
        assert_eq!(StorageTier::for_file_size(128.0), Some(StorageTier::P10));
        assert_eq!(StorageTier::for_file_size(129.0), Some(StorageTier::P20));
        assert_eq!(StorageTier::for_file_size(5000.0), Some(StorageTier::P60));
        assert_eq!(StorageTier::for_file_size(9000.0), None);
    }

    #[test]
    fn paper_example_three_128gb_files() {
        // §3.2: "a customer can choose an MI SKU that creates 3 files that
        // can each fit within a 128GB disk" — three P10 disks, 1500 IOPS.
        let layout = FileLayout::from_sizes(&[100.0, 120.0, 128.0]);
        let a = layout.assign_tiers().unwrap();
        assert_eq!(a.tiers, vec![StorageTier::P10; 3]);
        assert_eq!(a.total_iops(), 1500.0);
        assert_eq!(a.total_throughput_mibps(), 300.0);
    }

    #[test]
    fn oversized_file_fails_assignment() {
        let layout = FileLayout::from_sizes(&[10_000.0]);
        assert!(layout.assign_tiers().is_none());
    }

    #[test]
    fn demand_driven_assignment_upgrades_tiers() {
        // One small file would default to P10 (500 IOPS); a 2000-IOPS
        // demand must push it upward.
        let layout = FileLayout::from_sizes(&[50.0]);
        let (a, ok) = layout.assign_tiers_for_demand(2000.0, 0.0, 0.95).unwrap();
        assert!(ok);
        assert!(a.total_iops() >= 0.95 * 2000.0);
        assert!(a.tiers[0] > StorageTier::P10);
    }

    #[test]
    fn demand_beyond_p60_reports_unmet() {
        let layout = FileLayout::from_sizes(&[50.0]);
        let (a, ok) = layout.assign_tiers_for_demand(1e9, 0.0, 0.95).unwrap();
        assert!(!ok);
        assert_eq!(a.tiers[0], StorageTier::P60);
    }

    #[test]
    fn zero_demand_is_trivially_met_by_default_tiers() {
        let layout = FileLayout::from_sizes(&[50.0, 300.0]);
        let (a, ok) = layout.assign_tiers_for_demand(0.0, 0.0, 0.95).unwrap();
        assert!(ok);
        assert_eq!(a.tiers, vec![StorageTier::P10, StorageTier::P20]);
    }

    #[test]
    fn storage_cost_sums_disk_prices() {
        let layout = FileLayout::from_sizes(&[100.0, 400.0]);
        let a = layout.assign_tiers().unwrap();
        let want = StorageTier::P10.monthly_price() + StorageTier::P20.monthly_price();
        assert!((a.monthly_storage_cost() - want).abs() < 1e-9);
    }

    #[test]
    fn total_gib_sums_files() {
        let layout = FileLayout::from_sizes(&[1.5, 2.5]);
        assert_eq!(layout.total_gib(), 4.0);
    }
}
