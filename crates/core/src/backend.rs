//! Pluggable recommendation backends.
//!
//! Doppler's §4 pipeline is one fixed heuristic/curve-matching engine, but
//! the recommendation seam itself is backend-agnostic: anything that can map
//! a [`PerfHistory`] (plus an optional MI file layout) to a
//! [`Recommendation`] can drive the DMA pipeline, the fleet assessor, the
//! drift monitor, and the engine registry. [`RecommendationBackend`] is that
//! seam, extracted from [`DopplerEngine`]:
//!
//! * [`DopplerEngine`] is the default implementation (the paper's engine);
//! * [`crate::learned::LearnedBackend`] is a Lorentz-style learned engine —
//!   nearest-neighbour over normalized workload fingerprints with a
//!   similarity-floor fallback to the heuristic;
//! * third-party backends implement the trait and plug into every layer
//!   unchanged.
//!
//! Training is deliberately *not* on the trait (it would not be
//! object-safe and every backend has its own hyper-parameters); instead
//! [`BackendSpec`] names a backend + its training configuration, and the
//! [`crate::registry::EngineRegistry`] dispatches `spec.train(..)` under its
//! single-flight slot, memoizing the resulting
//! `Arc<dyn RecommendationBackend>` keyed by
//! `(catalog key, backend fingerprint, template, training fingerprint)`.
//!
//! ```
//! use doppler_core::backend::{BackendSpec, RecommendationBackend};
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
//!
//! let catalog = azure_paas_catalog(&CatalogSpec::default());
//! let config = EngineConfig::production(DeploymentType::SqlDb);
//! let backend = BackendSpec::Heuristic.train(catalog, config, &[]);
//! let history = PerfHistory::new()
//!     .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.4; 96]));
//! let rec = backend.recommend(&history, None);
//! assert!(rec.sku_id.is_some());
//! ```

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use doppler_catalog::{Catalog, FileLayout, Fingerprint};
use doppler_telemetry::PerfHistory;

use crate::confidence::ConfidenceConfig;
use crate::driftdetect::{detect_drift, DriftReport};
use crate::engine::{DopplerEngine, EngineConfig, Recommendation, TrainingRecord};
use crate::learned::{LearnedBackend, LearnedConfig};

/// A SKU-recommendation engine: the object-safe seam between the training
/// side (catalog + migrated customers) and every consumer (DMA pipeline,
/// fleet assessor/service, drift monitor, registry).
///
/// # Contract
///
/// * **Deterministic**: the same `(history, layout)` must always produce the
///   same [`Recommendation`] — fleet reports are compared bit-for-bit across
///   worker counts, so any internal randomness must be seeded from the
///   inputs.
/// * **Thread-safe**: backends are shared as `Arc<dyn RecommendationBackend>`
///   across worker pools; `recommend*` take `&self`.
/// * **Catalog-faithful**: [`Self::catalog`] and [`Self::config`] must
///   describe exactly what the backend recommends from — the drift probe and
///   the resource-use report derive SKU capacities from them.
pub trait RecommendationBackend: Send + Sync + fmt::Debug {
    /// Stable short identifier of the backend *kind* (`"heuristic"`,
    /// `"learned"`, ...). Folded into registry memo keys so two backends
    /// trained on the same catalog/training set never cross-serve.
    fn id(&self) -> &'static str;

    /// The catalog this backend recommends from.
    fn catalog(&self) -> &Catalog;

    /// The engine configuration (deployment, profiling, rates).
    fn config(&self) -> &EngineConfig;

    /// Profile the workload and recommend a SKU.
    fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation;

    /// Recommend and attach the §3.4 bootstrap confidence score.
    fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation;

    /// Deterministic content fingerprint over everything the backend
    /// learned; two backends fingerprint equal only if they recommend
    /// identically.
    fn fingerprint(&self) -> u64;

    /// Escape hatch for the deprecated concrete-typed accessors
    /// (`SkuRecommendationPipeline::engine`); return `self`.
    fn as_any(&self) -> &dyn Any;

    /// §5.2.3 drift probe: split the history at `change_point` and compare
    /// the before/after recommendations over this backend's catalog. The
    /// default implementation runs [`detect_drift`] with the backend's own
    /// SKU universe; backends with bespoke drift logic may override.
    fn drift_probe(&self, history: &PerfHistory, change_point: usize, p_g: f64) -> DriftReport {
        let skus = self.catalog().for_deployment(self.config().deployment);
        detect_drift(history, change_point, &skus, p_g)
    }
}

impl RecommendationBackend for DopplerEngine {
    fn id(&self) -> &'static str {
        "heuristic"
    }

    fn catalog(&self) -> &Catalog {
        DopplerEngine::catalog(self)
    }

    fn config(&self) -> &EngineConfig {
        DopplerEngine::config(self)
    }

    fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        DopplerEngine::recommend(self, history, layout)
    }

    fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation {
        DopplerEngine::recommend_with_confidence(self, history, layout, confidence)
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str("heuristic");
        fp.write_u64(DopplerEngine::catalog(self).fingerprint());
        // The config and the learned group model fully determine the
        // recommendation function; both hash via their canonical `Debug`
        // forms (derived, content-complete, and stable in-process).
        fp.write_str(&format!("{:?}", DopplerEngine::config(self)));
        fp.write_str(&format!("{:?}", self.group_model()));
        fp.finish()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Names a backend kind plus its training-time configuration — the
/// object-unsafe half of the backend contract ([`BackendSpec::train`] is the
/// `train`-from-`TrainingSet` constructor hook the trait cannot carry).
///
/// The registry folds [`BackendSpec::fingerprint`] into its memo key, so a
/// champion/challenger fleet training both kinds on the same
/// `(catalog key, template, training set)` gets exactly one training per
/// spec and never cross-serves a cached engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendSpec {
    /// The paper's heuristic/curve-matching [`DopplerEngine`].
    #[default]
    Heuristic,
    /// Lorentz-style learned nearest-neighbour backend
    /// ([`crate::learned::LearnedBackend`]).
    Learned(LearnedConfig),
}

impl BackendSpec {
    /// The stable backend-kind identifier (matches
    /// [`RecommendationBackend::id`] of the trained backend).
    pub fn id(&self) -> &'static str {
        match self {
            BackendSpec::Heuristic => "heuristic",
            BackendSpec::Learned(_) => "learned",
        }
    }

    /// Deterministic fingerprint over the backend kind *and* its
    /// hyper-parameters — part of the registry memo key. For learned
    /// backends this includes the [`FeatureSpec`](crate::FeatureSpec) and
    /// [`CompressorSpec`](crate::CompressorSpec): two feature sets over
    /// one catalog/training key are two distinct memo slots.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.id());
        if let BackendSpec::Learned(cfg) = self {
            fp.write_f64(cfg.similarity_floor);
            fp.write_usize(cfg.max_profiles);
            fp.write_u64(cfg.seed);
            fp.write_u64(cfg.features.bits());
            fp.write_str(cfg.compressor.tag());
        }
        fp.finish()
    }

    /// Train a backend of this kind on migrated customers.
    ///
    /// Panics on a degenerate learned-training corpus (see
    /// [`LearnedTrainError`](crate::LearnedTrainError)); the registry's
    /// single-flight slot converts that panic into a counted failure. Use
    /// [`BackendSpec::try_train`] to handle the typed error directly.
    pub fn train(
        &self,
        catalog: Catalog,
        config: EngineConfig,
        records: &[TrainingRecord],
    ) -> Arc<dyn RecommendationBackend> {
        match self {
            BackendSpec::Heuristic => Arc::new(DopplerEngine::train(catalog, config, records)),
            BackendSpec::Learned(cfg) => {
                Arc::new(LearnedBackend::train(catalog, config, *cfg, records))
            }
        }
    }

    /// [`train`](BackendSpec::train) with degenerate corpora surfaced as
    /// typed errors instead of panics. The heuristic backend accepts any
    /// corpus and never errors.
    pub fn try_train(
        &self,
        catalog: Catalog,
        config: EngineConfig,
        records: &[TrainingRecord],
    ) -> Result<Arc<dyn RecommendationBackend>, crate::learned::LearnedTrainError> {
        match self {
            BackendSpec::Heuristic => Ok(Arc::new(DopplerEngine::train(catalog, config, records))),
            BackendSpec::Learned(cfg) => {
                Ok(Arc::new(LearnedBackend::try_train(catalog, config, *cfg, records)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn history(cpu: f64) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![120.0; 96]))
    }

    fn engine() -> DopplerEngine {
        DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        )
    }

    #[test]
    fn trait_object_recommends_exactly_like_the_concrete_engine() {
        let concrete = engine();
        let dynamic: Arc<dyn RecommendationBackend> = Arc::new(concrete.clone());
        let h = history(0.6);
        assert_eq!(dynamic.recommend(&h, None), concrete.recommend(&h, None));
        assert_eq!(dynamic.id(), "heuristic");
    }

    #[test]
    fn as_any_downcasts_back_to_the_engine() {
        let dynamic: Arc<dyn RecommendationBackend> = Arc::new(engine());
        assert!(dynamic.as_any().downcast_ref::<DopplerEngine>().is_some());
    }

    #[test]
    fn drift_probe_matches_free_detect_drift() {
        let e = engine();
        let h = history(0.4);
        let skus = DopplerEngine::catalog(&e).for_deployment(DeploymentType::SqlDb);
        let direct = detect_drift(&h, 48, &skus, 0.1);
        let via_trait = RecommendationBackend::drift_probe(&e, &h, 48, 0.1);
        assert_eq!(direct, via_trait);
    }

    #[test]
    fn spec_fingerprints_separate_backend_kinds_and_params() {
        let heuristic = BackendSpec::Heuristic.fingerprint();
        let learned = BackendSpec::Learned(LearnedConfig::default()).fingerprint();
        let tighter = BackendSpec::Learned(LearnedConfig {
            similarity_floor: 0.99,
            ..LearnedConfig::default()
        })
        .fingerprint();
        assert_ne!(heuristic, learned);
        assert_ne!(learned, tighter);
    }

    #[test]
    fn engine_fingerprint_tracks_training_content() {
        use doppler_catalog::SkuId;
        let a = engine();
        let records = vec![TrainingRecord {
            history: history(0.9),
            chosen_sku: SkuId("DB_GP_4".into()),
            file_layout: None,
        }];
        let b = DopplerEngine::train(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
            &records,
        );
        assert_ne!(RecommendationBackend::fingerprint(&a), RecommendationBackend::fingerprint(&b));
        assert_eq!(
            RecommendationBackend::fingerprint(&a),
            RecommendationBackend::fingerprint(&engine())
        );
    }
}
