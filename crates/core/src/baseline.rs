//! The naive baseline strategy (§2) Doppler replaced.
//!
//! "This SKU selection procedure involves taking the entire time-series
//! vector collected on each available perf counter (e.g., CPU, memory) and
//! collapsing it into one scalar value. Field engineers often chose either
//! the max of each perf vector, or some large (95%) quantile. From these
//! values, the cheapest Azure PaaS offering that satisfies all the
//! requirements is suggested."
//!
//! Two failure modes the evaluation exercises (§5.3):
//!
//! * because max/p95 scalars *are* the requirement, the baseline generally
//!   over-provisions — and when a single excursion exceeds every SKU, it
//!   "fails to provide any SKU recommendation";
//! * the scalar reduction treats every dimension as bigger-is-more-
//!   demanding, which is backwards for IO latency: taking a high quantile
//!   of the latency series *discards* the latency-critical dips and
//!   under-specifies the tier. Doppler's full-distribution treatment keeps
//!   them.

use doppler_catalog::{Catalog, DeploymentType, ResourceCaps, Sku};
use doppler_stats::descriptive::{max, quantile};
use doppler_telemetry::{PerfDimension, PerfHistory};

/// The baseline reduction: max or a large quantile of every counter.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselineStrategy {
    /// `None` reduces with the max; `Some(q)` with the `q` quantile
    /// (the evaluation uses `Some(0.95)`).
    pub quantile: Option<f64>,
}

impl BaselineStrategy {
    /// The max-reduction variant.
    pub fn max() -> BaselineStrategy {
        BaselineStrategy { quantile: None }
    }

    /// The 95th-percentile variant used in §5.3.
    pub fn p95() -> BaselineStrategy {
        BaselineStrategy { quantile: Some(0.95) }
    }

    /// Collapse one series to its scalar requirement.
    fn reduce(&self, values: &[f64]) -> f64 {
        match self.quantile {
            None => max(values).unwrap_or(0.0),
            Some(q) => quantile(values, q).unwrap_or(0.0),
        }
    }

    /// The scalar requirement vector the baseline derives from a history.
    ///
    /// Note the deliberate flaw: the latency series is reduced with the
    /// same high-end scalar as everything else, so rare latency-critical
    /// dips vanish from the requirement.
    pub fn requirement(&self, history: &PerfHistory) -> ResourceCaps {
        let get = |dim: PerfDimension| history.values(dim).map(|v| self.reduce(v)).unwrap_or(0.0);
        ResourceCaps {
            vcores: get(PerfDimension::Cpu),
            memory_gb: get(PerfDimension::Memory),
            max_data_gb: get(PerfDimension::Storage),
            iops: get(PerfDimension::Iops),
            log_rate_mbps: get(PerfDimension::LogRate),
            min_io_latency_ms: history
                .values(PerfDimension::IoLatency)
                .map(|v| self.reduce(v))
                .unwrap_or(f64::INFINITY),
            throughput_mbps: get(PerfDimension::Iops) / 128.0,
        }
    }

    /// Run the baseline: cheapest SKU dominating the scalar requirement, or
    /// `None` when "no SKU can meet the requirement of all resource
    /// dimensions at 100%".
    pub fn recommend<'c>(
        &self,
        history: &PerfHistory,
        catalog: &'c Catalog,
        deployment: DeploymentType,
    ) -> Option<&'c Sku> {
        catalog.cheapest_satisfying(deployment, &self.requirement(history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, ServiceTier};
    use doppler_telemetry::TimeSeries;

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn history_with(cpu: Vec<f64>, latency: Vec<f64>) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(latency))
    }

    #[test]
    fn max_reduction_sizes_to_the_single_largest_spike() {
        let mut cpu = vec![0.5; 99];
        cpu.push(15.0);
        let h = history_with(cpu, vec![7.0; 100]);
        let cat = catalog();
        let sku = BaselineStrategy::max().recommend(&h, &cat, DeploymentType::SqlDb).unwrap();
        // One 15-vCore spike forces a 16-vCore machine for a 0.5-vCore load.
        assert!(sku.caps.vcores >= 15.0, "got {}", sku.id);
    }

    #[test]
    fn p95_ignores_the_rare_spike() {
        let mut cpu = vec![0.5; 99];
        cpu.push(15.0);
        let h = history_with(cpu, vec![7.0; 100]);
        let cat = catalog();
        let sku = BaselineStrategy::p95().recommend(&h, &cat, DeploymentType::SqlDb).unwrap();
        assert!(sku.caps.vcores <= 2.0, "got {}", sku.id);
    }

    #[test]
    fn demand_beyond_every_sku_yields_no_recommendation() {
        // §5.3's second failure mode.
        let h = history_with(vec![500.0; 10], vec![7.0; 10]);
        assert!(BaselineStrategy::max().recommend(&h, &catalog(), DeploymentType::SqlDb).is_none());
    }

    #[test]
    fn latency_dips_are_discarded_by_the_scalar_reduction() {
        // 5% of samples need 0.8 ms (BC territory); p95 sees only ~6 ms and
        // under-specifies to GP. This is the §5.3 failure Doppler fixes.
        let mut latency = vec![6.0; 95];
        latency.extend_from_slice(&[0.8; 5]);
        let h = history_with(vec![1.0; 100], latency);
        let cat = catalog();
        let sku = BaselineStrategy::p95().recommend(&h, &cat, DeploymentType::SqlDb).unwrap();
        assert_eq!(sku.tier, ServiceTier::GeneralPurpose);
    }

    #[test]
    fn sustained_latency_requirement_does_force_bc() {
        // When the tight requirement is sustained, even the flawed scalar
        // sees it (1.5 ms is met only by BC's 1 ms floor).
        let h = history_with(vec![1.0; 100], vec![1.5; 100]);
        let cat = catalog();
        let sku = BaselineStrategy::p95().recommend(&h, &cat, DeploymentType::SqlDb).unwrap();
        assert_eq!(sku.tier, ServiceTier::BusinessCritical);
    }

    #[test]
    fn missing_dimensions_default_to_unconstrained() {
        let h = PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 10]));
        let req = BaselineStrategy::p95().requirement(&h);
        assert_eq!(req.memory_gb, 0.0);
        assert!(req.min_io_latency_ms.is_infinite());
        let cat = catalog();
        let sku = BaselineStrategy::p95().recommend(&h, &cat, DeploymentType::SqlDb);
        assert!(sku.is_some());
    }

    #[test]
    fn cheapest_satisfying_is_selected() {
        let h = history_with(vec![3.5; 50], vec![7.0; 50]);
        let cat = catalog();
        let sku = BaselineStrategy::max().recommend(&h, &cat, DeploymentType::SqlDb).unwrap();
        assert_eq!(sku.id.to_string(), "DB_GP_4");
    }
}
