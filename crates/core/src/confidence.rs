//! The confidence score (§3.4, Figure 7).
//!
//! "This confidence score is derived by bootstrapping the raw customer
//! performance data, generating the respective price-performance curve,
//! profiling the workload based on the bootstrapped data, and obtaining the
//! optimal SKU from this process multiple times. … The confidence score is
//! the proportion of bootstrapped runs that have the same recommendation as
//! the original."
//!
//! The bootstrap draws *contiguous windows* (the profiler measures spike
//! durations, which point-resampling would destroy); Figure 10 sweeps the
//! window length and shows confidence saturating once windows pass a week.

use doppler_stats::BootstrapWindows;
use doppler_telemetry::PerfHistory;

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceConfig {
    /// Number of bootstrap replicates (runs of the full pipeline).
    pub replicates: usize,
    /// Window length in samples (e.g. `7 * 144` = one week of 10-minute
    /// counters).
    pub window_samples: usize,
    /// Seed for the window draws.
    pub seed: u64,
}

impl Default for ConfidenceConfig {
    fn default() -> ConfidenceConfig {
        ConfidenceConfig { replicates: 30, window_samples: 7 * 144, seed: 0 }
    }
}

/// Run the confidence bootstrap: re-run `recommend` on each windowed
/// replicate and report the fraction that reproduces `original`.
///
/// `recommend` is the *full* pipeline (curve + profiling + matching), not
/// just the curve — exactly as §3.4 prescribes. Returns 0.0 when no
/// replicates are requested or the history is empty.
pub fn confidence_score(
    history: &PerfHistory,
    original: &str,
    config: &ConfidenceConfig,
    mut recommend: impl FnMut(&PerfHistory) -> Option<String>,
) -> f64 {
    let n = history.len();
    if n == 0 || config.replicates == 0 {
        return 0.0;
    }
    let plan = BootstrapWindows::generate(n, config.window_samples, config.replicates, config.seed);
    let mut agree = 0usize;
    for window in plan.windows() {
        let replica = history.window(window.start, window.end);
        if recommend(&replica).as_deref() == Some(original) {
            agree += 1;
        }
    }
    agree as f64 / config.replicates as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn steady_history(n: usize) -> PerfHistory {
        PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![1.0; n]))
    }

    /// A history whose first half is quiet and second half is busy: short
    /// windows land in one regime or the other and disagree.
    fn bimodal_history(n: usize) -> PerfHistory {
        let mut cpu = vec![0.5; n / 2];
        cpu.extend(vec![8.0; n - n / 2]);
        PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
    }

    /// A toy recommender: "big" if the window's mean CPU exceeds 2.
    fn toy_recommend(h: &PerfHistory) -> Option<String> {
        let m = doppler_stats::mean(h.values(PerfDimension::Cpu)?);
        Some(if m > 2.0 { "big".into() } else { "small".into() })
    }

    #[test]
    fn stable_workload_gets_full_confidence() {
        let h = steady_history(1000);
        let c = confidence_score(&h, "small", &ConfidenceConfig::default(), toy_recommend);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn regime_switching_workload_gets_partial_confidence() {
        let h = bimodal_history(2000);
        let config = ConfidenceConfig { replicates: 100, window_samples: 100, seed: 3 };
        let c = confidence_score(&h, "big", &config, toy_recommend);
        assert!(c > 0.2 && c < 0.8, "confidence = {c}");
    }

    #[test]
    fn longer_windows_raise_confidence_on_mixed_workloads() {
        // The Figure 10 effect: windows long enough to span both regimes
        // converge on the full-history recommendation.
        let h = bimodal_history(2000);
        let full = toy_recommend(&h).unwrap();
        let short = confidence_score(
            &h,
            &full,
            &ConfidenceConfig { replicates: 60, window_samples: 50, seed: 5 },
            toy_recommend,
        );
        let long = confidence_score(
            &h,
            &full,
            &ConfidenceConfig { replicates: 60, window_samples: 1600, seed: 5 },
            toy_recommend,
        );
        assert!(long > short, "short {short} !< long {long}");
        assert!(long > 0.9, "long-window confidence = {long}");
    }

    #[test]
    fn empty_history_scores_zero() {
        let c =
            confidence_score(&PerfHistory::new(), "x", &ConfidenceConfig::default(), toy_recommend);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn zero_replicates_scores_zero() {
        let h = steady_history(100);
        let config = ConfidenceConfig { replicates: 0, ..Default::default() };
        assert_eq!(confidence_score(&h, "small", &config, toy_recommend), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let h = bimodal_history(1000);
        let config = ConfidenceConfig { replicates: 40, window_samples: 80, seed: 9 };
        let a = confidence_score(&h, "big", &config, toy_recommend);
        let b = confidence_score(&h, "big", &config, toy_recommend);
        assert_eq!(a, b);
    }

    #[test]
    fn disagreement_with_original_lowers_score() {
        let h = steady_history(500);
        // The toy recommender always says "small" here; asking about "big"
        // scores zero.
        let c = confidence_score(&h, "big", &ConfidenceConfig::default(), toy_recommend);
        assert_eq!(c, 0.0);
    }
}
