//! The price-performance curve (§3.2, Figure 4b) and its shape taxonomy
//! (§5.1, Figure 8).
//!
//! A curve is the list of candidate SKUs sorted by monthly cost, each
//! carrying its performance score `1 − P(throttling)`. Doppler enforces
//! monotonicity "so that customers cannot select SKUs that are more
//! expensive and less performant": the displayed score is the running
//! maximum over cheaper SKUs (a cheaper dominating SKU always exists, so
//! showing the raw dip would only invite a strictly worse choice).

use doppler_catalog::Sku;
use doppler_telemetry::PerfHistory;

use crate::throttling::throttling_probability;

/// One SKU's position on a price-performance curve.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PricePerfPoint {
    pub sku_id: String,
    /// Monthly cost, dollars (compute plus storage where applicable).
    pub monthly_cost: f64,
    /// Raw performance score `1 − P(throttling)` for this SKU alone.
    pub raw_score: f64,
    /// Monotone (envelope) score actually displayed and used for selection.
    pub score: f64,
}

/// The shape classes of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CurveShape {
    /// Every relevant SKU satisfies 100 % of the workload's needs.
    Flat,
    /// SKUs bifurcate between satisfying 100 % and 0 % of needs.
    Simple,
    /// A rank over a range of intermediate throttling probabilities.
    Complex,
}

/// A price-performance curve: points sorted by ascending monthly cost with
/// the monotone envelope applied.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PricePerformanceCurve {
    points: Vec<PricePerfPoint>,
}

impl PricePerformanceCurve {
    /// Build the curve for a workload over candidate SKUs, using each SKU's
    /// own capacities and compute price.
    pub fn generate(history: &PerfHistory, skus: &[&Sku]) -> PricePerformanceCurve {
        let scored = skus
            .iter()
            .map(|sku| {
                let p = throttling_probability(history, &sku.caps);
                (sku.id.to_string(), sku.monthly_cost(), 1.0 - p)
            })
            .collect();
        PricePerformanceCurve::from_scored(scored)
    }

    /// Build a curve from pre-computed `(sku_id, monthly_cost, raw_score)`
    /// triples — the entry point for the MI flow, where both capacity and
    /// cost are adjusted by the storage layout.
    pub fn from_scored(mut scored: Vec<(String, f64, f64)>) -> PricePerformanceCurve {
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.0.cmp(&b.0))
        });
        let mut points = Vec::with_capacity(scored.len());
        let mut envelope: f64 = 0.0;
        for (sku_id, monthly_cost, raw_score) in scored {
            envelope = envelope.max(raw_score);
            points.push(PricePerfPoint { sku_id, monthly_cost, raw_score, score: envelope });
        }
        PricePerformanceCurve { points }
    }

    /// The curve's points, cheapest first.
    pub fn points(&self) -> &[PricePerfPoint] {
        &self.points
    }

    /// Number of candidate SKUs on the curve.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of a SKU on the curve.
    pub fn position_of(&self, sku_id: &str) -> Option<usize> {
        self.points.iter().position(|p| p.sku_id == sku_id)
    }

    /// The point for a SKU.
    pub fn point_for(&self, sku_id: &str) -> Option<&PricePerfPoint> {
        self.points.iter().find(|p| p.sku_id == sku_id)
    }

    /// The cheapest SKU achieving the curve's maximum score — Doppler's
    /// answer for flat curves ("recommends the cheapest SKU as it is the
    /// most cost-efficient option").
    pub fn cheapest_at_full_score(&self) -> Option<&PricePerfPoint> {
        let best = self.points.iter().map(|p| p.score).fold(0.0, f64::max);
        self.points.iter().find(|p| p.score >= best - 1e-12)
    }

    /// Classify the curve shape per §5.1. `tol` is the score distance from
    /// 0/1 still counted as "at" the extreme (the paper's flat/simple
    /// classes are visual; we use 0.5 %).
    pub fn classify(&self) -> CurveShape {
        const TOL: f64 = 0.005;
        if self.points.is_empty() {
            return CurveShape::Flat;
        }
        let all_full = self.points.iter().all(|p| p.score >= 1.0 - TOL);
        if all_full {
            return CurveShape::Flat;
        }
        let bifurcated = self.points.iter().all(|p| p.score >= 1.0 - TOL || p.score <= TOL);
        if bifurcated {
            CurveShape::Simple
        } else {
            CurveShape::Complex
        }
    }

    /// True when the curve carries preference information: at least one SKU
    /// throttles. Flat curves say nothing about a customer's tolerance, so
    /// group-preference learning skips them (§5.2.1 attributes most
    /// mismatches to exactly these customers).
    pub fn is_informative(&self) -> bool {
        self.points.iter().any(|p| p.score < 1.0 - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn catalog() -> doppler_catalog::Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn tiny_workload() -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.2; 16]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![1.0; 16]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; 16]))
    }

    fn midsize_spiky_workload() -> PerfHistory {
        let mut cpu = vec![2.0; 100];
        for i in (0..100).step_by(10) {
            cpu[i] = 24.0; // rare spikes past the mid-size SKUs
        }
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; 100]))
    }

    #[test]
    fn points_sorted_by_cost() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&tiny_workload(), &skus);
        for w in curve.points().windows(2) {
            assert!(w[0].monthly_cost <= w[1].monthly_cost);
        }
    }

    #[test]
    fn envelope_is_monotone_nondecreasing() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&midsize_spiky_workload(), &skus);
        for w in curve.points().windows(2) {
            assert!(w[1].score >= w[0].score);
        }
    }

    #[test]
    fn envelope_never_below_raw() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&midsize_spiky_workload(), &skus);
        for p in curve.points() {
            assert!(p.score >= p.raw_score - 1e-12);
        }
    }

    #[test]
    fn tiny_workload_yields_flat_curve() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&tiny_workload(), &skus);
        assert_eq!(curve.classify(), CurveShape::Flat);
        assert!(!curve.is_informative());
        // Cheapest at full score is the cheapest SKU outright.
        assert_eq!(curve.cheapest_at_full_score().unwrap().sku_id, curve.points()[0].sku_id);
    }

    #[test]
    fn constant_demand_yields_simple_curve() {
        // 12 vCores of constant demand: SKUs below always throttle, above
        // never — a pure bifurcation.
        let h = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![12.5; 32]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; 32]));
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&h, &skus);
        assert_eq!(curve.classify(), CurveShape::Simple);
        assert!(curve.is_informative());
    }

    #[test]
    fn spiky_demand_yields_complex_curve() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&midsize_spiky_workload(), &skus);
        assert_eq!(curve.classify(), CurveShape::Complex);
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&midsize_spiky_workload(), &skus);
        for p in curve.points() {
            assert!((0.0..=1.0).contains(&p.raw_score));
            assert!((0.0..=1.0).contains(&p.score));
        }
    }

    #[test]
    fn empty_sku_set_yields_empty_flat_curve() {
        let curve = PricePerformanceCurve::generate(&tiny_workload(), &[]);
        assert!(curve.is_empty());
        assert_eq!(curve.classify(), CurveShape::Flat);
        assert!(curve.cheapest_at_full_score().is_none());
    }

    #[test]
    fn position_and_point_lookups() {
        let cat = catalog();
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&tiny_workload(), &skus);
        let first = curve.points()[0].sku_id.clone();
        assert_eq!(curve.position_of(&first), Some(0));
        assert!(curve.point_for(&first).is_some());
        assert_eq!(curve.position_of("NOPE"), None);
    }

    #[test]
    fn from_scored_applies_envelope_to_dips() {
        let curve = PricePerformanceCurve::from_scored(vec![
            ("a".into(), 100.0, 0.6),
            ("b".into(), 200.0, 0.4), // dips below the cheaper SKU
            ("c".into(), 300.0, 0.9),
        ]);
        let scores: Vec<f64> = curve.points().iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![0.6, 0.6, 0.9]);
        assert_eq!(curve.points()[1].raw_score, 0.4);
    }
}
