//! SKU-change detection (§5.2.3, Figure 11).
//!
//! "Since changes in resource utilization patterns trigger changes in the
//! price-performance curves, Doppler can automatically detect the need to
//! change SKUs to accommodate changing workload requirements." The study
//! splits a customer's history at the change point, regenerates the curve
//! on each side, and compares where the recommendations land — including
//! the counterfactual throttling the customer would suffer by keeping the
//! old SKU (the Figure 11 customer would see > 40 %).

use doppler_catalog::Sku;
use doppler_telemetry::PerfHistory;

use crate::curve::{PricePerfPoint, PricePerformanceCurve};
use crate::matching::select_for_p;

/// How urgently a detected SKU change needs acting on, graded by the
/// throttling the customer suffers while they stay put. A fleet monitor
/// triages its re-assessment queue on this ordering (`Critical` first).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum DriftSeverity {
    /// The recommendation did not move.
    None,
    /// The SKU changed but the old choice still serves the new workload —
    /// a shrink, or a sideways move: pure cost drift.
    Low,
    /// Noticeable throttling (< 20 % of samples) on the old SKU.
    Moderate,
    /// Sustained throttling (20–50 %) — the Figure 11 customer (> 40 %)
    /// lands here.
    High,
    /// The old SKU throttles most of the time; the workload has outgrown
    /// it outright.
    Critical,
}

impl DriftSeverity {
    /// All grades in ascending order — histogram bucket order.
    pub const ALL: [DriftSeverity; 5] = [
        DriftSeverity::None,
        DriftSeverity::Low,
        DriftSeverity::Moderate,
        DriftSeverity::High,
        DriftSeverity::Critical,
    ];

    /// Grade a drift verdict: `changed` is whether the recommendation
    /// moved, `throttle_if_unchanged` the raw throttling probability of
    /// staying put (boundaries at 1 %, 20 %, and 50 %).
    pub fn of(changed: bool, throttle_if_unchanged: f64) -> DriftSeverity {
        if !changed {
            DriftSeverity::None
        } else if throttle_if_unchanged < 0.01 {
            DriftSeverity::Low
        } else if throttle_if_unchanged < 0.2 {
            DriftSeverity::Moderate
        } else if throttle_if_unchanged < 0.5 {
            DriftSeverity::High
        } else {
            DriftSeverity::Critical
        }
    }

    /// This grade's index into a `[usize; 5]` histogram (the
    /// [`ALL`](DriftSeverity::ALL) order).
    pub fn bucket(self) -> usize {
        match self {
            DriftSeverity::None => 0,
            DriftSeverity::Low => 1,
            DriftSeverity::Moderate => 2,
            DriftSeverity::High => 3,
            DriftSeverity::Critical => 4,
        }
    }
}

/// Before/after comparison of a split history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftReport {
    pub before_curve: PricePerformanceCurve,
    pub after_curve: PricePerformanceCurve,
    /// Recommendation on the before-history.
    pub before_sku: Option<String>,
    /// Recommendation on the after-history.
    pub after_sku: Option<String>,
    /// The recommendations differ: the workload outgrew (or shrank out of)
    /// its SKU.
    pub changed: bool,
    /// Raw throttling probability the *before* recommendation would suffer
    /// on the *after* workload — the cost of not moving.
    pub throttle_if_unchanged: f64,
}

impl DriftReport {
    /// Severity grade of this report:
    /// [`DriftSeverity::of`]`(changed, throttle_if_unchanged)`.
    pub fn severity(&self) -> DriftSeverity {
        DriftSeverity::of(self.changed, self.throttle_if_unchanged)
    }

    /// The re-recommendation hook: the after-window's selected point — the
    /// SKU (and its price) the customer should move to. `None` when the
    /// after-window produced no selection (empty SKU set).
    pub fn re_recommendation(&self) -> Option<&PricePerfPoint> {
        self.after_sku.as_ref().and_then(|id| self.after_curve.point_for(id))
    }

    /// The before-window's selected point on its own curve.
    pub fn previous_recommendation(&self) -> Option<&PricePerfPoint> {
        self.before_sku.as_ref().and_then(|id| self.before_curve.point_for(id))
    }

    /// Monthly cost of acting on the re-recommendation: after-SKU price
    /// minus before-SKU price (negative for a shrink). `None` unless both
    /// windows selected a SKU.
    pub fn cost_delta(&self) -> Option<f64> {
        let before = self.previous_recommendation()?;
        let after = self.re_recommendation()?;
        Some(after.monthly_cost - before.monthly_cost)
    }
}

/// Split `history` at sample `change_point`, generate both curves over
/// `skus`, and select on each with the group tolerance `p_g` (pass 0.0 for
/// a zero-tolerance selection).
pub fn detect_drift(
    history: &PerfHistory,
    change_point: usize,
    skus: &[&Sku],
    p_g: f64,
) -> DriftReport {
    let (before, after) = doppler_telemetry::split_at(history, change_point);
    let before_curve = PricePerformanceCurve::generate(&before, skus);
    let after_curve = PricePerformanceCurve::generate(&after, skus);
    let before_sku = select_for_p(&before_curve, p_g).map(|p| p.sku_id.clone());
    let after_sku = select_for_p(&after_curve, p_g).map(|p| p.sku_id.clone());
    let throttle_if_unchanged = before_sku
        .as_ref()
        .and_then(|id| after_curve.point_for(id))
        .map(|p| 1.0 - p.raw_score)
        .unwrap_or(0.0);
    DriftReport {
        changed: before_sku != after_sku,
        before_curve,
        after_curve,
        before_sku,
        after_sku,
        throttle_if_unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn split_history(before_cpu: f64, after_cpu: f64, n: usize) -> PerfHistory {
        let mut cpu = vec![before_cpu; n / 2];
        cpu.extend(vec![after_cpu; n - n / 2]);
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; n]))
    }

    #[test]
    fn growth_triggers_a_change() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 7.0, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(r.changed);
        assert_eq!(r.before_sku.as_deref(), Some("DB_GP_2"));
        assert_eq!(r.after_sku.as_deref(), Some("DB_GP_8"));
        // Staying on GP 2 would throttle on every after-sample.
        assert!(r.throttle_if_unchanged > 0.99);
    }

    #[test]
    fn stable_workload_reports_no_change() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 1.1, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(!r.changed);
        assert_eq!(r.throttle_if_unchanged, 0.0);
    }

    #[test]
    fn shrink_is_also_detected() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(7.0, 0.5, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(r.changed);
        // Moving down throttles nothing.
        assert_eq!(r.throttle_if_unchanged, 0.0);
    }

    #[test]
    fn empty_sku_set_degrades_gracefully() {
        let h = split_history(1.0, 5.0, 100);
        let r = detect_drift(&h, 50, &[], 0.0);
        assert!(r.before_sku.is_none());
        assert!(r.after_sku.is_none());
        assert!(!r.changed);
        assert_eq!(r.severity(), DriftSeverity::None);
        assert_eq!(r.re_recommendation(), None);
        assert_eq!(r.cost_delta(), None);
    }

    #[test]
    fn severity_boundaries_grade_the_throttle_probability() {
        // Not changed dominates everything.
        assert_eq!(DriftSeverity::of(false, 0.99), DriftSeverity::None);
        // Changed: boundaries at 1 %, 20 %, 50 % (half-open from below).
        assert_eq!(DriftSeverity::of(true, 0.0), DriftSeverity::Low);
        assert_eq!(DriftSeverity::of(true, 0.009_999), DriftSeverity::Low);
        assert_eq!(DriftSeverity::of(true, 0.01), DriftSeverity::Moderate);
        assert_eq!(DriftSeverity::of(true, 0.199_999), DriftSeverity::Moderate);
        assert_eq!(DriftSeverity::of(true, 0.2), DriftSeverity::High);
        assert_eq!(DriftSeverity::of(true, 0.42), DriftSeverity::High);
        assert_eq!(DriftSeverity::of(true, 0.499_999), DriftSeverity::High);
        assert_eq!(DriftSeverity::of(true, 0.5), DriftSeverity::Critical);
        assert_eq!(DriftSeverity::of(true, 1.0), DriftSeverity::Critical);
        // Severity orders by urgency, and buckets walk the ALL order.
        assert!(DriftSeverity::Critical > DriftSeverity::High);
        assert!(DriftSeverity::Low > DriftSeverity::None);
        for (i, s) in DriftSeverity::ALL.into_iter().enumerate() {
            assert_eq!(s.bucket(), i);
        }
    }

    #[test]
    fn growth_report_grades_critical_and_prices_the_move() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 7.0, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        // Throttling on every after-sample: the top severity grade.
        assert_eq!(r.severity(), DriftSeverity::Critical);
        let re = r.re_recommendation().expect("after-window selects");
        assert_eq!(Some(re.sku_id.as_str()), r.after_sku.as_deref());
        let prev = r.previous_recommendation().expect("before-window selects");
        assert_eq!(Some(prev.sku_id.as_str()), r.before_sku.as_deref());
        // Growing into a bigger SKU costs more.
        let delta = r.cost_delta().expect("both sides selected");
        assert!((delta - (re.monthly_cost - prev.monthly_cost)).abs() < 1e-12);
        assert!(delta > 0.0, "delta = {delta}");
    }

    #[test]
    fn shrink_report_grades_low_with_a_negative_cost_delta() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(7.0, 0.5, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert_eq!(r.severity(), DriftSeverity::Low, "shrinks throttle nothing");
        assert!(r.cost_delta().unwrap() < 0.0, "moving down saves money");
    }

    #[test]
    fn empty_history_yields_a_stable_cheapest_recommendation() {
        // No samples at all: throttling is zero everywhere, both windows
        // select the cheapest SKU, and nothing reads as drift.
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let r = detect_drift(&PerfHistory::new(), 0, &skus, 0.0);
        assert!(!r.changed);
        assert_eq!(r.before_sku, r.after_sku);
        assert!(r.before_sku.is_some());
        assert_eq!(r.throttle_if_unchanged, 0.0);
        assert_eq!(r.severity(), DriftSeverity::None);
        assert_eq!(r.cost_delta(), Some(0.0));
    }

    #[test]
    fn single_window_splits_degrade_to_an_empty_side() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 7.0, 100);
        // change_point 0: the whole history is "after"; the empty before
        // window scores every SKU clean, so the before pick is the
        // cheapest rung and the big after-demand reads as a change.
        let r = detect_drift(&h, 0, &skus, 0.0);
        assert!(r.before_curve.points().iter().all(|p| p.score >= 1.0 - 1e-12));
        assert!(r.changed);
        // change_point at (or past) the end: the empty after window also
        // scores clean, so the pick falls back to the cheapest rung and
        // nothing throttles.
        let r = detect_drift(&h, h.len(), &skus, 0.0);
        assert_eq!(r.throttle_if_unchanged, 0.0);
        let past = detect_drift(&h, h.len() + 50, &skus, 0.0);
        assert_eq!(past, r, "past-the-end clamps to the end");
    }

    #[test]
    fn detect_drift_is_pure() {
        // Same inputs → bit-for-bit identical report, across repeated
        // calls and across differently-ordered prior work (no hidden
        // state). The fleet monitor's worker-count determinism rests on
        // this.
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let histories: Vec<PerfHistory> =
            (0..4).map(|i| split_history(1.0 + i as f64, 6.0, 120)).collect();
        let first: Vec<DriftReport> =
            histories.iter().map(|h| detect_drift(h, 60, &skus, 0.0)).collect();
        let reversed: Vec<DriftReport> =
            histories.iter().rev().map(|h| detect_drift(h, 60, &skus, 0.0)).collect();
        for (a, b) in first.iter().zip(reversed.iter().rev()) {
            assert_eq!(a, b);
        }
        assert_eq!(
            first,
            histories.iter().map(|h| detect_drift(h, 60, &skus, 0.0)).collect::<Vec<_>>()
        );
    }
}
