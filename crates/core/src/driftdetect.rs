//! SKU-change detection (§5.2.3, Figure 11).
//!
//! "Since changes in resource utilization patterns trigger changes in the
//! price-performance curves, Doppler can automatically detect the need to
//! change SKUs to accommodate changing workload requirements." The study
//! splits a customer's history at the change point, regenerates the curve
//! on each side, and compares where the recommendations land — including
//! the counterfactual throttling the customer would suffer by keeping the
//! old SKU (the Figure 11 customer would see > 40 %).

use doppler_catalog::Sku;
use doppler_telemetry::PerfHistory;

use crate::curve::PricePerformanceCurve;
use crate::matching::select_for_p;

/// Before/after comparison of a split history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftReport {
    pub before_curve: PricePerformanceCurve,
    pub after_curve: PricePerformanceCurve,
    /// Recommendation on the before-history.
    pub before_sku: Option<String>,
    /// Recommendation on the after-history.
    pub after_sku: Option<String>,
    /// The recommendations differ: the workload outgrew (or shrank out of)
    /// its SKU.
    pub changed: bool,
    /// Raw throttling probability the *before* recommendation would suffer
    /// on the *after* workload — the cost of not moving.
    pub throttle_if_unchanged: f64,
}

/// Split `history` at sample `change_point`, generate both curves over
/// `skus`, and select on each with the group tolerance `p_g` (pass 0.0 for
/// a zero-tolerance selection).
pub fn detect_drift(
    history: &PerfHistory,
    change_point: usize,
    skus: &[&Sku],
    p_g: f64,
) -> DriftReport {
    let (before, after) = doppler_telemetry::split_at(history, change_point);
    let before_curve = PricePerformanceCurve::generate(&before, skus);
    let after_curve = PricePerformanceCurve::generate(&after, skus);
    let before_sku = select_for_p(&before_curve, p_g).map(|p| p.sku_id.clone());
    let after_sku = select_for_p(&after_curve, p_g).map(|p| p.sku_id.clone());
    let throttle_if_unchanged = before_sku
        .as_ref()
        .and_then(|id| after_curve.point_for(id))
        .map(|p| 1.0 - p.raw_score)
        .unwrap_or(0.0);
    DriftReport {
        changed: before_sku != after_sku,
        before_curve,
        after_curve,
        before_sku,
        after_sku,
        throttle_if_unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn split_history(before_cpu: f64, after_cpu: f64, n: usize) -> PerfHistory {
        let mut cpu = vec![before_cpu; n / 2];
        cpu.extend(vec![after_cpu; n - n / 2]);
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; n]))
    }

    #[test]
    fn growth_triggers_a_change() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 7.0, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(r.changed);
        assert_eq!(r.before_sku.as_deref(), Some("DB_GP_2"));
        assert_eq!(r.after_sku.as_deref(), Some("DB_GP_8"));
        // Staying on GP 2 would throttle on every after-sample.
        assert!(r.throttle_if_unchanged > 0.99);
    }

    #[test]
    fn stable_workload_reports_no_change() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(1.0, 1.1, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(!r.changed);
        assert_eq!(r.throttle_if_unchanged, 0.0);
    }

    #[test]
    fn shrink_is_also_detected() {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let h = split_history(7.0, 0.5, 200);
        let r = detect_drift(&h, 100, &skus, 0.0);
        assert!(r.changed);
        // Moving down throttles nothing.
        assert_eq!(r.throttle_if_unchanged, 0.0);
    }

    #[test]
    fn empty_sku_set_degrades_gracefully() {
        let h = split_history(1.0, 5.0, 100);
        let r = detect_drift(&h, 50, &[], 0.0);
        assert!(r.before_sku.is_none());
        assert!(r.after_sku.is_none());
        assert!(!r.changed);
    }
}
