//! The [`DopplerEngine`] façade: train on migrated customers, recommend for
//! new ones (Figure 3's full loop).

use doppler_catalog::{BillingRates, Catalog, DeploymentType, FileLayout, SkuId, StorageTier};
use doppler_telemetry::{PerfDimension, PerfHistory};

use crate::confidence::{confidence_score, ConfidenceConfig};
use crate::curve::{CurveShape, PricePerformanceCurve};
use crate::explain::{explain, Explanation};
use crate::grouping::{FittedGrouping, GroupingStrategy};
use crate::matching::GroupModel;
use crate::mi::{mi_curve, MiAssessment};
use crate::profile::NegotiabilityStrategy;
use crate::throttling::ThrottleBreakdown;

/// Engine configuration: which deployment is being assessed and how the
/// Customer Profiler summarizes and groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    pub deployment: DeploymentType,
    pub negotiability: NegotiabilityStrategy,
    pub grouping: GroupingStrategy,
    pub rates: BillingRates,
}

impl EngineConfig {
    /// The production configuration for a deployment: thresholding +
    /// straightforward enumeration (§5.2.1: "The final strategy deployed in
    /// production utilizes the thresholding algorithm, then employs
    /// straightforward enumeration").
    pub fn production(deployment: DeploymentType) -> EngineConfig {
        EngineConfig {
            deployment,
            negotiability: NegotiabilityStrategy::production(),
            grouping: GroupingStrategy::Enumeration,
            rates: BillingRates::default(),
        }
    }
}

/// One training example: a successfully migrated customer with a retained
/// SKU (the ≥ 40-day criterion of §5).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRecord {
    pub history: PerfHistory,
    pub chosen_sku: SkuId,
    /// MI customers carry their fixed file layout (§3.2).
    pub file_layout: Option<FileLayout>,
}

/// MI-specific context attached to a recommendation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MiSummary {
    pub restricted_to_bc: bool,
    pub gp_iops_limit: f64,
    pub storage_tiers: Vec<StorageTier>,
}

/// A completed recommendation: the chosen SKU plus everything needed to
/// audit it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Recommendation {
    /// The recommended SKU; `None` when no candidate exists (e.g. a data
    /// file larger than any MI placement).
    pub sku_id: Option<String>,
    pub monthly_cost: Option<f64>,
    /// The SKU's (envelope) score `1 − P(throttling)`.
    pub score: Option<f64>,
    pub curve: PricePerformanceCurve,
    pub shape: CurveShape,
    /// Profiler group the customer matched.
    pub group: usize,
    /// Group tolerance `P_g` applied in matching.
    pub preferred_p: f64,
    /// Negotiability bits across the profiled dimensions.
    pub bits: Vec<bool>,
    /// Bootstrap confidence, when requested.
    pub confidence: Option<f64>,
    pub explanation: Explanation,
    pub mi: Option<MiSummary>,
}

/// The trained engine.
#[derive(Debug, Clone)]
pub struct DopplerEngine {
    catalog: Catalog,
    config: EngineConfig,
    grouping: FittedGrouping,
    model: GroupModel,
}

/// The dimensions profiled per deployment (§5.2.1): CPU, memory, IOPS and
/// log rate for SQL DB (2⁴ = 16 groups); CPU, memory, IOPS for SQL MI
/// (2³ = 8 groups).
pub fn profiled_dimensions(deployment: DeploymentType) -> &'static [PerfDimension] {
    match deployment {
        DeploymentType::SqlDb => &[
            PerfDimension::Cpu,
            PerfDimension::Memory,
            PerfDimension::Iops,
            PerfDimension::LogRate,
        ],
        DeploymentType::SqlMi => &[PerfDimension::Cpu, PerfDimension::Memory, PerfDimension::Iops],
    }
}

impl DopplerEngine {
    /// Train on migrated customers: profile each, fit the grouping, learn
    /// each group's preferred operating point.
    pub fn train(
        catalog: Catalog,
        config: EngineConfig,
        records: &[TrainingRecord],
    ) -> DopplerEngine {
        let dims = profiled_dimensions(config.deployment);
        let weights: Vec<Vec<f64>> =
            records.iter().map(|r| config.negotiability.weights(&r.history, dims)).collect();
        let bits: Vec<Vec<bool>> =
            records.iter().map(|r| config.negotiability.bits(&r.history, dims)).collect();
        let (grouping, labels) = if records.is_empty() {
            (FittedGrouping::Enumeration { n_dims: dims.len() }, Vec::new())
        } else {
            config.grouping.fit(&weights, &bits)
        };

        let mut engine = DopplerEngine {
            catalog,
            config,
            grouping,
            model: GroupModel::learn(0, std::iter::empty()),
        };
        let curves: Vec<PricePerformanceCurve> = records
            .iter()
            .map(|r| engine.curve_for(&r.history, r.file_layout.as_ref()).0)
            .collect();
        engine.model = GroupModel::learn(
            engine.grouping.group_count(),
            labels
                .iter()
                .zip(&curves)
                .zip(records)
                .map(|((&g, c), r)| (g, c, r.chosen_sku.0.as_str())),
        );
        engine
    }

    /// An engine with no training data: enumeration groups and a
    /// zero-tolerance fallback (recommends the cheapest fully satisfying
    /// SKU — the behaviour a fresh deployment starts from).
    pub fn untrained(catalog: Catalog, config: EngineConfig) -> DopplerEngine {
        DopplerEngine::train(catalog, config, &[])
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The learned group model (Table 3's statistics live here).
    pub fn group_model(&self) -> &GroupModel {
        &self.model
    }

    /// The dimensions this engine profiles.
    pub fn dims(&self) -> &'static [PerfDimension] {
        profiled_dimensions(self.config.deployment)
    }

    /// Build the price-performance curve for a workload (the MI assessment
    /// when a layout is supplied). The second element carries MI context.
    pub fn curve_for(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
    ) -> (PricePerformanceCurve, Option<MiAssessment>) {
        match (self.config.deployment, layout) {
            (DeploymentType::SqlMi, Some(layout)) => {
                match mi_curve(history, layout, &self.catalog, &self.config.rates) {
                    Some(a) => (a.curve.clone(), Some(a)),
                    // No MI placement exists (file too large): empty curve.
                    None => (PricePerformanceCurve::from_scored(vec![]), None),
                }
            }
            _ => {
                let skus = self.catalog.for_deployment(self.config.deployment);
                (PricePerformanceCurve::generate(history, &skus), None)
            }
        }
    }

    /// Profile, group, and recommend.
    pub fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        let dims = self.dims();
        let weights = self.config.negotiability.weights(history, dims);
        let bits = self.config.negotiability.bits(history, dims);
        let group = self.grouping.assign(&weights, &bits);
        let preferred_p = self.model.preferred_p(group);

        let (curve, mi) = self.curve_for(history, layout);
        let shape = curve.classify();
        let point = self.model.select(group, &curve).cloned();

        // Breakdown at the chosen SKU, with the MI storage-derived IOPS
        // limit substituted where applicable.
        let breakdown = point.as_ref().and_then(|p| {
            let sku = self.catalog.get(&SkuId(p.sku_id.clone()))?;
            let mut caps = sku.caps;
            if let Some(a) = &mi {
                if sku.tier == doppler_catalog::ServiceTier::GeneralPurpose {
                    caps.iops = a.gp_iops_limit;
                    caps.throughput_mbps = a.storage.total_throughput_mibps();
                }
            }
            Some(ThrottleBreakdown::compute(history, &caps))
        });

        let explanation = explain(
            point.as_ref().map(|p| p.sku_id.as_str()),
            &curve,
            shape,
            dims,
            &bits,
            group,
            preferred_p,
            breakdown.as_ref(),
        );
        Recommendation {
            sku_id: point.as_ref().map(|p| p.sku_id.clone()),
            monthly_cost: point.as_ref().map(|p| p.monthly_cost),
            score: point.as_ref().map(|p| p.score),
            curve,
            shape,
            group,
            preferred_p,
            bits,
            confidence: None,
            explanation,
            mi: mi.map(|a| MiSummary {
                restricted_to_bc: a.restricted_to_bc,
                gp_iops_limit: a.gp_iops_limit,
                storage_tiers: a.storage.tiers,
            }),
        }
    }

    /// Recommend and attach the §3.4 bootstrap confidence score.
    pub fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        config: &ConfidenceConfig,
    ) -> Recommendation {
        let mut rec = self.recommend(history, layout);
        if let Some(original) = rec.sku_id.clone() {
            let c = confidence_score(history, &original, config, |window| {
                self.recommend(window, layout).sku_id
            });
            rec.confidence = Some(c);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_telemetry::TimeSeries;

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn tiny_history(n: usize) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.3; n]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![1.5; n]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![50.0; n]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; n]))
            .with(PerfDimension::LogRate, TimeSeries::ten_minute(vec![0.2; n]))
    }

    #[test]
    fn untrained_engine_recommends_cheapest_satisfying() {
        let engine =
            DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlDb));
        let rec = engine.recommend(&tiny_history(64), None);
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_2"));
        assert_eq!(rec.shape, CurveShape::Flat);
        assert_eq!(rec.score, Some(1.0));
    }

    #[test]
    fn trained_engine_applies_group_tolerance() {
        // One trainer: spiky CPU, negotiable, parked one rung below its
        // peak. The engine should learn that tolerance and re-apply it.
        let mut cpu = vec![1.0; 2016];
        for i in (0..2016).step_by(100) {
            cpu[i] = 7.0; // ~1% of samples above 6 vCores
        }
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![7.0; 2016]));
        let record = TrainingRecord {
            history: history.clone(),
            chosen_sku: SkuId("DB_GP_2".into()),
            file_layout: None,
        };
        let engine = DopplerEngine::train(
            catalog(),
            EngineConfig::production(DeploymentType::SqlDb),
            &[record],
        );
        let rec = engine.recommend(&history, None);
        // The same workload re-assessed gets the same negotiated SKU, not
        // the 8-vCore machine its max would demand.
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_2"));
        assert!(rec.preferred_p > 0.005, "learned tolerance {}", rec.preferred_p);
    }

    #[test]
    fn recommendation_carries_explanation_and_bits() {
        let engine =
            DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlDb));
        let rec = engine.recommend(&tiny_history(64), None);
        assert_eq!(rec.bits.len(), 4);
        assert!(!rec.explanation.summary.is_empty());
        assert!(rec.explanation.render().contains("group"));
    }

    #[test]
    fn mi_engine_uses_layouts() {
        let engine =
            DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlMi));
        let layout = FileLayout::from_sizes(&[100.0, 100.0]);
        let rec = engine.recommend(&tiny_history(64), Some(&layout));
        let mi = rec.mi.expect("MI context");
        assert_eq!(mi.gp_iops_limit, 1000.0);
        assert_eq!(mi.storage_tiers.len(), 2);
        assert!(rec.sku_id.unwrap().starts_with("MI_"));
    }

    #[test]
    fn mi_without_placement_recommends_nothing() {
        let engine =
            DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlMi));
        let layout = FileLayout::from_sizes(&[9_000.0]);
        let rec = engine.recommend(&tiny_history(16), Some(&layout));
        assert!(rec.sku_id.is_none());
        assert!(rec.curve.is_empty());
        assert!(rec.explanation.summary.contains("No SKU"));
    }

    #[test]
    fn confidence_is_attached_and_high_for_stable_workloads() {
        let engine =
            DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlDb));
        let rec = engine.recommend_with_confidence(
            &tiny_history(500),
            None,
            &ConfidenceConfig { replicates: 10, window_samples: 100, seed: 1 },
        );
        assert_eq!(rec.confidence, Some(1.0));
    }

    #[test]
    fn engine_profiles_the_right_dimensions_per_deployment() {
        assert_eq!(profiled_dimensions(DeploymentType::SqlDb).len(), 4);
        assert_eq!(profiled_dimensions(DeploymentType::SqlMi).len(), 3);
    }

    #[test]
    fn train_on_empty_records_matches_untrained() {
        let a =
            DopplerEngine::train(catalog(), EngineConfig::production(DeploymentType::SqlDb), &[]);
        let rec = a.recommend(&tiny_history(32), None);
        assert_eq!(rec.preferred_p, 0.0);
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_2"));
    }
}
