//! Human-readable explanations (the interpretability requirement of §1:
//! "As the risk associated with migration is high, customers need to
//! understand why a specific SKU choice is made").
//!
//! Every recommendation carries an [`Explanation`]: the curve shape, the
//! negotiability profile the customer matched, the group tolerance applied,
//! and — when the recommended SKU accepts some throttling — which dimension
//! is the bottleneck and how often it binds.

use doppler_telemetry::PerfDimension;

use crate::curve::{CurveShape, PricePerformanceCurve};
use crate::throttling::ThrottleBreakdown;

/// A structured, render-ready explanation of one recommendation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Explanation {
    /// One-sentence summary.
    pub summary: String,
    /// Supporting bullet lines.
    pub lines: Vec<String>,
}

impl Explanation {
    /// Render as plain text for the DMA dashboard.
    pub fn render(&self) -> String {
        let mut out = String::from(&self.summary);
        for line in &self.lines {
            out.push_str("\n  - ");
            out.push_str(line);
        }
        out
    }
}

/// Build the explanation for a completed recommendation.
#[allow(clippy::too_many_arguments)]
pub fn explain(
    sku_id: Option<&str>,
    curve: &PricePerformanceCurve,
    shape: CurveShape,
    profiled: &[PerfDimension],
    bits: &[bool],
    group: usize,
    preferred_p: f64,
    breakdown: Option<&ThrottleBreakdown>,
) -> Explanation {
    let summary = match (sku_id, shape) {
        (None, _) => "No SKU could be recommended for this workload.".to_string(),
        (Some(id), CurveShape::Flat) => format!(
            "{id} recommended: every candidate SKU satisfies 100% of observed needs, so the \
             cheapest option is the most cost-efficient."
        ),
        (Some(id), CurveShape::Simple) => format!(
            "{id} recommended: it is the cheapest SKU that fully satisfies the workload's \
             capacity step."
        ),
        (Some(id), CurveShape::Complex) => format!(
            "{id} recommended: it sits closest to the throttling tolerance of similar \
             migrated customers (group tolerance {:.1}%).",
            preferred_p * 100.0
        ),
    };

    let mut lines = Vec::new();
    let negotiable: Vec<String> =
        profiled.iter().zip(bits).filter(|(_, &b)| b).map(|(d, _)| d.to_string()).collect();
    let firm: Vec<String> =
        profiled.iter().zip(bits).filter(|(_, &b)| !b).map(|(d, _)| d.to_string()).collect();
    if !negotiable.is_empty() {
        lines.push(format!(
            "Negotiable dimensions (rare, short-lived peaks): {}.",
            negotiable.join(", ")
        ));
    }
    if !firm.is_empty() {
        lines.push(format!("Non-negotiable dimensions (sustained demand): {}.", firm.join(", ")));
    }
    lines.push(format!("Customer profile group: {group}."));
    lines.push(format!("Candidate SKUs ranked: {}.", curve.len()));
    if let Some(b) = breakdown {
        if let Some((dim, frac)) = b.bottleneck() {
            lines.push(format!(
                "At the recommended SKU, {dim} is the binding dimension, exceeded in {:.2}% of \
                 samples (joint throttling {:.2}%).",
                frac * 100.0,
                b.joint * 100.0
            ));
        } else {
            lines.push("The recommended SKU satisfies every sample of the assessment.".into());
        }
    }
    Explanation { summary, lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::PricePerformanceCurve;

    fn curve() -> PricePerformanceCurve {
        PricePerformanceCurve::from_scored(vec![("a".into(), 100.0, 0.9), ("b".into(), 200.0, 1.0)])
    }

    #[test]
    fn flat_summary_mentions_cheapest() {
        let e = explain(
            Some("DB_GP_2"),
            &curve(),
            CurveShape::Flat,
            &[PerfDimension::Cpu],
            &[false],
            0,
            0.0,
            None,
        );
        assert!(e.summary.contains("cheapest"));
        assert!(e.summary.contains("DB_GP_2"));
    }

    #[test]
    fn complex_summary_mentions_group_tolerance() {
        let e = explain(
            Some("DB_GP_8"),
            &curve(),
            CurveShape::Complex,
            &[PerfDimension::Cpu, PerfDimension::Iops],
            &[true, false],
            5,
            0.143,
            None,
        );
        assert!(e.summary.contains("14.3%"));
        let text = e.render();
        assert!(text.contains("Negotiable dimensions"), "{text}");
        assert!(text.contains("Cpu"), "{text}");
        assert!(text.contains("Non-negotiable"), "{text}");
        assert!(text.contains("Iops"), "{text}");
    }

    #[test]
    fn missing_recommendation_is_explained() {
        let e = explain(None, &curve(), CurveShape::Complex, &[], &[], 0, 0.0, None);
        assert!(e.summary.contains("No SKU"));
    }

    #[test]
    fn render_produces_bulleted_lines() {
        let e = Explanation { summary: "S".into(), lines: vec!["one".into(), "two".into()] };
        assert_eq!(e.render(), "S\n  - one\n  - two");
    }
}
