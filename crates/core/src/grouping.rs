//! Customer grouping (§3.3, Eq. 2): from negotiability features to group
//! membership.
//!
//! Production Doppler uses "straightforward enumeration" — the bit vector
//! itself indexes one of `2^d` groups (16 for SQL DB's four profiled
//! dimensions, 8 for SQL MI's three; §5.2.1). Table 4 evaluates k-means on
//! the continuous weights as the alternative; hierarchical clustering is
//! the other standard option the paper names.

use doppler_stats::{hierarchical_cluster, kmeans, KMeansConfig, KMeansResult, Linkage};

/// How to turn per-customer negotiability features into groups.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GroupingStrategy {
    /// Bit-vector enumeration into `2^d` groups (production).
    Enumeration,
    /// k-means over the continuous weight vectors.
    KMeans { k: usize, seed: u64 },
    /// Agglomerative clustering over the weight vectors.
    Hierarchical { k: usize, linkage: Linkage },
}

/// A fitted grouping that can assign new customers.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedGrouping {
    /// Enumeration needs no fitting — only the dimension count.
    Enumeration { n_dims: usize },
    /// Centroid-based assignment (k-means directly; hierarchical via the
    /// per-cluster mean).
    Centroids { centroids: Vec<Vec<f64>> },
}

impl GroupingStrategy {
    /// Fit on the training cohort. `weights[i]` / `bits[i]` describe
    /// customer `i`. Returns the fitted grouping and each training
    /// customer's group label.
    pub fn fit(&self, weights: &[Vec<f64>], bits: &[Vec<bool>]) -> (FittedGrouping, Vec<usize>) {
        match *self {
            GroupingStrategy::Enumeration => {
                let n_dims = bits.first().map_or(0, |b| b.len());
                let grouping = FittedGrouping::Enumeration { n_dims };
                let labels = bits.iter().map(|b| bits_to_group(b)).collect();
                (grouping, labels)
            }
            GroupingStrategy::KMeans { k, seed } => {
                assert!(!weights.is_empty(), "k-means grouping needs training data");
                let result: KMeansResult =
                    kmeans(weights, &KMeansConfig { k, seed, ..Default::default() });
                (FittedGrouping::Centroids { centroids: result.centroids }, result.assignments)
            }
            GroupingStrategy::Hierarchical { k, linkage } => {
                assert!(!weights.is_empty(), "hierarchical grouping needs training data");
                let labels = hierarchical_cluster(weights, k, linkage);
                let n_groups = labels.iter().max().map_or(0, |m| m + 1);
                let d = weights[0].len();
                let mut sums = vec![vec![0.0; d]; n_groups];
                let mut counts = vec![0usize; n_groups];
                for (w, &l) in weights.iter().zip(&labels) {
                    counts[l] += 1;
                    for (s, &x) in sums[l].iter_mut().zip(w) {
                        *s += x;
                    }
                }
                let centroids = sums
                    .into_iter()
                    .zip(&counts)
                    .map(|(s, &c)| s.into_iter().map(|x| x / c.max(1) as f64).collect())
                    .collect();
                (FittedGrouping::Centroids { centroids }, labels)
            }
        }
    }
}

/// Bit vector → enumeration group index (bit `i` contributes `2^i`).
pub fn bits_to_group(bits: &[bool]) -> usize {
    bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | ((b as usize) << i))
}

impl FittedGrouping {
    /// Number of groups this grouping can emit.
    pub fn group_count(&self) -> usize {
        match self {
            FittedGrouping::Enumeration { n_dims } => 1usize << n_dims,
            FittedGrouping::Centroids { centroids } => centroids.len(),
        }
    }

    /// Assign a new customer from its features.
    pub fn assign(&self, weights: &[f64], bits: &[bool]) -> usize {
        match self {
            FittedGrouping::Enumeration { .. } => bits_to_group(bits),
            FittedGrouping::Centroids { centroids } => {
                let mut best = (0usize, f64::INFINITY);
                for (i, c) in centroids.iter().enumerate() {
                    let d = doppler_stats::euclidean_sq(c, weights);
                    if d < best.1 {
                        best = (i, d);
                    }
                }
                best.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_enumerate_in_binary_order() {
        assert_eq!(bits_to_group(&[false, false, false]), 0);
        assert_eq!(bits_to_group(&[true, false, false]), 1);
        assert_eq!(bits_to_group(&[false, true, false]), 2);
        assert_eq!(bits_to_group(&[true, true, true]), 7);
        assert_eq!(bits_to_group(&[]), 0);
    }

    #[test]
    fn enumeration_group_count_is_two_to_the_dims() {
        let (g, labels) = GroupingStrategy::Enumeration
            .fit(&[vec![0.9, 0.1], vec![0.1, 0.9]], &[vec![true, false], vec![false, true]]);
        assert_eq!(g.group_count(), 4);
        assert_eq!(labels, vec![1, 2]);
    }

    #[test]
    fn enumeration_assignment_matches_fit_labels() {
        let bits = vec![vec![true, true, false], vec![false, false, true]];
        let weights = vec![vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let (g, labels) = GroupingStrategy::Enumeration.fit(&weights, &bits);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(g.assign(&weights[i], b), labels[i]);
        }
    }

    #[test]
    fn kmeans_grouping_separates_extremes() {
        let weights: Vec<Vec<f64>> =
            (0..20).map(|i| if i < 10 { vec![0.95, 0.9] } else { vec![0.05, 0.1] }).collect();
        let bits: Vec<Vec<bool>> = (0..20).map(|i| vec![i < 10, i < 10]).collect();
        let (g, labels) = GroupingStrategy::KMeans { k: 2, seed: 1 }.fit(&weights, &bits);
        assert_eq!(g.group_count(), 2);
        assert_ne!(labels[0], labels[19]);
        // New customers route to the right centroid.
        assert_eq!(g.assign(&[0.9, 0.92], &[true, true]), labels[0]);
        assert_eq!(g.assign(&[0.02, 0.03], &[false, false]), labels[19]);
    }

    #[test]
    fn hierarchical_grouping_matches_centroid_assignment() {
        let weights: Vec<Vec<f64>> = (0..12)
            .map(|i| if i < 6 { vec![0.9 + 0.01 * i as f64] } else { vec![0.1 + 0.01 * i as f64] })
            .collect();
        let bits: Vec<Vec<bool>> = (0..12).map(|i| vec![i < 6]).collect();
        let (g, labels) =
            GroupingStrategy::Hierarchical { k: 2, linkage: Linkage::Average }.fit(&weights, &bits);
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(g.assign(w, &bits[i]), labels[i], "customer {i}");
        }
    }

    #[test]
    #[should_panic(expected = "needs training data")]
    fn kmeans_on_empty_training_panics() {
        GroupingStrategy::KMeans { k: 2, seed: 0 }.fit(&[], &[]);
    }
}
