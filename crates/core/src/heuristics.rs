//! Curve-shape heuristics (§3.2, "Limitation").
//!
//! Before the Customer Profiler existed, three heuristics were tried for
//! turning a price-performance curve into one SKU. The paper keeps them as
//! a cautionary tale — on complex curves like Figure 5 the three disagree
//! (GP 6 / GP 4 / GP 12) and none recovers the customer's actual choice
//! (GP 14). They are implemented here so the Figure 5 reproduction can show
//! exactly that disagreement.

use crate::curve::PricePerformanceCurve;

/// A heuristic for picking one SKU off a curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CurveHeuristic {
    /// "Selecting the SKU that sits after the point … where the difference
    /// in the throttling probability is no longer significant":
    /// the first SKU whose successor improves by at most `epsilon`.
    LargestPerformanceIncrease {
        /// Significance cutoff on successive score gains (paper: 0.001).
        epsilon: f64,
    },
    /// The SKU just after the largest per-dollar score gain:
    /// maximize `(P_i − P_{i−1}) / (price_i − price_{i−1})`.
    LargestSlope,
    /// "The first SKU whose throttling probability is greater than some
    /// predefined threshold": first point with `score >= gamma`.
    PerformanceThreshold {
        /// Score threshold (paper example: 0.95).
        gamma: f64,
    },
}

impl CurveHeuristic {
    /// The paper's default configurations.
    pub fn largest_performance_increase() -> CurveHeuristic {
        CurveHeuristic::LargestPerformanceIncrease { epsilon: 0.001 }
    }

    /// Threshold at 95 %, as in the Figure 5 walk-through.
    pub fn performance_threshold_95() -> CurveHeuristic {
        CurveHeuristic::PerformanceThreshold { gamma: 0.95 }
    }

    /// Apply the heuristic. Returns the selected SKU id, or `None` on an
    /// empty curve (or when no point clears a threshold).
    pub fn select(&self, curve: &PricePerformanceCurve) -> Option<String> {
        let pts = curve.points();
        if pts.is_empty() {
            return None;
        }
        match *self {
            CurveHeuristic::LargestPerformanceIncrease { epsilon } => {
                // Walk until the marginal gain becomes insignificant.
                for i in 1..pts.len() {
                    let gain = pts[i].score - pts[i - 1].score;
                    if gain <= epsilon {
                        return Some(pts[i - 1].sku_id.clone());
                    }
                }
                Some(pts[pts.len() - 1].sku_id.clone())
            }
            CurveHeuristic::LargestSlope => {
                let mut best: Option<(usize, f64)> = None;
                for i in 1..pts.len() {
                    let dp = pts[i].score - pts[i - 1].score;
                    let dc = pts[i].monthly_cost - pts[i - 1].monthly_cost;
                    if dc <= 0.0 {
                        continue;
                    }
                    let slope = dp / dc;
                    if best.is_none_or(|(_, s)| slope > s) {
                        best = Some((i, slope));
                    }
                }
                best.map(|(i, _)| pts[i].sku_id.clone()).or_else(|| Some(pts[0].sku_id.clone()))
            }
            CurveHeuristic::PerformanceThreshold { gamma } => {
                pts.iter().find(|p| p.score >= gamma).map(|p| p.sku_id.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Figure 5-like complex curve: a steep early climb, a long plateau
    /// from GP6 to GP10, then a late jump to 1.0 at GP12/GP14.
    fn complex_curve() -> PricePerformanceCurve {
        PricePerformanceCurve::from_scored(vec![
            ("GP2".into(), 370.0, 0.30),
            ("BC2".into(), 500.0, 0.35),
            ("GP4".into(), 740.0, 0.62),
            ("GP6".into(), 1110.0, 0.80),
            ("GP8".into(), 1480.0, 0.8005),
            ("GP10".into(), 1850.0, 0.801),
            ("GP12".into(), 2220.0, 0.96),
            ("GP14".into(), 2590.0, 1.00),
        ])
    }

    #[test]
    fn heuristics_disagree_on_complex_curves() {
        // The Figure 5 phenomenon: three heuristics, three answers, none
        // of which need be the customer's actual choice (GP14).
        let curve = complex_curve();
        let a = CurveHeuristic::largest_performance_increase().select(&curve).unwrap();
        let b = CurveHeuristic::LargestSlope.select(&curve).unwrap();
        let c = CurveHeuristic::performance_threshold_95().select(&curve).unwrap();
        assert_eq!(a, "GP6"); // the next gain (GP8) is insignificant
        assert_eq!(b, "GP4"); // steepest per-dollar climb
        assert_eq!(c, "GP12"); // first >= 0.95
        assert_ne!(a, "GP14");
        assert_ne!(b, "GP14");
        assert_ne!(c, "GP14");
    }

    #[test]
    fn threshold_returns_none_when_unreachable() {
        let curve = PricePerformanceCurve::from_scored(vec![
            ("a".into(), 100.0, 0.2),
            ("b".into(), 200.0, 0.5),
        ]);
        assert_eq!(CurveHeuristic::PerformanceThreshold { gamma: 0.9 }.select(&curve), None);
    }

    #[test]
    fn all_heuristics_none_on_empty_curve() {
        let curve = PricePerformanceCurve::from_scored(vec![]);
        assert_eq!(CurveHeuristic::largest_performance_increase().select(&curve), None);
        assert_eq!(CurveHeuristic::LargestSlope.select(&curve), None);
        assert_eq!(CurveHeuristic::performance_threshold_95().select(&curve), None);
    }

    #[test]
    fn flat_curve_collapses_to_first_point() {
        let curve = PricePerformanceCurve::from_scored(vec![
            ("a".into(), 100.0, 1.0),
            ("b".into(), 200.0, 1.0),
            ("c".into(), 300.0, 1.0),
        ]);
        // No significant gain anywhere: settle immediately.
        assert_eq!(CurveHeuristic::largest_performance_increase().select(&curve).unwrap(), "a");
        assert_eq!(CurveHeuristic::performance_threshold_95().select(&curve).unwrap(), "a");
    }

    #[test]
    fn single_point_curve_selects_it() {
        let curve = PricePerformanceCurve::from_scored(vec![("only".into(), 50.0, 0.7)]);
        assert_eq!(CurveHeuristic::largest_performance_increase().select(&curve).unwrap(), "only");
        assert_eq!(CurveHeuristic::LargestSlope.select(&curve).unwrap(), "only");
    }

    #[test]
    fn monotone_steady_climb_rides_to_the_top() {
        let curve = PricePerformanceCurve::from_scored(vec![
            ("a".into(), 100.0, 0.2),
            ("b".into(), 200.0, 0.5),
            ("c".into(), 300.0, 0.8),
            ("d".into(), 400.0, 1.0),
        ]);
        assert_eq!(CurveHeuristic::largest_performance_increase().select(&curve).unwrap(), "d");
    }
}
