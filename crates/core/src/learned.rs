//! Lorentz-style learned backend: nearest-neighbour SKU recommendation over
//! normalized workload fingerprints.
//!
//! *Learned SKU Recommendation Using Profile Data* (Lorentz) replaces
//! hand-tuned recommendation rules with a model trained on profiles of
//! already-migrated customers: summarize each workload as a fixed-length
//! feature vector, normalize, and recommend the SKU retained by the most
//! similar profile — falling back to the rule-based recommender whenever the
//! nearest profile is not similar enough to trust (the similarity-floor
//! safeguard). [`LearnedBackend`] reproduces that design on top of Doppler's
//! machinery:
//!
//! * **Workload fingerprints** — per profiled dimension (§5.2.1's CPU /
//!   memory / IOPS / log-rate set), the mean and peak utilization over the
//!   telemetry window, min-max normalized across the training corpus
//!   ([`doppler_stats::scaling`]);
//! * **Nearest neighbour** — Euclidean distance
//!   ([`doppler_stats::distance`]) against the training exemplars; corpora
//!   larger than [`LearnedConfig::max_profiles`] are compressed to k-means
//!   centroids ([`mod@doppler_stats::kmeans`]) labeled by their cluster's
//!   majority SKU;
//! * **Similarity floor** — `similarity = 1 / (1 + distance)`; below
//!   [`LearnedConfig::similarity_floor`] the backend returns the embedded
//!   heuristic [`DopplerEngine`]'s recommendation *exactly* (bit-for-bit),
//!   so a sparse or mismatched training corpus can never make things worse
//!   than the paper's engine.
//!
//! Everything is deterministic: feature extraction is pure, k-means runs
//! under [`LearnedConfig::seed`], and nearest-neighbour ties break on
//! exemplar order — the fleet's bit-for-bit report equality across worker
//! counts holds for this backend too.

use doppler_catalog::{Catalog, FileLayout, Fingerprint};
use doppler_stats::distance::euclidean;
use doppler_stats::kmeans::{kmeans, KMeansConfig};
use doppler_stats::scaling::minmax_scale;
use doppler_telemetry::{PerfDimension, PerfHistory};

use crate::confidence::{confidence_score, ConfidenceConfig};
use crate::engine::{
    profiled_dimensions, DopplerEngine, EngineConfig, Recommendation, TrainingRecord,
};

/// Hyper-parameters for [`LearnedBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Minimum similarity `1 / (1 + distance)` to the nearest training
    /// exemplar for the learned recommendation to be trusted; below it the
    /// heuristic fallback's recommendation is returned unchanged. `0.0`
    /// always trusts the neighbour; anything `> 1.0` always falls back.
    pub similarity_floor: f64,
    /// Maximum number of exemplars kept; larger training corpora are
    /// compressed to this many k-means centroids.
    pub max_profiles: usize,
    /// Seed for the k-means compression (only used when compressing).
    pub seed: u64,
}

impl Default for LearnedConfig {
    fn default() -> LearnedConfig {
        LearnedConfig { similarity_floor: 0.75, max_profiles: 256, seed: 0 }
    }
}

/// One training exemplar: a normalized workload fingerprint and the SKU its
/// cluster of migrated customers retained.
#[derive(Debug, Clone, PartialEq)]
struct Exemplar {
    profile: Vec<f64>,
    sku_id: String,
}

/// The learned recommender. Construct with [`LearnedBackend::train`].
#[derive(Debug, Clone)]
pub struct LearnedBackend {
    fallback: DopplerEngine,
    learned: LearnedConfig,
    /// Per-feature `(min, range)` from the training corpus; queries are
    /// normalized with exactly these parameters.
    norms: Vec<(f64, f64)>,
    exemplars: Vec<Exemplar>,
}

/// Summarize a history into the raw (unnormalized) workload fingerprint:
/// mean and peak per profiled dimension, zero where telemetry is absent.
fn raw_profile(history: &PerfHistory, dims: &[PerfDimension]) -> Vec<f64> {
    let mut profile = Vec::with_capacity(dims.len() * 2);
    for &dim in dims {
        match history.values(dim) {
            Some(values) if !values.is_empty() => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let peak = values.iter().cloned().fold(f64::MIN, f64::max);
                profile.push(mean);
                profile.push(peak);
            }
            _ => {
                profile.push(0.0);
                profile.push(0.0);
            }
        }
    }
    profile
}

impl LearnedBackend {
    /// Train on migrated customers: fingerprint and normalize every profile,
    /// compress to k-means centroids when the corpus exceeds
    /// [`LearnedConfig::max_profiles`], and train the embedded heuristic
    /// fallback on the same records.
    pub fn train(
        catalog: Catalog,
        config: EngineConfig,
        learned: LearnedConfig,
        records: &[TrainingRecord],
    ) -> LearnedBackend {
        let dims = profiled_dimensions(config.deployment);
        let raw: Vec<Vec<f64>> = records.iter().map(|r| raw_profile(&r.history, dims)).collect();

        let n_features = dims.len() * 2;
        let mut norms = Vec::with_capacity(n_features);
        let mut normalized = vec![Vec::with_capacity(n_features); raw.len()];
        for f in 0..n_features {
            let column: Vec<f64> = raw.iter().map(|p| p[f]).collect();
            let min = column.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = column.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let range = if max > min { max - min } else { 0.0 };
            norms.push(if column.is_empty() { (0.0, 0.0) } else { (min, range) });
            for (row, &scaled) in normalized.iter_mut().zip(minmax_scale(&column).iter()) {
                row.push(scaled);
            }
        }

        let exemplars = if normalized.is_empty() {
            Vec::new()
        } else if normalized.len() > learned.max_profiles.max(1) {
            Self::compress(&normalized, records, &learned)
        } else {
            normalized
                .into_iter()
                .zip(records)
                .map(|(profile, r)| Exemplar { profile, sku_id: r.chosen_sku.0.clone() })
                .collect()
        };

        let fallback = DopplerEngine::train(catalog, config, records);
        LearnedBackend { fallback, learned, norms, exemplars }
    }

    /// k-means compression: one exemplar per cluster, positioned at the
    /// centroid and labeled with the cluster's majority SKU (ties break to
    /// the lexicographically smallest, for determinism).
    fn compress(
        normalized: &[Vec<f64>],
        records: &[TrainingRecord],
        learned: &LearnedConfig,
    ) -> Vec<Exemplar> {
        let fitted = kmeans(
            normalized,
            &KMeansConfig {
                k: learned.max_profiles.max(1),
                seed: learned.seed,
                ..KMeansConfig::default()
            },
        );
        fitted
            .centroids
            .iter()
            .enumerate()
            .filter_map(|(cluster, centroid)| {
                let mut counts = std::collections::BTreeMap::new();
                for (&assigned, record) in fitted.assignments.iter().zip(records) {
                    if assigned == cluster {
                        *counts.entry(record.chosen_sku.0.as_str()).or_insert(0usize) += 1;
                    }
                }
                let majority =
                    counts.iter().fold(None::<(&str, usize)>, |best, (&sku, &n)| match best {
                        Some((_, m)) if m >= n => best,
                        _ => Some((sku, n)),
                    });
                majority
                    .map(|(sku, _)| Exemplar { profile: centroid.clone(), sku_id: sku.to_string() })
            })
            .collect()
    }

    /// The embedded heuristic engine the backend falls back to.
    pub fn fallback(&self) -> &DopplerEngine {
        &self.fallback
    }

    /// The learned hyper-parameters.
    pub fn learned_config(&self) -> &LearnedConfig {
        &self.learned
    }

    /// Number of training exemplars retained (post-compression).
    pub fn exemplar_count(&self) -> usize {
        self.exemplars.len()
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        self.fallback.catalog()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.fallback.config()
    }

    /// Normalize a query history with the training-corpus normalization.
    fn query_profile(&self, history: &PerfHistory) -> Vec<f64> {
        let dims = profiled_dimensions(self.fallback.config().deployment);
        raw_profile(history, dims)
            .iter()
            .zip(&self.norms)
            .map(|(&x, &(min, range))| if range > 0.0 { (x - min) / range } else { 0.0 })
            .collect()
    }

    /// The nearest exemplar's SKU and its similarity `1 / (1 + distance)`,
    /// or `None` when no exemplars exist. Ties break on exemplar order.
    pub fn nearest(&self, history: &PerfHistory) -> Option<(&str, f64)> {
        let query = self.query_profile(history);
        let mut best: Option<(&Exemplar, f64)> = None;
        for exemplar in &self.exemplars {
            let d = euclidean(&exemplar.profile, &query);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((exemplar, d)),
            }
        }
        best.map(|(e, d)| (e.sku_id.as_str(), 1.0 / (1.0 + d)))
    }

    /// Recommend: nearest-neighbour SKU when the neighbour clears the
    /// similarity floor and prices on this workload's curve, the heuristic
    /// fallback's exact recommendation otherwise.
    pub fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        let fallback_rec = self.fallback.recommend(history, layout);
        let Some((sku, similarity)) = self.nearest(history) else {
            return fallback_rec;
        };
        if similarity < self.learned.similarity_floor {
            return fallback_rec;
        }
        // The neighbour's SKU must exist on this workload's own
        // price-performance curve (it may not under an MI layout or a
        // rolled catalog) — otherwise the heuristic stands.
        let Some(point) = fallback_rec.curve.points().iter().find(|p| p.sku_id == sku) else {
            return fallback_rec;
        };
        Recommendation {
            sku_id: Some(point.sku_id.clone()),
            monthly_cost: Some(point.monthly_cost),
            score: Some(point.score),
            ..fallback_rec
        }
    }

    /// Recommend and attach the §3.4 bootstrap confidence score (resampling
    /// the learned recommendation itself, fallback included).
    pub fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation {
        let mut rec = self.recommend(history, layout);
        if let Some(original) = rec.sku_id.clone() {
            let c = confidence_score(history, &original, confidence, |window| {
                self.recommend(window, layout).sku_id
            });
            rec.confidence = Some(c);
        }
        rec
    }

    /// Deterministic content fingerprint over the fallback, the
    /// hyper-parameters, the normalization, and every exemplar.
    pub fn fingerprint(&self) -> u64 {
        use crate::backend::RecommendationBackend as _;
        let mut fp = Fingerprint::new();
        fp.write_str("learned");
        fp.write_u64(self.fallback.fingerprint());
        fp.write_f64(self.learned.similarity_floor);
        fp.write_usize(self.learned.max_profiles);
        fp.write_u64(self.learned.seed);
        for &(min, range) in &self.norms {
            fp.write_f64(min);
            fp.write_f64(range);
        }
        fp.write_usize(self.exemplars.len());
        for e in &self.exemplars {
            fp.write_str(&e.sku_id);
            for &x in &e.profile {
                fp.write_f64(x);
            }
        }
        fp.finish()
    }
}

impl crate::backend::RecommendationBackend for LearnedBackend {
    fn id(&self) -> &'static str {
        "learned"
    }

    fn catalog(&self) -> &Catalog {
        LearnedBackend::catalog(self)
    }

    fn config(&self) -> &EngineConfig {
        LearnedBackend::config(self)
    }

    fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        LearnedBackend::recommend(self, history, layout)
    }

    fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation {
        LearnedBackend::recommend_with_confidence(self, history, layout, confidence)
    }

    fn fingerprint(&self) -> u64 {
        LearnedBackend::fingerprint(self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType, SkuId};
    use doppler_telemetry::TimeSeries;

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn config() -> EngineConfig {
        EngineConfig::production(DeploymentType::SqlDb)
    }

    fn history(cpu: f64, iops: f64) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![2.0; 96]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![iops; 96]))
            .with(PerfDimension::LogRate, TimeSeries::ten_minute(vec![0.5; 96]))
    }

    fn record(cpu: f64, iops: f64, sku: &str) -> TrainingRecord {
        TrainingRecord {
            history: history(cpu, iops),
            chosen_sku: SkuId(sku.into()),
            file_layout: None,
        }
    }

    fn corpus() -> Vec<TrainingRecord> {
        vec![
            record(0.2, 50.0, "DB_GP_2"),
            record(0.3, 60.0, "DB_GP_2"),
            record(2.0, 900.0, "DB_GP_8"),
            record(2.2, 950.0, "DB_GP_8"),
        ]
    }

    #[test]
    fn empty_corpus_is_pure_fallback() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &[]);
        let h = history(0.5, 100.0);
        assert_eq!(b.recommend(&h, None), b.fallback().recommend(&h, None));
        assert_eq!(b.exemplar_count(), 0);
    }

    #[test]
    fn near_exact_match_recommends_the_neighbours_sku() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        // A workload almost identical to the DB_GP_8 cohort.
        let rec = b.recommend(&history(2.1, 920.0), None);
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_8"));
        // The learned point prices off the workload's own curve.
        let point =
            rec.curve.points().iter().find(|p| p.sku_id == "DB_GP_8").expect("sku on curve");
        assert_eq!(rec.monthly_cost, Some(point.monthly_cost));
        assert_eq!(rec.score, Some(point.score));
    }

    #[test]
    fn floor_above_one_always_falls_back_exactly() {
        let cfg = LearnedConfig { similarity_floor: 2.0, ..LearnedConfig::default() };
        let b = LearnedBackend::train(catalog(), config(), cfg, &corpus());
        for (cpu, iops) in [(0.2, 50.0), (1.0, 400.0), (2.1, 920.0)] {
            let h = history(cpu, iops);
            assert_eq!(b.recommend(&h, None), b.fallback().recommend(&h, None));
        }
    }

    #[test]
    fn kmeans_compression_bounds_exemplars_and_stays_deterministic() {
        let records: Vec<TrainingRecord> = (0..40)
            .map(|i| {
                let cpu = 0.1 + (i % 10) as f64 * 0.3;
                record(cpu, cpu * 300.0, if cpu > 1.5 { "DB_GP_8" } else { "DB_GP_2" })
            })
            .collect();
        let cfg = LearnedConfig { max_profiles: 8, seed: 7, ..LearnedConfig::default() };
        let a = LearnedBackend::train(catalog(), config(), cfg, &records);
        let b = LearnedBackend::train(catalog(), config(), cfg, &records);
        assert!(a.exemplar_count() <= 8);
        assert!(a.exemplar_count() > 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let h = history(2.8, 840.0);
        assert_eq!(a.recommend(&h, None), b.recommend(&h, None));
    }

    #[test]
    fn fingerprint_tracks_hyper_parameters() {
        let a = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        let b = LearnedBackend::train(
            catalog(),
            config(),
            LearnedConfig { similarity_floor: 0.5, ..LearnedConfig::default() },
            &corpus(),
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn confidence_resamples_the_learned_recommendation() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        let rec =
            b.recommend_with_confidence(&history(2.1, 920.0), None, &ConfidenceConfig::default());
        let c = rec.confidence.expect("confidence attached");
        assert!((0.0..=1.0).contains(&c));
    }
}
