//! Lorentz-style learned backend: nearest-neighbour SKU recommendation over
//! normalized workload fingerprints.
//!
//! *Learned SKU Recommendation Using Profile Data* (Lorentz) replaces
//! hand-tuned recommendation rules with a model trained on profiles of
//! already-migrated customers: summarize each workload as a fixed-length
//! feature vector, normalize, and recommend the SKU retained by the most
//! similar profile — falling back to the rule-based recommender whenever the
//! nearest profile is not similar enough to trust (the similarity-floor
//! safeguard). [`LearnedBackend`] reproduces that design on top of Doppler's
//! machinery:
//!
//! * **Workload fingerprints** — per profiled dimension (§5.2.1's CPU /
//!   memory / IOPS / log-rate set), the feature families selected by
//!   [`FeatureSpec`]: mean/peak utilization, quantiles (p25/p50/p75/p95),
//!   burst shape (spike dwell fraction, peak-to-mean ratio), and diurnal
//!   shape (the first 24-hour harmonic, mean-normalized) — min-max
//!   normalized across the training corpus ([`doppler_stats::scaling`]);
//! * **Nearest neighbour** — Euclidean distance
//!   ([`doppler_stats::distance`]) against the training exemplars; corpora
//!   larger than [`LearnedConfig::max_profiles`] are compressed by the
//!   configured [`CompressorSpec`] — k-means centroids
//!   ([`mod@doppler_stats::kmeans`]) or agglomerative hierarchical clusters
//!   ([`doppler_stats::hierarchical_cluster`]) — labeled by their cluster's
//!   majority SKU;
//! * **Similarity floor** — `similarity = 1 / (1 + distance)`; below
//!   [`LearnedConfig::similarity_floor`] the backend returns the embedded
//!   heuristic [`DopplerEngine`]'s recommendation *exactly* (bit-for-bit),
//!   so a sparse or mismatched training corpus can never make things worse
//!   than the paper's engine.
//!
//! Everything is deterministic: feature extraction is pure, compression
//! runs under [`LearnedConfig::seed`], and nearest-neighbour ties break on
//! exemplar order ([`f64::total_cmp`] semantics, so a non-finite distance
//! can never win) — the fleet's bit-for-bit report equality across worker
//! counts holds for this backend too. Degenerate training corpora surface
//! as typed [`LearnedTrainError`]s from [`LearnedBackend::try_train`]
//! instead of panics or NaN-poisoned distances.

use std::fmt;

use doppler_catalog::{Catalog, FileLayout, Fingerprint};
use doppler_stats::distance::euclidean;
use doppler_stats::hierarchical::{hierarchical_cluster, Linkage};
use doppler_stats::kmeans::{kmeans, KMeansConfig};
use doppler_stats::scaling::minmax_scale;
use doppler_stats::{quantile_sorted, spike_dwell_fraction};
use doppler_telemetry::{PerfDimension, PerfHistory};

use crate::confidence::{confidence_score, ConfidenceConfig};
use crate::engine::{
    profiled_dimensions, DopplerEngine, EngineConfig, Recommendation, TrainingRecord,
};

/// Which feature families make up a workload fingerprint, per profiled
/// dimension. Part of the backend fingerprint (and therefore the registry
/// memo key): two [`LearnedBackend`]s trained with different feature sets
/// never cross-serve from one registry slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSpec {
    /// Mean and peak utilization (2 features) — PR-7's original
    /// fingerprint.
    pub mean_peak: bool,
    /// p25 / p50 / p75 / p95 over the window (4 features), via
    /// [`doppler_stats::quantile_sorted`].
    pub quantiles: bool,
    /// Burst shape (2 features): the §3.3 spike dwell fraction
    /// ([`doppler_stats::spike_dwell_fraction`]) and the peak-to-mean
    /// ratio (0 when the mean is 0).
    pub burst: bool,
    /// Diurnal shape (2 features): cosine and sine coefficients of the
    /// first 24-hour harmonic, normalized by the window mean — two
    /// workloads with the same load level but opposite day/night phase
    /// land far apart.
    pub diurnal: bool,
}

impl FeatureSpec {
    /// Mean + peak only — bit-compatible with the PR-7 fingerprint.
    pub const MEAN_PEAK: FeatureSpec =
        FeatureSpec { mean_peak: true, quantiles: false, burst: false, diurnal: false };

    /// Every feature family (10 features per dimension).
    pub const FULL: FeatureSpec =
        FeatureSpec { mean_peak: true, quantiles: true, burst: true, diurnal: true };

    /// Features extracted per profiled dimension.
    pub fn per_dimension(&self) -> usize {
        2 * usize::from(self.mean_peak)
            + 4 * usize::from(self.quantiles)
            + 2 * usize::from(self.burst)
            + 2 * usize::from(self.diurnal)
    }

    /// Stable bitmask for fingerprinting (one bit per family).
    pub fn bits(&self) -> u64 {
        u64::from(self.mean_peak)
            | u64::from(self.quantiles) << 1
            | u64::from(self.burst) << 2
            | u64::from(self.diurnal) << 3
    }

    /// A compact human-readable tag, e.g. `"mean_peak+quantiles"`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.mean_peak {
            parts.push("mean_peak");
        }
        if self.quantiles {
            parts.push("quantiles");
        }
        if self.burst {
            parts.push("burst");
        }
        if self.diurnal {
            parts.push("diurnal");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl Default for FeatureSpec {
    fn default() -> FeatureSpec {
        FeatureSpec::MEAN_PEAK
    }
}

/// How an oversized training corpus is compressed down to
/// [`LearnedConfig::max_profiles`] exemplars. Part of the backend
/// fingerprint, like [`FeatureSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressorSpec {
    /// Lloyd's k-means under [`LearnedConfig::seed`] (the PR-7 default).
    #[default]
    KMeans,
    /// Agglomerative hierarchical clustering with the given linkage; the
    /// exemplar sits at each cluster's member mean. Deterministic without
    /// a seed.
    Hierarchical(Linkage),
}

impl CompressorSpec {
    /// Stable tag for fingerprints and bench labels.
    pub fn tag(&self) -> &'static str {
        match self {
            CompressorSpec::KMeans => "kmeans",
            CompressorSpec::Hierarchical(Linkage::Single) => "hier-single",
            CompressorSpec::Hierarchical(Linkage::Complete) => "hier-complete",
            CompressorSpec::Hierarchical(Linkage::Average) => "hier-average",
        }
    }
}

/// Hyper-parameters for [`LearnedBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Minimum similarity `1 / (1 + distance)` to the nearest training
    /// exemplar for the learned recommendation to be trusted; below it the
    /// heuristic fallback's recommendation is returned unchanged. `0.0`
    /// always trusts the neighbour; anything `> 1.0` always falls back.
    pub similarity_floor: f64,
    /// Maximum number of exemplars kept; larger training corpora are
    /// compressed to this many clusters by [`LearnedConfig::compressor`].
    pub max_profiles: usize,
    /// Seed for the k-means compression (only used when compressing).
    pub seed: u64,
    /// Which feature families fingerprints carry.
    pub features: FeatureSpec,
    /// How oversized corpora are compressed.
    pub compressor: CompressorSpec,
}

impl Default for LearnedConfig {
    fn default() -> LearnedConfig {
        LearnedConfig {
            similarity_floor: 0.75,
            max_profiles: 256,
            seed: 0,
            features: FeatureSpec::MEAN_PEAK,
            compressor: CompressorSpec::KMeans,
        }
    }
}

/// Why a training corpus was rejected by [`LearnedBackend::try_train`].
/// Degenerate inputs are *typed* errors, never panics or silently
/// NaN-poisoned exemplars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnedTrainError {
    /// A training record carries an empty telemetry window: either one of
    /// its profiled series is present but has no samples (`dimension` set)
    /// or the record has no samples in *any* profiled dimension
    /// (`dimension` `None`). A record with some dimensions absent but at
    /// least one populated is fine — absent telemetry reads as zero.
    EmptyWindow {
        /// Index of the offending record in the training slice.
        record: usize,
        /// The empty-but-present series, when one was identified.
        dimension: Option<PerfDimension>,
    },
    /// A training record carries a NaN or infinite sample; one corrupt
    /// point would otherwise poison the min-max normalization for the
    /// whole corpus.
    NonFiniteSample {
        /// Index of the offending record in the training slice.
        record: usize,
        /// The series carrying the non-finite sample.
        dimension: PerfDimension,
    },
}

impl fmt::Display for LearnedTrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnedTrainError::EmptyWindow { record, dimension: Some(dim) } => {
                write!(f, "training record {record}: empty telemetry window for {dim:?}")
            }
            LearnedTrainError::EmptyWindow { record, dimension: None } => {
                write!(f, "training record {record}: no telemetry in any profiled dimension")
            }
            LearnedTrainError::NonFiniteSample { record, dimension } => {
                write!(f, "training record {record}: non-finite sample in {dim:?}", dim = dimension)
            }
        }
    }
}

impl std::error::Error for LearnedTrainError {}

/// One training exemplar: a normalized workload fingerprint and the SKU its
/// cluster of migrated customers retained.
#[derive(Debug, Clone, PartialEq)]
struct Exemplar {
    profile: Vec<f64>,
    sku_id: String,
}

/// The learned recommender. Construct with [`LearnedBackend::train`].
#[derive(Debug, Clone)]
pub struct LearnedBackend {
    fallback: DopplerEngine,
    learned: LearnedConfig,
    /// Per-feature `(min, range)` from the training corpus; queries are
    /// normalized with exactly these parameters.
    norms: Vec<(f64, f64)>,
    exemplars: Vec<Exemplar>,
}

/// Summarize a history into the raw (unnormalized) workload fingerprint:
/// the [`FeatureSpec`]'s feature families per profiled dimension, zero
/// where telemetry is absent.
fn raw_profile(history: &PerfHistory, dims: &[PerfDimension], features: FeatureSpec) -> Vec<f64> {
    let per_dim = features.per_dimension();
    let mut profile = Vec::with_capacity(dims.len() * per_dim);
    for &dim in dims {
        match history.values(dim) {
            Some(values) if !values.is_empty() => {
                let n = values.len() as f64;
                let mean = values.iter().sum::<f64>() / n;
                let peak = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if features.mean_peak {
                    profile.push(mean);
                    profile.push(peak);
                }
                if features.quantiles {
                    let mut sorted = values.to_vec();
                    sorted.sort_by(f64::total_cmp);
                    for q in [0.25, 0.50, 0.75, 0.95] {
                        profile.push(quantile_sorted(&sorted, q));
                    }
                }
                if features.burst {
                    profile.push(spike_dwell_fraction(values));
                    profile.push(if mean > 0.0 { peak / mean } else { 0.0 });
                }
                if features.diurnal {
                    // First harmonic at the 24-hour period: a workload's
                    // day/night shape as a (cos, sin) pair, normalized by
                    // its own mean so the features capture *shape*, not
                    // scale. Windows shorter than a day read as a partial
                    // arc — still deterministic and comparable within one
                    // corpus.
                    let samples_per_day =
                        f64::from((24 * 60) / history.interval_minutes().max(1)).max(1.0);
                    let (mut a, mut b) = (0.0f64, 0.0f64);
                    for (t, &x) in values.iter().enumerate() {
                        let theta = std::f64::consts::TAU * t as f64 / samples_per_day;
                        a += x * theta.cos();
                        b += x * theta.sin();
                    }
                    let scale = if mean != 0.0 { 2.0 / (n * mean) } else { 0.0 };
                    profile.push(a * scale);
                    profile.push(b * scale);
                }
            }
            _ => profile.resize(profile.len() + per_dim, 0.0),
        }
    }
    profile
}

/// Validate one training record: every *present* profiled series must be
/// non-empty and fully finite, and at least one profiled dimension must
/// carry telemetry.
fn validate_record(
    index: usize,
    record: &TrainingRecord,
    dims: &[PerfDimension],
) -> Result<(), LearnedTrainError> {
    let mut populated = false;
    for &dim in dims {
        match record.history.values(dim) {
            Some([]) => {
                return Err(LearnedTrainError::EmptyWindow { record: index, dimension: Some(dim) })
            }
            Some(values) => {
                if values.iter().any(|x| !x.is_finite()) {
                    return Err(LearnedTrainError::NonFiniteSample {
                        record: index,
                        dimension: dim,
                    });
                }
                populated = true;
            }
            None => {}
        }
    }
    if !populated {
        return Err(LearnedTrainError::EmptyWindow { record: index, dimension: None });
    }
    Ok(())
}

impl LearnedBackend {
    /// Train on migrated customers: fingerprint and normalize every profile,
    /// compress when the corpus exceeds [`LearnedConfig::max_profiles`],
    /// and train the embedded heuristic fallback on the same records.
    ///
    /// Panics on a degenerate corpus (see [`LearnedTrainError`]); prefer
    /// [`LearnedBackend::try_train`] when the training set comes from an
    /// untrusted pipeline. The registry's single-flight slot converts the
    /// panic into a counted training failure, never a poisoned engine.
    pub fn train(
        catalog: Catalog,
        config: EngineConfig,
        learned: LearnedConfig,
        records: &[TrainingRecord],
    ) -> LearnedBackend {
        match Self::try_train(catalog, config, learned, records) {
            Ok(backend) => backend,
            Err(e) => panic!("LearnedBackend::train: {e}"),
        }
    }

    /// [`train`](LearnedBackend::train) with degenerate corpora surfaced
    /// as typed errors: an empty telemetry window or a non-finite sample
    /// in any training record returns a [`LearnedTrainError`] instead of
    /// panicking or NaN-poisoning the normalization.
    pub fn try_train(
        catalog: Catalog,
        config: EngineConfig,
        learned: LearnedConfig,
        records: &[TrainingRecord],
    ) -> Result<LearnedBackend, LearnedTrainError> {
        let dims = profiled_dimensions(config.deployment);
        for (index, record) in records.iter().enumerate() {
            validate_record(index, record, dims)?;
        }
        let raw: Vec<Vec<f64>> =
            records.iter().map(|r| raw_profile(&r.history, dims, learned.features)).collect();

        let n_features = dims.len() * learned.features.per_dimension();
        let mut norms = Vec::with_capacity(n_features);
        let mut normalized = vec![Vec::with_capacity(n_features); raw.len()];
        for f in 0..n_features {
            let column: Vec<f64> = raw.iter().map(|p| p[f]).collect();
            let min = column.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = column.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            // Degenerate (constant or empty) columns clamp to a zero
            // range: both training and query normalization map them to
            // 0.0 instead of dividing by zero.
            let range = if max > min { max - min } else { 0.0 };
            norms.push(if column.is_empty() { (0.0, 0.0) } else { (min, range) });
            for (row, &scaled) in normalized.iter_mut().zip(minmax_scale(&column).iter()) {
                row.push(scaled);
            }
        }

        let exemplars = if normalized.is_empty() {
            Vec::new()
        } else if normalized.len() > learned.max_profiles.max(1) {
            Self::compress(&normalized, records, &learned)
        } else {
            normalized
                .into_iter()
                .zip(records)
                .map(|(profile, r)| Exemplar { profile, sku_id: r.chosen_sku.0.clone() })
                .collect()
        };

        let fallback = DopplerEngine::train(catalog, config, records);
        Ok(LearnedBackend { fallback, learned, norms, exemplars })
    }

    /// Corpus compression: one exemplar per cluster, positioned at the
    /// cluster's representative point and labeled with its majority SKU
    /// (ties break to the lexicographically smallest, for determinism).
    /// K-means places exemplars at fitted centroids; hierarchical
    /// clustering at member means.
    fn compress(
        normalized: &[Vec<f64>],
        records: &[TrainingRecord],
        learned: &LearnedConfig,
    ) -> Vec<Exemplar> {
        let k = learned.max_profiles.max(1);
        let (centroids, assignments) = match learned.compressor {
            CompressorSpec::KMeans => {
                let fitted = kmeans(
                    normalized,
                    &KMeansConfig { k, seed: learned.seed, ..KMeansConfig::default() },
                );
                (fitted.centroids, fitted.assignments)
            }
            CompressorSpec::Hierarchical(linkage) => {
                let labels = hierarchical_cluster(normalized, k, linkage);
                let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
                let width = normalized.first().map_or(0, Vec::len);
                let mut sums = vec![vec![0.0f64; width]; clusters];
                let mut counts = vec![0usize; clusters];
                for (point, &label) in normalized.iter().zip(&labels) {
                    counts[label] += 1;
                    for (s, &x) in sums[label].iter_mut().zip(point) {
                        *s += x;
                    }
                }
                let means = sums
                    .into_iter()
                    .zip(&counts)
                    .map(|(sum, &n)| sum.into_iter().map(|s| s / (n.max(1) as f64)).collect())
                    .collect();
                (means, labels)
            }
        };
        centroids
            .iter()
            .enumerate()
            .filter_map(|(cluster, centroid)| {
                let mut counts = std::collections::BTreeMap::new();
                for (&assigned, record) in assignments.iter().zip(records) {
                    if assigned == cluster {
                        *counts.entry(record.chosen_sku.0.as_str()).or_insert(0usize) += 1;
                    }
                }
                let majority =
                    counts.iter().fold(None::<(&str, usize)>, |best, (&sku, &n)| match best {
                        Some((_, m)) if m >= n => best,
                        _ => Some((sku, n)),
                    });
                majority
                    .map(|(sku, _)| Exemplar { profile: centroid.clone(), sku_id: sku.to_string() })
            })
            .collect()
    }

    /// The embedded heuristic engine the backend falls back to.
    pub fn fallback(&self) -> &DopplerEngine {
        &self.fallback
    }

    /// The learned hyper-parameters.
    pub fn learned_config(&self) -> &LearnedConfig {
        &self.learned
    }

    /// Number of training exemplars retained (post-compression).
    pub fn exemplar_count(&self) -> usize {
        self.exemplars.len()
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        self.fallback.catalog()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.fallback.config()
    }

    /// Normalize a query history with the training-corpus normalization.
    fn query_profile(&self, history: &PerfHistory) -> Vec<f64> {
        let dims = profiled_dimensions(self.fallback.config().deployment);
        raw_profile(history, dims, self.learned.features)
            .iter()
            .zip(&self.norms)
            .map(|(&x, &(min, range))| if range > 0.0 { (x - min) / range } else { 0.0 })
            .collect()
    }

    /// The nearest exemplar's SKU and its similarity `1 / (1 + distance)`,
    /// or `None` when no exemplars exist. The scan orders distances with
    /// [`f64::total_cmp`] and skips non-finite ones outright, so a NaN
    /// distance (a corrupt exemplar or a NaN query sample) can never win —
    /// a fully non-finite scan returns `None` and the caller falls back to
    /// the heuristic. Ties break on exemplar order.
    pub fn nearest(&self, history: &PerfHistory) -> Option<(&str, f64)> {
        let query = self.query_profile(history);
        let mut best: Option<(&Exemplar, f64)> = None;
        for exemplar in &self.exemplars {
            let d = euclidean(&exemplar.profile, &query);
            if !d.is_finite() {
                continue;
            }
            match best {
                Some((_, bd)) if bd.total_cmp(&d).is_le() => {}
                _ => best = Some((exemplar, d)),
            }
        }
        best.map(|(e, d)| (e.sku_id.as_str(), 1.0 / (1.0 + d)))
    }

    /// Recommend: nearest-neighbour SKU when the neighbour clears the
    /// similarity floor and prices on this workload's curve, the heuristic
    /// fallback's exact recommendation otherwise.
    pub fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        let fallback_rec = self.fallback.recommend(history, layout);
        let Some((sku, similarity)) = self.nearest(history) else {
            return fallback_rec;
        };
        if similarity < self.learned.similarity_floor {
            return fallback_rec;
        }
        // The neighbour's SKU must exist on this workload's own
        // price-performance curve (it may not under an MI layout or a
        // rolled catalog) — otherwise the heuristic stands.
        let Some(point) = fallback_rec.curve.points().iter().find(|p| p.sku_id == sku) else {
            return fallback_rec;
        };
        Recommendation {
            sku_id: Some(point.sku_id.clone()),
            monthly_cost: Some(point.monthly_cost),
            score: Some(point.score),
            ..fallback_rec
        }
    }

    /// Recommend and attach the §3.4 bootstrap confidence score (resampling
    /// the learned recommendation itself, fallback included).
    pub fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation {
        let mut rec = self.recommend(history, layout);
        if let Some(original) = rec.sku_id.clone() {
            let c = confidence_score(history, &original, confidence, |window| {
                self.recommend(window, layout).sku_id
            });
            rec.confidence = Some(c);
        }
        rec
    }

    /// Deterministic content fingerprint over the fallback, the
    /// hyper-parameters, the normalization, and every exemplar.
    pub fn fingerprint(&self) -> u64 {
        use crate::backend::RecommendationBackend as _;
        let mut fp = Fingerprint::new();
        fp.write_str("learned");
        fp.write_u64(self.fallback.fingerprint());
        fp.write_f64(self.learned.similarity_floor);
        fp.write_usize(self.learned.max_profiles);
        fp.write_u64(self.learned.seed);
        fp.write_u64(self.learned.features.bits());
        fp.write_str(self.learned.compressor.tag());
        for &(min, range) in &self.norms {
            fp.write_f64(min);
            fp.write_f64(range);
        }
        fp.write_usize(self.exemplars.len());
        for e in &self.exemplars {
            fp.write_str(&e.sku_id);
            for &x in &e.profile {
                fp.write_f64(x);
            }
        }
        fp.finish()
    }
}

impl crate::backend::RecommendationBackend for LearnedBackend {
    fn id(&self) -> &'static str {
        "learned"
    }

    fn catalog(&self) -> &Catalog {
        LearnedBackend::catalog(self)
    }

    fn config(&self) -> &EngineConfig {
        LearnedBackend::config(self)
    }

    fn recommend(&self, history: &PerfHistory, layout: Option<&FileLayout>) -> Recommendation {
        LearnedBackend::recommend(self, history, layout)
    }

    fn recommend_with_confidence(
        &self,
        history: &PerfHistory,
        layout: Option<&FileLayout>,
        confidence: &ConfidenceConfig,
    ) -> Recommendation {
        LearnedBackend::recommend_with_confidence(self, history, layout, confidence)
    }

    fn fingerprint(&self) -> u64 {
        LearnedBackend::fingerprint(self)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType, SkuId};
    use doppler_telemetry::TimeSeries;

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn config() -> EngineConfig {
        EngineConfig::production(DeploymentType::SqlDb)
    }

    fn history(cpu: f64, iops: f64) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![2.0; 96]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![iops; 96]))
            .with(PerfDimension::LogRate, TimeSeries::ten_minute(vec![0.5; 96]))
    }

    fn record(cpu: f64, iops: f64, sku: &str) -> TrainingRecord {
        TrainingRecord {
            history: history(cpu, iops),
            chosen_sku: SkuId(sku.into()),
            file_layout: None,
        }
    }

    fn corpus() -> Vec<TrainingRecord> {
        vec![
            record(0.2, 50.0, "DB_GP_2"),
            record(0.3, 60.0, "DB_GP_2"),
            record(2.0, 900.0, "DB_GP_8"),
            record(2.2, 950.0, "DB_GP_8"),
        ]
    }

    #[test]
    fn empty_corpus_is_pure_fallback() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &[]);
        let h = history(0.5, 100.0);
        assert_eq!(b.recommend(&h, None), b.fallback().recommend(&h, None));
        assert_eq!(b.exemplar_count(), 0);
    }

    #[test]
    fn near_exact_match_recommends_the_neighbours_sku() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        // A workload almost identical to the DB_GP_8 cohort.
        let rec = b.recommend(&history(2.1, 920.0), None);
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_8"));
        // The learned point prices off the workload's own curve.
        let point =
            rec.curve.points().iter().find(|p| p.sku_id == "DB_GP_8").expect("sku on curve");
        assert_eq!(rec.monthly_cost, Some(point.monthly_cost));
        assert_eq!(rec.score, Some(point.score));
    }

    #[test]
    fn floor_above_one_always_falls_back_exactly() {
        let cfg = LearnedConfig { similarity_floor: 2.0, ..LearnedConfig::default() };
        let b = LearnedBackend::train(catalog(), config(), cfg, &corpus());
        for (cpu, iops) in [(0.2, 50.0), (1.0, 400.0), (2.1, 920.0)] {
            let h = history(cpu, iops);
            assert_eq!(b.recommend(&h, None), b.fallback().recommend(&h, None));
        }
    }

    #[test]
    fn kmeans_compression_bounds_exemplars_and_stays_deterministic() {
        let records: Vec<TrainingRecord> = (0..40)
            .map(|i| {
                let cpu = 0.1 + (i % 10) as f64 * 0.3;
                record(cpu, cpu * 300.0, if cpu > 1.5 { "DB_GP_8" } else { "DB_GP_2" })
            })
            .collect();
        let cfg = LearnedConfig { max_profiles: 8, seed: 7, ..LearnedConfig::default() };
        let a = LearnedBackend::train(catalog(), config(), cfg, &records);
        let b = LearnedBackend::train(catalog(), config(), cfg, &records);
        assert!(a.exemplar_count() <= 8);
        assert!(a.exemplar_count() > 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let h = history(2.8, 840.0);
        assert_eq!(a.recommend(&h, None), b.recommend(&h, None));
    }

    #[test]
    fn fingerprint_tracks_hyper_parameters() {
        let a = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        let b = LearnedBackend::train(
            catalog(),
            config(),
            LearnedConfig { similarity_floor: 0.5, ..LearnedConfig::default() },
            &corpus(),
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_present_window_is_a_typed_error() {
        let mut records = corpus();
        records[1].history =
            PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![]));
        let err =
            LearnedBackend::try_train(catalog(), config(), LearnedConfig::default(), &records)
                .unwrap_err();
        assert_eq!(
            err,
            LearnedTrainError::EmptyWindow { record: 1, dimension: Some(PerfDimension::Cpu) }
        );
        assert!(err.to_string().contains("record 1"), "{err}");
    }

    #[test]
    fn telemetry_free_record_is_a_typed_error() {
        let mut records = corpus();
        records[3].history = PerfHistory::new();
        assert_eq!(
            LearnedBackend::try_train(catalog(), config(), LearnedConfig::default(), &records)
                .unwrap_err(),
            LearnedTrainError::EmptyWindow { record: 3, dimension: None }
        );
    }

    #[test]
    fn non_finite_sample_is_a_typed_error_not_nan_poisoning() {
        // TimeSeries::new rejects non-finite samples, but the roll-up
        // arithmetic (TimeSeries::add) can overflow two finite series to
        // infinity — exactly the corrupt-but-sanctioned path the typed
        // error exists for.
        let big = TimeSeries::ten_minute(vec![f64::MAX; 96]);
        let overflow = big.add(&big);
        assert!(overflow.values().iter().all(|v| v.is_infinite()), "overflowed to infinity");
        let mut records = corpus();
        records[2].history = PerfHistory::new().with(PerfDimension::Cpu, overflow);
        assert_eq!(
            LearnedBackend::try_train(catalog(), config(), LearnedConfig::default(), &records)
                .unwrap_err(),
            LearnedTrainError::NonFiniteSample { record: 2, dimension: PerfDimension::Cpu }
        );
    }

    #[test]
    fn constant_columns_clamp_to_zero_and_still_recommend() {
        // Every record identical: every feature column is constant, so
        // min-max normalization would divide by zero without the clamp.
        let records: Vec<TrainingRecord> = (0..4).map(|_| record(0.5, 100.0, "DB_GP_2")).collect();
        let cfg = LearnedConfig { similarity_floor: 0.0, ..LearnedConfig::default() };
        let b = LearnedBackend::train(catalog(), config(), cfg, &records);
        let rec = b.recommend(&history(0.5, 100.0), None);
        assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_2"));
        assert!(rec.monthly_cost.unwrap().is_finite());
        let (_, similarity) = b.nearest(&history(0.5, 100.0)).expect("exemplars exist");
        assert!(similarity.is_finite());
        assert_eq!(similarity, 1.0, "identical constant profiles sit at distance zero");
    }

    #[test]
    fn nan_fingerprint_exemplar_can_never_win() {
        let trained =
            LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        // Plant a corrupt exemplar whose distance to any query is NaN,
        // ahead of the legitimate ones.
        let mut corrupt = trained.clone();
        corrupt.exemplars.insert(
            0,
            Exemplar {
                profile: vec![f64::NAN; corrupt.exemplars[0].profile.len()],
                sku_id: "BAD".into(),
            },
        );
        let (sku, similarity) = corrupt.nearest(&history(2.1, 920.0)).expect("finite neighbour");
        assert_ne!(sku, "BAD", "NaN distance must never win the scan");
        assert!(similarity.is_finite());
        assert_eq!(
            corrupt.recommend(&history(2.1, 920.0), None).sku_id.as_deref(),
            Some("DB_GP_8")
        );
        // All-corrupt exemplars: nearest is None, recommend falls back.
        let mut all_bad = trained.clone();
        for e in &mut all_bad.exemplars {
            e.profile = vec![f64::NAN; e.profile.len()];
        }
        assert!(all_bad.nearest(&history(0.5, 100.0)).is_none());
        let h = history(0.5, 100.0);
        assert_eq!(all_bad.recommend(&h, None), trained.fallback().recommend(&h, None));
    }

    #[test]
    fn feature_spec_counts_and_bits_are_stable() {
        assert_eq!(FeatureSpec::MEAN_PEAK.per_dimension(), 2);
        assert_eq!(FeatureSpec::FULL.per_dimension(), 10);
        assert_eq!(FeatureSpec::default(), FeatureSpec::MEAN_PEAK);
        assert_ne!(FeatureSpec::MEAN_PEAK.bits(), FeatureSpec::FULL.bits());
        assert_eq!(FeatureSpec::FULL.describe(), "mean_peak+quantiles+burst+diurnal");
    }

    #[test]
    fn richer_features_change_the_fingerprint_and_profile_width() {
        // A wider feature vector grows raw Euclidean distances, so trust
        // the neighbour unconditionally here — the floor is exercised
        // elsewhere.
        let full = LearnedConfig {
            features: FeatureSpec::FULL,
            similarity_floor: 0.0,
            ..LearnedConfig::default()
        };
        let a = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        let b = LearnedBackend::train(catalog(), config(), full, &corpus());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // SqlDb profiles 4 dimensions.
        assert_eq!(a.exemplars[0].profile.len(), 8);
        assert_eq!(b.exemplars[0].profile.len(), 40);
        // Both still recommend sensibly on a near-match.
        assert_eq!(b.recommend(&history(2.1, 920.0), None).sku_id.as_deref(), Some("DB_GP_8"));
    }

    #[test]
    fn diurnal_features_separate_opposite_phases() {
        // Two workloads with identical mean/peak/quantiles but opposite
        // day/night phase: only the diurnal family can tell them apart.
        let day_night = |phase: f64| -> Vec<f64> {
            (0..144)
                .map(|t| 2.0 + (std::f64::consts::TAU * t as f64 / 144.0 + phase).cos())
                .collect()
        };
        let spec = FeatureSpec { diurnal: true, ..FeatureSpec::MEAN_PEAK };
        let h = |values: Vec<f64>| {
            PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(values))
        };
        let dims = [PerfDimension::Cpu];
        let a = raw_profile(&h(day_night(0.0)), &dims, spec);
        let b = raw_profile(&h(day_night(std::f64::consts::PI)), &dims, spec);
        // mean/peak agree; the harmonic pair flips sign.
        assert!((a[0] - b[0]).abs() < 1e-9, "means agree");
        assert!((a[2] + b[2]).abs() < 1e-9, "cosine coefficient flips");
        assert!(a[2].abs() > 0.1, "the harmonic is actually captured");
    }

    #[test]
    fn hierarchical_compressor_bounds_exemplars_and_is_deterministic() {
        let records: Vec<TrainingRecord> = (0..40)
            .map(|i| {
                let cpu = 0.1 + (i % 10) as f64 * 0.3;
                record(cpu, cpu * 300.0, if cpu > 1.5 { "DB_GP_8" } else { "DB_GP_2" })
            })
            .collect();
        let cfg = LearnedConfig {
            max_profiles: 8,
            compressor: CompressorSpec::Hierarchical(Linkage::Average),
            ..LearnedConfig::default()
        };
        let a = LearnedBackend::train(catalog(), config(), cfg, &records);
        let b = LearnedBackend::train(catalog(), config(), cfg, &records);
        assert!(a.exemplar_count() <= 8 && a.exemplar_count() > 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let h = history(2.8, 840.0);
        assert_eq!(a.recommend(&h, None), b.recommend(&h, None));
        // A different compressor over the same corpus is a different model.
        let km = LearnedBackend::train(
            catalog(),
            config(),
            LearnedConfig { max_profiles: 8, ..LearnedConfig::default() },
            &records,
        );
        assert_ne!(a.fingerprint(), km.fingerprint());
    }

    #[test]
    fn confidence_resamples_the_learned_recommendation() {
        let b = LearnedBackend::train(catalog(), config(), LearnedConfig::default(), &corpus());
        let rec =
            b.recommend_with_confidence(&history(2.1, 920.0), None, &ConfidenceConfig::default());
        let c = rec.confidence.expect("confidence attached");
        assert!((0.0..=1.0).contains(&c));
    }
}
