//! The Doppler engine: automated SKU recommendation from low-level resource
//! statistics (Cahoon et al., PVLDB 15(12), 2022).
//!
//! Doppler maps a customer's performance history — CPU, memory, IOPS, IO
//! latency, and for SQL DB log rate and storage — onto a right-sized Azure
//! SQL PaaS SKU without ever reading customer data or queries. The engine
//! is two modules plus a guardrail:
//!
//! * the **Price-Performance Modeler** ([`throttling`], [`curve`]):
//!   estimate, for every candidate SKU, the probability that the workload
//!   runs into resource throttling (Eq. 1), and plot `1 − P(throttling)`
//!   against monthly cost as a monotone *price-performance curve*;
//! * the **Customer Profiler** ([`profile`], [`grouping`], [`matching`]):
//!   summarize each dimension's negotiability, group customers with the
//!   straightforward-enumeration / k-means / hierarchical strategies, learn
//!   each group's preferred operating point from successfully migrated
//!   customers (Eq. 3), and match new customers to the SKU closest below
//!   that point (Eqs. 4–6);
//! * the **confidence score** ([`confidence`]): bootstrap the raw telemetry
//!   and report how often the recommendation survives resampling (§3.4).
//!
//! Around those sit the SQL MI storage-tier flow ([`mi`], §3.2), the naive
//! baseline Doppler replaced ([`baseline`], §2), the curve-shape heuristics
//! the paper shows to be inadequate ([`heuristics`], §3.2), right-sizing of
//! over-provisioned cloud customers ([`mod@rightsize`], §5.1), SKU-change
//! detection ([`driftdetect`], §5.2.3), and the human-readable explanations
//! ([`explain`]) that make the recommendation auditable. [`engine`] ties
//! everything into the [`engine::DopplerEngine`] façade the DMA pipeline
//! calls, and [`registry`] memoizes trained engines per
//! `(catalog key, backend, template, training set)` so a whole fleet shares
//! one training run per distinct key.
//!
//! The engine is one of several [`backend::RecommendationBackend`]s: every
//! consumer (pipeline, fleet, drift monitor, registry) works against the
//! trait, [`engine::DopplerEngine`] is the default implementation, and
//! [`learned::LearnedBackend`] is a Lorentz-style learned alternative with a
//! similarity-floor fallback to the heuristic.

pub mod backend;
pub mod baseline;
pub mod confidence;
pub mod curve;
pub mod driftdetect;
pub mod engine;
pub mod explain;
pub mod grouping;
pub mod heuristics;
pub mod learned;
pub mod matching;
pub mod mi;
pub mod profile;
pub mod registry;
pub mod rightsize;
pub mod throttling;

pub use backend::{BackendSpec, RecommendationBackend};
pub use baseline::BaselineStrategy;
pub use confidence::{confidence_score, ConfidenceConfig};
pub use curve::{CurveShape, PricePerfPoint, PricePerformanceCurve};
pub use driftdetect::{detect_drift, DriftReport, DriftSeverity};
pub use engine::{DopplerEngine, EngineConfig, Recommendation, TrainingRecord};
pub use grouping::{FittedGrouping, GroupingStrategy};
pub use heuristics::CurveHeuristic;
pub use learned::{CompressorSpec, FeatureSpec, LearnedBackend, LearnedConfig, LearnedTrainError};
pub use matching::GroupModel;
pub use mi::{mi_curve, MiAssessment};
pub use profile::NegotiabilityStrategy;
pub use registry::{EngineRegistry, EngineTemplate, RegistryError, RegistryStats, TrainingSet};
pub use rightsize::{rightsize, RightsizeReport};
pub use throttling::{throttling_probability, ThrottleBreakdown};
