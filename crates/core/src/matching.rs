//! Group preference learning and profile matching (Eqs. 3–6).
//!
//! For every group `g` of successfully migrated customers, Doppler learns
//! the preferred operating point
//!
//! ```text
//! P_g = E[ P_n(SKU*_n) ]  over members n of g          (Eq. 3)
//! ```
//!
//! — the average throttling probability members tolerated at the SKU they
//! fixed. A new customer assigned to `g` gets the SKU
//!
//! ```text
//! argmin_i |P(SKU_i) − P_g|   s.t.  P(SKU_i) ≤ P_g     (Eqs. 4, 6)
//! ```
//!
//! Flat curves carry no preference signal (every SKU scores 1.0, so where
//! the member parked says nothing about throttling tolerance); learning
//! uses only *informative* curves, which is also where the paper's Table 3
//! statistics come from.

use crate::curve::{PricePerfPoint, PricePerformanceCurve};

/// Per-group summary statistics (the rows of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct GroupStats {
    /// Members assigned to the group (informative or not).
    pub n_total: usize,
    /// Members whose curves carried preference information.
    pub n_informative: usize,
    /// Members who *operate under throttling*: informative curve and a
    /// chosen SKU with `P > 0`. Only these reveal the group's tolerance —
    /// a member parked at `P = 0` is consistent with any tolerance.
    pub n_operating: usize,
    /// Mean score `1 − P` at the chosen SKU across operating members
    /// (1.0 when the group has informative members but none operating:
    /// the group tolerates nothing).
    pub mean_score: f64,
    /// Standard deviation of that score.
    pub std_score: f64,
    /// 25th percentile of the operating scores — i.e. the *high* end of
    /// the members' throttling probabilities. Eq. 6's one-sided constraint
    /// censors every member's realized `P` downward (a customer can only
    /// land at or below their tolerance, never above), so the mean
    /// under-estimates the group tolerance; this quantile recovers it.
    pub tolerance_score: f64,
}

/// The learned preference model: one `P_g` per group.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupModel {
    groups: Vec<GroupStats>,
    /// Used for groups with no informative members: the global mean
    /// throttling tolerance.
    fallback_p: f64,
}

impl GroupModel {
    /// Learn from `(group, curve, chosen_sku)` training triples.
    pub fn learn<'a>(
        n_groups: usize,
        records: impl Iterator<Item = (usize, &'a PricePerformanceCurve, &'a str)>,
    ) -> GroupModel {
        const FULL: f64 = 1.0 - 1e-9;
        // Scores below this mark an under-provisioned choice (the workload
        // throttles most of the time); §5.5 reports such customers are few
        // and they carry no tolerance signal, only noise.
        const UNDER_PROVISIONED: f64 = 0.5;
        let mut operating: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
        let mut informative = vec![0usize; n_groups];
        let mut totals = vec![0usize; n_groups];
        for (group, curve, chosen) in records {
            if group >= n_groups {
                continue;
            }
            totals[group] += 1;
            if !curve.is_informative() {
                continue;
            }
            if let Some(point) = curve.point_for(chosen) {
                informative[group] += 1;
                if point.score < FULL && point.score >= UNDER_PROVISIONED {
                    operating[group].push(point.score);
                }
            }
        }
        let all: Vec<f64> = operating.iter().flatten().copied().collect();
        let fallback_p = if all.is_empty() { 0.0 } else { 1.0 - doppler_stats::mean(&all) };
        let groups = operating
            .iter()
            .zip(&informative)
            .zip(&totals)
            .map(|((ops, &n_informative), &n_total)| {
                // A group whose operating members are a sliver of its
                // informative members is a zero-tolerance group observed
                // through choice noise, not a throttling-tolerant one.
                let representative = !ops.is_empty() && ops.len() * 10 >= n_informative;
                GroupStats {
                    n_total,
                    n_informative,
                    n_operating: ops.len(),
                    mean_score: if representative {
                        doppler_stats::mean(ops)
                    } else if n_informative > 0 {
                        1.0 // effectively zero tolerance
                    } else {
                        f64::NAN
                    },
                    std_score: if representative { doppler_stats::stddev(ops) } else { 0.0 },
                    tolerance_score: if representative {
                        doppler_stats::quantile(ops, 0.25).expect("nonempty")
                    } else if n_informative > 0 {
                        1.0
                    } else {
                        f64::NAN
                    },
                }
            })
            .collect();
        GroupModel { groups, fallback_p }
    }

    /// Number of groups the model covers.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Per-group statistics (Table 3).
    pub fn stats(&self) -> &[GroupStats] {
        &self.groups
    }

    /// The preferred throttling probability `P_g` for a group, falling back
    /// to the global mean for groups never observed with an informative
    /// curve. Uses the censoring-corrected tolerance quantile rather than
    /// the raw mean (see [`GroupStats::tolerance_score`]). Clamped into
    /// `[0, 1]`.
    pub fn preferred_p(&self, group: usize) -> f64 {
        let p = self
            .groups
            .get(group)
            .filter(|g| g.n_informative > 0)
            .map(|g| 1.0 - g.tolerance_score)
            .unwrap_or(self.fallback_p);
        p.clamp(0.0, 1.0)
    }

    /// The constraint slack applied when matching against a group: `P_g`
    /// is an *estimate* of the group's operating point, so the Eq. 6 bound
    /// is widened by twice the group's observed spread (floored at 0.5 %).
    /// Without it, members whose own throttling probability lands a hair
    /// above the group mean — half of them, by definition of a mean — would
    /// be knife-edged one rung up.
    pub fn slack(&self, group: usize) -> f64 {
        let std = self
            .groups
            .get(group)
            .filter(|g| g.n_operating > 1)
            .map(|g| g.std_score)
            .unwrap_or(0.005);
        (2.0 * std).max(0.01)
    }

    /// Eqs. 4–6: the SKU whose throttling probability is closest to `P_g`,
    /// subject to `P ≤ P_g + slack`; ties resolve to the cheaper SKU. When
    /// *no* SKU satisfies the bound, the most performant (then cheapest)
    /// SKU is returned — the customer is steered to the best available even
    /// if the group would tolerate less. `None` only on an empty curve.
    pub fn select<'c>(
        &self,
        group: usize,
        curve: &'c PricePerformanceCurve,
    ) -> Option<&'c PricePerfPoint> {
        let p_g = self.preferred_p(group);
        select_with_slack(curve, p_g, self.slack(group))
    }
}

/// The Eq. 4–6 selection at an explicit `P_g` with a hard constraint
/// (zero slack) — used by the drift study and the heuristics comparison.
pub fn select_for_p(curve: &PricePerformanceCurve, p_g: f64) -> Option<&PricePerfPoint> {
    select_with_slack(curve, p_g, 0.0)
}

/// Eq. 4–6 selection with an explicit constraint slack: feasible points
/// satisfy `P(SKU) ≤ p_g + slack`; among them the point minimizing
/// `|P − p_g|` wins, ties to the cheaper point.
pub fn select_with_slack(
    curve: &PricePerformanceCurve,
    p_g: f64,
    slack: f64,
) -> Option<&PricePerfPoint> {
    const EPS: f64 = 1e-9;
    let mut best: Option<(&PricePerfPoint, f64)> = None;
    for point in curve.points() {
        let p = 1.0 - point.score;
        if p <= p_g + slack + EPS {
            let diff = (p - p_g).abs();
            // Strict improvement only: cost order makes earlier = cheaper
            // win ties.
            if best.is_none_or(|(_, d)| diff < d - EPS) {
                best = Some((point, diff));
            }
        }
    }
    if let Some((point, _)) = best {
        return Some(point);
    }
    // Constraint infeasible: fall back to the most performant point. The
    // comparator treats equal scores as `Greater` so `max_by` keeps the
    // first (cheapest) maximal point instead of its default last-wins.
    curve.points().iter().max_by(|a, b| {
        a.score.partial_cmp(&b.score).expect("finite scores").then(std::cmp::Ordering::Greater)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complex_curve() -> PricePerformanceCurve {
        PricePerformanceCurve::from_scored(vec![
            ("s1".into(), 100.0, 0.70),
            ("s2".into(), 200.0, 0.85),
            ("s3".into(), 300.0, 0.95),
            ("s4".into(), 400.0, 1.00),
        ])
    }

    fn flat_curve() -> PricePerformanceCurve {
        PricePerformanceCurve::from_scored(vec![
            ("s1".into(), 100.0, 1.0),
            ("s2".into(), 200.0, 1.0),
        ])
    }

    #[test]
    fn learn_computes_group_means() {
        let c = complex_curve();
        let model = GroupModel::learn(
            2,
            vec![(0usize, &c, "s2"), (0, &c, "s2"), (1, &c, "s4")].into_iter(),
        );
        assert!((model.preferred_p(0) - 0.15).abs() < 1e-9);
        assert!((model.preferred_p(1) - 0.0).abs() < 1e-9);
        assert_eq!(model.stats()[0].n_informative, 2);
        assert_eq!(model.stats()[0].std_score, 0.0);
    }

    #[test]
    fn flat_curves_do_not_contaminate_learning() {
        let complex = complex_curve();
        let flat = flat_curve();
        // Group 0 has one informative member at s2 (P = 0.15) and many flat
        // members parked at the cheapest SKU; P_g must stay 0.15.
        let model = GroupModel::learn(
            1,
            vec![(0usize, &complex, "s2"), (0, &flat, "s1"), (0, &flat, "s1"), (0, &flat, "s2")]
                .into_iter(),
        );
        assert!((model.preferred_p(0) - 0.15).abs() < 1e-9);
        assert_eq!(model.stats()[0].n_total, 4);
        assert_eq!(model.stats()[0].n_informative, 1);
    }

    #[test]
    fn select_picks_closest_below_p_g() {
        let c = complex_curve();
        let model = GroupModel::learn(1, vec![(0usize, &c, "s2")].into_iter());
        // P_g = 0.15: s2 (P=0.15) is exact; s3 (0.05) and s4 (0.0) are
        // farther below; s1 (0.30) violates the constraint.
        assert_eq!(model.select(0, &c).unwrap().sku_id, "s2");
    }

    #[test]
    fn select_respects_the_upper_bound_constraint() {
        // P_g = 0.12 sits between s2 (0.15) and s3 (0.05): s2 violates
        // Eq. 6, so s3 wins despite s2 being nearer in absolute distance.
        let c = complex_curve();
        let pick = select_for_p(&c, 0.12).unwrap();
        assert_eq!(pick.sku_id, "s3");
    }

    #[test]
    fn zero_tolerance_group_gets_full_score_sku() {
        let c = complex_curve();
        let pick = select_for_p(&c, 0.0).unwrap();
        assert_eq!(pick.sku_id, "s4");
    }

    #[test]
    fn flat_curve_ties_resolve_to_cheapest() {
        let c = flat_curve();
        let pick = select_for_p(&c, 0.15).unwrap();
        assert_eq!(pick.sku_id, "s1");
    }

    #[test]
    fn infeasible_constraint_falls_back_to_most_performant() {
        let c = PricePerformanceCurve::from_scored(vec![
            ("bad".into(), 100.0, 0.2),
            ("worse".into(), 200.0, 0.1),
        ]);
        // P_g = 0: nothing satisfies; the best (0.2) wins.
        assert_eq!(select_for_p(&c, 0.0).unwrap().sku_id, "bad");
    }

    #[test]
    fn empty_curve_selects_nothing() {
        let c = PricePerformanceCurve::from_scored(vec![]);
        assert!(select_for_p(&c, 0.5).is_none());
    }

    #[test]
    fn unobserved_group_uses_fallback() {
        let c = complex_curve();
        let model = GroupModel::learn(4, vec![(0usize, &c, "s2")].into_iter());
        // Group 3 never seen: falls back to the global mean (0.15).
        assert!((model.preferred_p(3) - 0.15).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_group_in_learning_is_ignored() {
        let c = complex_curve();
        let model = GroupModel::learn(1, vec![(5usize, &c, "s2")].into_iter());
        assert_eq!(model.stats()[0].n_total, 0);
    }
}
