//! The SQL Managed Instance flow (§3.2, "Determining file storage tier for
//! MI").
//!
//! MI General Purpose stores every database file on its own premium disk,
//! so the instance IOPS limit is not a SKU constant — it is the sum of the
//! per-file storage-tier limits (Table 2). Recommendation therefore runs in
//! two steps:
//!
//! * **Step 1** — pick storage tiers: each file gets the smallest disk that
//!   fits it at 100 %; tiers are then upgraded until the summed IOPS and
//!   throughput cover at least 95 % of the workload's needs. If even P60
//!   disks cannot, the search is restricted to Business Critical (whose
//!   local-SSD IO is a SKU constant).
//! * **Step 2** — build the instance-level price-performance curve with the
//!   storage-derived IOPS limit substituted into every GP SKU, and the
//!   premium-disk rent added to GP monthly costs.

use doppler_catalog::{
    BillingRates, Catalog, DeploymentType, FileLayout, ServiceTier, TierAssignment,
};
use doppler_stats::descriptive::max;
use doppler_telemetry::{PerfDimension, PerfHistory};

use crate::curve::PricePerformanceCurve;
use crate::throttling::throttling_probability;

/// The §3.2 Step-1 satisfaction fraction ("chosen based on file layout
/// analysis of current on-cloud Azure SQL MI resources").
pub const IOPS_SATISFACTION_FRACTION: f64 = 0.95;

/// Outcome of the two-step MI assessment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MiAssessment {
    /// Storage tier per data file after the demand-driven upgrade.
    pub storage: TierAssignment,
    /// Step 1 could not reach 95 % on GP premium disks: only BC SKUs are
    /// on the curve.
    pub restricted_to_bc: bool,
    /// The instance-level price-performance curve (Step 2).
    pub curve: PricePerformanceCurve,
    /// The effective GP IOPS limit (sum over files), for reporting.
    pub gp_iops_limit: f64,
}

/// Run the MI assessment. Returns `None` when a data file exceeds the
/// largest premium disk (no MI placement exists).
pub fn mi_curve(
    history: &PerfHistory,
    layout: &FileLayout,
    catalog: &Catalog,
    rates: &BillingRates,
) -> Option<MiAssessment> {
    // Step 1: storage tiers from size (100 %) and IO demand (95 %).
    let iops_demand = history.values(PerfDimension::Iops).and_then(max).unwrap_or(0.0);
    let throughput_demand = iops_demand / 128.0; // 8 KB pages
    let (storage, satisfied) = layout.assign_tiers_for_demand(
        iops_demand,
        throughput_demand,
        IOPS_SATISFACTION_FRACTION,
    )?;
    let restricted_to_bc = !satisfied;
    let gp_iops_limit = storage.total_iops();

    // Step 2: instance-level curve with layout-adjusted GP capacities.
    let total_data = layout.total_gib();
    let mut scored = Vec::new();
    for sku in catalog.for_deployment(DeploymentType::SqlMi) {
        if restricted_to_bc && sku.tier == ServiceTier::GeneralPurpose {
            continue;
        }
        if sku.caps.max_data_gb < total_data {
            continue; // the instance cannot hold the data at all
        }
        let mut caps = sku.caps;
        let monthly = match sku.tier {
            ServiceTier::GeneralPurpose => {
                caps.iops = gp_iops_limit;
                caps.throughput_mbps = storage.total_throughput_mibps();
                rates.monthly_with_storage(sku, &storage)
            }
            // BC uses local SSD: SKU-constant IO, no premium-disk rent.
            ServiceTier::BusinessCritical => sku.monthly_cost(),
        };
        let p = throttling_probability(history, &caps);
        scored.push((sku.id.to_string(), monthly, 1.0 - p));
    }
    Some(MiAssessment {
        storage,
        restricted_to_bc,
        curve: PricePerformanceCurve::from_scored(scored),
        gp_iops_limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, StorageTier};
    use doppler_telemetry::TimeSeries;

    fn catalog() -> Catalog {
        azure_paas_catalog(&CatalogSpec::default())
    }

    fn history(iops: Vec<f64>) -> PerfHistory {
        let n = iops.len();
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![2.0; n]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![10.0; n]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(iops))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; n]))
    }

    #[test]
    fn paper_example_three_small_files() {
        // Three files on 128 GB disks -> 3 x P10 -> 1500 IOPS limit.
        let layout = FileLayout::from_sizes(&[100.0, 100.0, 100.0]);
        let a = mi_curve(&history(vec![1000.0; 20]), &layout, &catalog(), &BillingRates::default())
            .unwrap();
        assert_eq!(a.storage.tiers, vec![StorageTier::P10; 3]);
        assert_eq!(a.gp_iops_limit, 1500.0);
        assert!(!a.restricted_to_bc);
    }

    #[test]
    fn io_demand_upgrades_storage_tiers() {
        let layout = FileLayout::from_sizes(&[100.0]);
        let a = mi_curve(&history(vec![4500.0; 20]), &layout, &catalog(), &BillingRates::default())
            .unwrap();
        // A single P10 (500 IOPS) cannot serve 4500: expect >= P30.
        assert!(a.storage.tiers[0] >= StorageTier::P30);
        assert!(a.gp_iops_limit >= 0.95 * 4500.0);
    }

    #[test]
    fn impossible_io_demand_restricts_to_bc() {
        let layout = FileLayout::from_sizes(&[100.0]);
        let a =
            mi_curve(&history(vec![60_000.0; 20]), &layout, &catalog(), &BillingRates::default())
                .unwrap();
        assert!(a.restricted_to_bc);
        assert!(a.curve.points().iter().all(|p| p.sku_id.contains("BC")));
    }

    #[test]
    fn oversized_file_yields_none() {
        let layout = FileLayout::from_sizes(&[9_000.0]);
        assert!(mi_curve(&history(vec![100.0; 5]), &layout, &catalog(), &BillingRates::default())
            .is_none());
    }

    #[test]
    fn gp_costs_include_premium_disk_rent() {
        let layout = FileLayout::from_sizes(&[100.0]);
        let cat = catalog();
        let rates = BillingRates::default();
        let a = mi_curve(&history(vec![200.0; 20]), &layout, &cat, &rates).unwrap();
        let gp4 = a.curve.point_for("MI_GP_4").expect("GP 4 on curve");
        let compute = cat.get(&"MI_GP_4".into()).unwrap().monthly_cost();
        assert!(
            (gp4.monthly_cost - (compute + StorageTier::P10.monthly_price())).abs() < 1e-6,
            "cost {}",
            gp4.monthly_cost
        );
    }

    #[test]
    fn bc_costs_exclude_premium_disk_rent() {
        let layout = FileLayout::from_sizes(&[100.0]);
        let cat = catalog();
        let a =
            mi_curve(&history(vec![200.0; 20]), &layout, &cat, &BillingRates::default()).unwrap();
        let bc4 = a.curve.point_for("MI_BC_4").expect("BC 4 on curve");
        let compute = cat.get(&"MI_BC_4".into()).unwrap().monthly_cost();
        assert!((bc4.monthly_cost - compute).abs() < 1e-6);
    }

    #[test]
    fn instances_too_small_for_the_data_are_excluded() {
        // 3 TB of data excludes SKUs whose max_data_gb is below it.
        let layout = FileLayout::from_sizes(&[1500.0, 1500.0]);
        let a = mi_curve(&history(vec![500.0; 10]), &layout, &catalog(), &BillingRates::default())
            .unwrap();
        let cat = catalog();
        for p in a.curve.points() {
            let sku = cat.get(&doppler_catalog::SkuId(p.sku_id.clone())).unwrap();
            assert!(sku.caps.max_data_gb >= 3000.0, "{} too small", p.sku_id);
        }
    }

    #[test]
    fn layout_limited_gp_throttles_where_bc_does_not() {
        // Demand 3000 IOPS against a single file upgraded to P30 (5000):
        // GP satisfies; but demand 6000 against P40 (7500) cap... use a
        // spiky series instead: baseline 1000 with spikes to 7000.
        let mut iops = vec![1000.0; 100];
        for i in (0..100).step_by(10) {
            iops[i] = 7_000.0;
        }
        let layout = FileLayout::from_sizes(&[100.0]);
        let a = mi_curve(&history(iops), &layout, &catalog(), &BillingRates::default()).unwrap();
        // Storage upgraded to satisfy >= 95% of the 7000 peak -> P40 (7500).
        assert!(a.gp_iops_limit >= 6650.0);
        // All GP SKUs share the same layout-derived IOPS cap.
        let gp_scores: Vec<f64> = a
            .curve
            .points()
            .iter()
            .filter(|p| p.sku_id.contains("GP"))
            .map(|p| p.raw_score)
            .collect();
        assert!(!gp_scores.is_empty());
    }
}
