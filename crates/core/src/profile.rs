//! The negotiability summarizers of §3.3.
//!
//! Each strategy collapses one perf dimension's time series into (a) a
//! continuous *weight* — higher means more negotiable — used as a
//! clustering feature, and (b) a boolean *bit* (1 = negotiable in the
//! paper's Table 3 notation is 0; we use `true` = negotiable and render at
//! the edges). Six strategies are compared in Table 4; production ships
//! the thresholding algorithm "for its transparent interpretation and high
//! performance".

use doppler_stats::{
    max_scaled_auc, minmax_scaled_auc, outlier_fraction, spike_dwell_fraction, stl_decompose,
    StlConfig,
};
use doppler_telemetry::{PerfDimension, PerfHistory};

/// A negotiability summarizer (§3.3, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NegotiabilityStrategy {
    /// The production thresholding algorithm: measure the fraction of the
    /// assessment spent within one standard deviation of the max; a
    /// dimension dwelling less than `rho` is negotiable.
    Thresholding {
        /// Dwell-fraction threshold ρ (tuned by sensitivity analysis;
        /// default 0.05).
        rho: f64,
    },
    /// Area under the ECDF of the min-max-scaled series; high AUC =
    /// transient spiky usage = negotiable.
    MinMaxScalerAuc {
        /// AUC above this is negotiable.
        cut: f64,
    },
    /// Same with max scaling only — "better identifies large spikes".
    MaxScalerAuc { cut: f64 },
    /// Fraction of samples ≥ 3σ from the mean; spiky usage shows outliers.
    OutlierPercentage {
        /// Outlier fraction above this is negotiable.
        cut: f64,
    },
    /// STL variance decomposition: score `max(0, 1 − var(I)/var(R))`; low
    /// explained variance = erratic spikes = negotiable.
    StlVarianceDecomposition {
        /// Samples per season (144 = daily at 10-minute sampling).
        period: usize,
        /// Explained variance below this is negotiable.
        cut: f64,
    },
    /// MinMax AUC features concatenated with thresholding features — the
    /// "adjusted with timeseries" row of Table 4. Bits follow thresholding.
    MinMaxAucWithThresholding { rho: f64, cut: f64 },
}

impl NegotiabilityStrategy {
    /// The production default. The paper tunes ρ by sensitivity analysis
    /// without stating the value; 0.08 keeps a per-dimension tolerance of
    /// 5 % (plus its sampling noise) safely classified as negotiable while
    /// saturated demand (dwell ≳ 30 %) stays non-negotiable. The ablation
    /// bench sweeps ρ across [0.005, 0.20].
    pub fn production() -> NegotiabilityStrategy {
        NegotiabilityStrategy::Thresholding { rho: 0.08 }
    }

    /// All six strategies at their evaluation settings, in Table 4 row
    /// order.
    pub fn table4_lineup() -> Vec<(&'static str, NegotiabilityStrategy)> {
        vec![
            ("MinMax Scaler AUC", NegotiabilityStrategy::MinMaxScalerAuc { cut: 0.75 }),
            ("Max Scaler AUC", NegotiabilityStrategy::MaxScalerAuc { cut: 0.70 }),
            ("Thresholding Algorithm", NegotiabilityStrategy::Thresholding { rho: 0.08 }),
            ("Outlier percentage", NegotiabilityStrategy::OutlierPercentage { cut: 0.004 }),
            (
                "STL Variance Decomposition",
                NegotiabilityStrategy::StlVarianceDecomposition { period: 144, cut: 0.55 },
            ),
            (
                "MinMax Scaler AUC adjusted with timeseries",
                NegotiabilityStrategy::MinMaxAucWithThresholding { rho: 0.08, cut: 0.75 },
            ),
        ]
    }

    /// Continuous negotiability weight(s) for one dimension's series.
    /// Every weight lies in `[0, 1]`, higher = more negotiable. Most
    /// strategies emit one weight; the combined strategy emits two.
    pub fn dimension_weights(&self, values: &[f64]) -> Vec<f64> {
        match *self {
            NegotiabilityStrategy::Thresholding { .. } => {
                vec![1.0 - spike_dwell_fraction(values)]
            }
            NegotiabilityStrategy::MinMaxScalerAuc { .. } => vec![minmax_scaled_auc(values)],
            NegotiabilityStrategy::MaxScalerAuc { .. } => vec![max_scaled_auc(values)],
            NegotiabilityStrategy::OutlierPercentage { .. } => {
                // Outlier fractions live near 0; stretch them so clustering
                // sees the contrast (3σ outliers cap out around a few %).
                vec![(outlier_fraction(values, 3.0) * 25.0).min(1.0)]
            }
            NegotiabilityStrategy::StlVarianceDecomposition { period, .. } => {
                let explained = stl_decompose(values, &StlConfig { period, ..Default::default() })
                    .map(|d| d.variance_explained())
                    // Short series: fall back to "unstructured".
                    .unwrap_or(0.0);
                vec![1.0 - explained]
            }
            NegotiabilityStrategy::MinMaxAucWithThresholding { .. } => {
                vec![minmax_scaled_auc(values), 1.0 - spike_dwell_fraction(values)]
            }
        }
    }

    /// Boolean negotiability of one dimension's series.
    pub fn dimension_bit(&self, values: &[f64]) -> bool {
        match *self {
            NegotiabilityStrategy::Thresholding { rho }
            | NegotiabilityStrategy::MinMaxAucWithThresholding { rho, .. } => {
                spike_dwell_fraction(values) < rho
            }
            NegotiabilityStrategy::MinMaxScalerAuc { cut } => minmax_scaled_auc(values) > cut,
            NegotiabilityStrategy::MaxScalerAuc { cut } => max_scaled_auc(values) > cut,
            NegotiabilityStrategy::OutlierPercentage { cut } => outlier_fraction(values, 3.0) > cut,
            NegotiabilityStrategy::StlVarianceDecomposition { period, cut } => {
                stl_decompose(values, &StlConfig { period, ..Default::default() })
                    .map(|d| d.variance_explained())
                    .unwrap_or(0.0)
                    < cut
            }
        }
    }

    /// Weight vector across the profiled dimensions (Eq. 2's
    /// `w_CPU, w_RAM, …`). Missing dimensions read as non-negotiable
    /// (weight 0) — absence of evidence is not permission to throttle.
    pub fn weights(&self, history: &PerfHistory, dims: &[PerfDimension]) -> Vec<f64> {
        let mut out = Vec::new();
        for &dim in dims {
            match history.values(dim) {
                Some(values) => out.extend(self.dimension_weights(values)),
                None => out.extend(std::iter::repeat_n(0.0, self.weights_per_dimension())),
            }
        }
        out
    }

    /// Bit vector across the profiled dimensions — the `<0,0,1,1>`-style
    /// output of §5.2.1.
    pub fn bits(&self, history: &PerfHistory, dims: &[PerfDimension]) -> Vec<bool> {
        dims.iter()
            .map(|&dim| history.values(dim).map(|v| self.dimension_bit(v)).unwrap_or(false))
            .collect()
    }

    /// Number of weights emitted per dimension (2 for the combined
    /// strategy, 1 otherwise).
    pub fn weights_per_dimension(&self) -> usize {
        match self {
            NegotiabilityStrategy::MinMaxAucWithThresholding { .. } => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_telemetry::TimeSeries;

    /// 2016 samples (14 days): rare short spikes to 10 over a floor of 1.
    fn spiky() -> Vec<f64> {
        let mut v = vec![1.0; 2016];
        for i in (0..2016).step_by(150) {
            v[i] = 10.0;
            v[i + 1] = 10.0;
        }
        v
    }

    /// Steady demand pressing against a saturation plateau.
    fn saturated() -> Vec<f64> {
        (0..2016)
            .map(|i| {
                let noise = ((i * 2_654_435_761_usize) % 1000) as f64 / 1000.0;
                (8.0 + noise).min(8.6)
            })
            .collect()
    }

    #[test]
    fn every_strategy_calls_spiky_negotiable() {
        for (name, s) in NegotiabilityStrategy::table4_lineup() {
            assert!(s.dimension_bit(&spiky()), "{name} missed the spiky series");
        }
    }

    #[test]
    fn thresholding_calls_saturated_non_negotiable() {
        assert!(!NegotiabilityStrategy::production().dimension_bit(&saturated()));
    }

    #[test]
    fn auc_strategies_separate_spiky_from_saturated() {
        for s in [
            NegotiabilityStrategy::MinMaxScalerAuc { cut: 0.75 },
            NegotiabilityStrategy::MaxScalerAuc { cut: 0.70 },
        ] {
            let w_spiky = s.dimension_weights(&spiky())[0];
            let w_sat = s.dimension_weights(&saturated())[0];
            assert!(w_spiky > w_sat, "{s:?}: {w_spiky} !> {w_sat}");
        }
    }

    #[test]
    fn outlier_strategy_sees_three_sigma_spikes() {
        let s = NegotiabilityStrategy::OutlierPercentage { cut: 0.004 };
        assert!(s.dimension_bit(&spiky()));
        assert!(!s.dimension_bit(&saturated()));
    }

    #[test]
    fn stl_strategy_calls_diurnal_structure_non_negotiable() {
        // A clean daily cycle is fully explained by seasonality: the
        // customer really does need that capacity every day.
        let diurnal: Vec<f64> = (0..2016)
            .map(|i| 5.0 + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / 144.0).sin())
            .collect();
        let s = NegotiabilityStrategy::StlVarianceDecomposition { period: 144, cut: 0.55 };
        assert!(!s.dimension_bit(&diurnal));
        assert!(s.dimension_bit(&spiky()));
    }

    #[test]
    fn weights_are_unit_interval() {
        for (_, s) in NegotiabilityStrategy::table4_lineup() {
            for series in [spiky(), saturated()] {
                for w in s.dimension_weights(&series) {
                    assert!((0.0..=1.0).contains(&w), "{s:?} weight {w}");
                }
            }
        }
    }

    #[test]
    fn combined_strategy_emits_two_weights_per_dimension() {
        let s = NegotiabilityStrategy::MinMaxAucWithThresholding { rho: 0.05, cut: 0.75 };
        assert_eq!(s.weights_per_dimension(), 2);
        assert_eq!(s.dimension_weights(&spiky()).len(), 2);
    }

    #[test]
    fn history_level_bits_follow_dimension_order() {
        let h = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(spiky()))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(saturated()));
        let bits = NegotiabilityStrategy::production()
            .bits(&h, &[PerfDimension::Cpu, PerfDimension::Memory]);
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn missing_dimension_reads_non_negotiable() {
        let h = PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(spiky()));
        let s = NegotiabilityStrategy::production();
        let bits = s.bits(&h, &[PerfDimension::Cpu, PerfDimension::Iops]);
        assert_eq!(bits, vec![true, false]);
        let w = s.weights(&h, &[PerfDimension::Cpu, PerfDimension::Iops]);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn empty_series_is_non_negotiable_under_production() {
        assert!(!NegotiabilityStrategy::production().dimension_bit(&[]));
    }
}
