//! The [`EngineRegistry`]: one trained [`DopplerEngine`] per
//! `(catalog key, engine template, training set)`, shared fleet-wide.
//!
//! Doppler served hundreds of thousands of recommendations (§4, Table 1)
//! from a handful of trained models — training happens once per offer
//! catalog and training cohort, not once per request or per fleet run. The
//! registry is that memoization layer:
//!
//! * engines are keyed by the [`CatalogKey`] they serve, the
//!   [`EngineTemplate`] they were configured from, and the
//!   [`TrainingSet`]'s content fingerprint, so any input change —
//!   a revised catalog version, different billing rates, a new grouping
//!   strategy, one more training record — yields a distinct engine, while
//!   identical inputs always share one `Arc<DopplerEngine>`;
//! * lookups go through a **sharded `RwLock` map**: warm resolutions take
//!   one read lock on one shard, so a 16-worker fleet hammering
//!   [`get_or_train`](EngineRegistry::get_or_train) on a warm key never
//!   serializes;
//! * training is **single-flight**: concurrent requesters of the same cold
//!   key block on the one in-progress training run instead of duplicating
//!   it — N workers racing a cold key cost exactly one training;
//! * [`stats`](EngineRegistry::stats) exposes hit / miss / coalesced
//!   counters, so "a mixed-region fleet run over K keys performs exactly K
//!   trainings" is directly assertable.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use doppler_catalog::{CatalogKey, DeploymentType, InMemoryCatalogProvider};
//! use doppler_core::{EngineRegistry, EngineTemplate, TrainingSet};
//!
//! let registry = EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()));
//! let key = CatalogKey::production(DeploymentType::SqlDb);
//!
//! let a = registry
//!     .get_or_train(&key, &EngineTemplate::production(), &TrainingSet::empty())
//!     .unwrap();
//! let b = registry
//!     .get_or_train(&key, &EngineTemplate::production(), &TrainingSet::empty())
//!     .unwrap();
//! assert!(Arc::ptr_eq(&a, &b), "second resolution is a cache hit");
//! let stats = registry.stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use doppler_catalog::{CatalogKey, CatalogProvider, Fingerprint};

use crate::engine::{DopplerEngine, EngineConfig, TrainingRecord};
use crate::grouping::GroupingStrategy;
use crate::profile::NegotiabilityStrategy;

/// The deployment- and rates-free part of an [`EngineConfig`]: how the
/// Customer Profiler summarizes and groups. The deployment comes from the
/// [`CatalogKey`] and the billing rates from the resolved catalog, so one
/// template serves every region and version.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineTemplate {
    pub negotiability: NegotiabilityStrategy,
    pub grouping: GroupingStrategy,
}

impl EngineTemplate {
    /// The production configuration (§5.2.1): thresholding +
    /// straightforward enumeration.
    pub fn production() -> EngineTemplate {
        EngineTemplate {
            negotiability: NegotiabilityStrategy::production(),
            grouping: GroupingStrategy::Enumeration,
        }
    }

    /// Complete the template into a concrete [`EngineConfig`] for a key's
    /// deployment and a resolved catalog's rates.
    pub fn config_for(
        &self,
        deployment: doppler_catalog::DeploymentType,
        rates: doppler_catalog::BillingRates,
    ) -> EngineConfig {
        EngineConfig {
            deployment,
            negotiability: self.negotiability,
            grouping: self.grouping,
            rates,
        }
    }

    /// Content fingerprint: a variant tag plus every parameter, by bit
    /// pattern. Allocation-free — this runs on every warm engine
    /// resolution, once per fleet request.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        match self.negotiability {
            NegotiabilityStrategy::Thresholding { rho } => {
                fp.write_u8(0);
                fp.write_f64(rho);
            }
            NegotiabilityStrategy::MinMaxScalerAuc { cut } => {
                fp.write_u8(1);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::MaxScalerAuc { cut } => {
                fp.write_u8(2);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::OutlierPercentage { cut } => {
                fp.write_u8(3);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::StlVarianceDecomposition { period, cut } => {
                fp.write_u8(4);
                fp.write_usize(period);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::MinMaxAucWithThresholding { rho, cut } => {
                fp.write_u8(5);
                fp.write_f64(rho);
                fp.write_f64(cut);
            }
        }
        match self.grouping {
            GroupingStrategy::Enumeration => fp.write_u8(0),
            GroupingStrategy::KMeans { k, seed } => {
                fp.write_u8(1);
                fp.write_usize(k);
                fp.write_u64(seed);
            }
            GroupingStrategy::Hierarchical { k, linkage } => {
                fp.write_u8(2);
                fp.write_usize(k);
                fp.write_u8(linkage as u8);
            }
        }
        fp.finish()
    }
}

impl Default for EngineTemplate {
    fn default() -> EngineTemplate {
        EngineTemplate::production()
    }
}

/// An immutable, `Arc`-shared training cohort with its content fingerprint
/// computed **once** at construction — the warm resolution path compares
/// one `u64` instead of rehashing weeks of telemetry per request.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    records: Arc<[TrainingRecord]>,
    fingerprint: u64,
}

impl TrainingSet {
    /// Fingerprint and freeze a training cohort.
    pub fn new(records: Vec<TrainingRecord>) -> TrainingSet {
        let mut fp = Fingerprint::new();
        fp.write_usize(records.len());
        for record in &records {
            for (dim, series) in record.history.iter() {
                fp.write_str(&format!("{dim:?}"));
                fp.write_u32(series.interval_minutes());
                fp.write_usize(series.len());
                for &v in series.values() {
                    fp.write_f64(v);
                }
            }
            fp.write_str(&record.chosen_sku.0);
            match &record.file_layout {
                None => fp.write_u8(0),
                Some(layout) => {
                    fp.write_u8(1);
                    fp.write_usize(layout.files.len());
                    for file in &layout.files {
                        fp.write_f64(file.size_gib);
                    }
                }
            }
        }
        TrainingSet { records: records.into(), fingerprint: fp.finish() }
    }

    /// The empty cohort: engines resolve untrained (zero-tolerance
    /// fallback), which is what a fresh deployment starts from.
    pub fn empty() -> TrainingSet {
        TrainingSet::new(Vec::new())
    }

    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Default for TrainingSet {
    fn default() -> TrainingSet {
        TrainingSet::empty()
    }
}

/// Why an engine could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The provider has no catalog for this key (unknown region, retired
    /// version, deployment not offered).
    UnknownCatalog(CatalogKey),
    /// The training run for this key panicked; the slot was evicted, so a
    /// retry will train afresh.
    TrainingFailed(CatalogKey),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCatalog(key) => {
                write!(f, "no catalog registered for {key}")
            }
            RegistryError::TrainingFailed(key) => {
                write!(f, "engine training for {key} panicked")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Point-in-time registry counters. `hits + coalesced + misses +
/// failures` = completed [`get_or_train`](EngineRegistry::get_or_train)
/// calls; `misses` equals the number of training runs performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Resolutions served by an already-trained engine.
    pub hits: u64,
    /// Resolutions that blocked on another requester's in-flight training
    /// (single-flight: they cost a wait, not a duplicate training).
    pub coalesced: u64,
    /// Resolutions that performed the training run themselves.
    pub misses: u64,
    /// Resolutions that failed (unknown catalog, or a training panic
    /// observed either first-hand or while coalesced).
    pub failures: u64,
    /// Trained engines currently held.
    pub entries: usize,
}

/// The full identity of a cached engine. The map key carries the
/// [`CatalogKey`] structurally (no hash collisions across keys) plus the
/// combined content fingerprint of the resolved catalog, the template, and
/// the training set.
#[derive(Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    catalog: CatalogKey,
    fingerprint: u64,
}

/// One cache slot, shared between the trainer and any coalesced waiters.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// The first requester is training; waiters block on the condvar.
    Training,
    Ready(Arc<DopplerEngine>),
    /// The training run panicked. Terminal for this slot — the trainer
    /// evicts it from the map, so later requesters allocate a fresh one.
    Failed,
}

impl Slot {
    fn training() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Training), ready: Condvar::new() })
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        // The trainer publishes Ready/Failed before any panic can unwind
        // through this mutex; tolerate poison rather than cascading.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publish(&self, state: SlotState) {
        *self.lock() = state;
        self.ready.notify_all();
    }

    /// Block until the slot leaves `Training`; `None` means the training
    /// run failed.
    fn wait(&self) -> Option<Arc<DopplerEngine>> {
        let mut state = self.lock();
        loop {
            match &*state {
                SlotState::Ready(engine) => return Some(Arc::clone(engine)),
                SlotState::Failed => return None,
                SlotState::Training => {
                    state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Non-blocking read of a ready engine.
    fn get_ready(&self) -> Option<Arc<DopplerEngine>> {
        match &*self.lock() {
            SlotState::Ready(engine) => Some(Arc::clone(engine)),
            _ => None,
        }
    }
}

type Shard = RwLock<HashMap<EngineKey, Arc<Slot>>>;

/// The fleet-wide trained-engine cache. See the [module docs](self) for
/// the design; construct with [`new`](EngineRegistry::new) (16 shards) or
/// [`with_shards`](EngineRegistry::with_shards), and share via `Arc` —
/// every method takes `&self`.
pub struct EngineRegistry {
    provider: Arc<dyn CatalogProvider>,
    shards: Box<[Shard]>,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    failures: AtomicU64,
}

impl EngineRegistry {
    const DEFAULT_SHARDS: usize = 16;

    /// A registry over a provider, with the default shard count.
    pub fn new(provider: Arc<dyn CatalogProvider>) -> EngineRegistry {
        EngineRegistry::with_shards(provider, Self::DEFAULT_SHARDS)
    }

    /// A registry with an explicit shard count (clamped to ≥ 1). More
    /// shards = less write contention on cold bursts; warm reads already
    /// share read locks.
    pub fn with_shards(provider: Arc<dyn CatalogProvider>, shards: usize) -> EngineRegistry {
        let shards = shards.max(1);
        EngineRegistry {
            provider,
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The catalog provider resolutions go through.
    pub fn provider(&self) -> &Arc<dyn CatalogProvider> {
        &self.provider
    }

    /// Resolve the engine for `(key, template, training)`, training it
    /// exactly once across all concurrent callers if it is not cached.
    ///
    /// Warm path: one provider lookup, one shard read lock, one map get,
    /// one `Arc` bump. Cold path: the calling thread trains (outside any
    /// lock) while concurrent requesters for the same key block on the
    /// slot; requesters for *other* keys proceed unhindered.
    pub fn get_or_train(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Result<Arc<DopplerEngine>, RegistryError> {
        let (engine_key, resolved) = self.engine_key(key, template, training).ok_or_else(|| {
            self.failures.fetch_add(1, Ordering::Relaxed);
            RegistryError::UnknownCatalog(key.clone())
        })?;
        let shard = &self.shards[self.shard_of(&engine_key)];

        // Fast path: shared read lock on the shard.
        let existing =
            shard.read().unwrap_or_else(PoisonError::into_inner).get(&engine_key).cloned();
        if let Some(slot) = existing {
            return self.resolve_slot(key, &slot);
        }

        // Slow path: take the write lock just long enough to insert-or-get
        // the slot; training itself happens with no lock held.
        let (slot, trainer) = {
            let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
            match map.get(&engine_key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Slot::training();
                    map.insert(engine_key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !trainer {
            return self.resolve_slot(key, &slot);
        }

        let config = template.config_for(key.deployment, resolved.rates);
        let catalog = (*resolved.catalog).clone();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            DopplerEngine::train(catalog, config, training.records())
        }));
        match outcome {
            Ok(engine) => {
                let engine = Arc::new(engine);
                slot.publish(SlotState::Ready(Arc::clone(&engine)));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(engine)
            }
            Err(payload) => {
                // Evict before notifying so no requester can coalesce onto
                // a slot that will never become Ready.
                shard.write().unwrap_or_else(PoisonError::into_inner).remove(&engine_key);
                slot.publish(SlotState::Failed);
                self.failures.fetch_add(1, Ordering::Relaxed);
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// The engine for `(key, template, training)` if it is already trained
    /// — never blocks, never trains, and counts neither hit nor miss.
    pub fn get_if_ready(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Option<Arc<DopplerEngine>> {
        let (engine_key, _) = self.engine_key(key, template, training)?;
        let shard = &self.shards[self.shard_of(&engine_key)];
        let slot =
            shard.read().unwrap_or_else(PoisonError::into_inner).get(&engine_key).cloned()?;
        slot.get_ready()
    }

    /// Derive the cache identity of `(key, template, training)`: resolve
    /// the provider and combine the catalog, template, and training
    /// fingerprints. `None` when the provider has no catalog for the key.
    /// The single implementation behind
    /// [`get_or_train`](EngineRegistry::get_or_train) and
    /// [`get_if_ready`](EngineRegistry::get_if_ready), so the two can
    /// never disagree about what identifies an engine.
    fn engine_key(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Option<(EngineKey, doppler_catalog::ResolvedCatalog)> {
        let resolved = self.provider.resolve(key)?;
        let mut fp = Fingerprint::new();
        fp.write_u64(resolved.fingerprint);
        fp.write_u64(template.fingerprint());
        fp.write_u64(training.fingerprint());
        Some((EngineKey { catalog: key.clone(), fingerprint: fp.finish() }, resolved))
    }

    /// Point-in-time counters and cache size.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Trained engines currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached engine (counters are preserved). Fleet operators
    /// call this on catalog-feed rollover; in-flight `Arc`s stay valid.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    fn shard_of(&self, key: &EngineKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Resolve through an existing slot, classifying the counter outcome:
    /// a slot that is already `Ready` is a hit; one still `Training` is a
    /// coalesced wait; a `Failed` slot (only observable in the narrow
    /// window before the trainer evicts it) reports failure.
    fn resolve_slot(
        &self,
        key: &CatalogKey,
        slot: &Slot,
    ) -> Result<Arc<DopplerEngine>, RegistryError> {
        if let Some(engine) = slot.get_ready() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(engine);
        }
        match slot.wait() {
            Some(engine) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(engine)
            }
            None => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(RegistryError::TrainingFailed(key.clone()))
            }
        }
    }
}

impl fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{
        azure_paas_catalog, CatalogSpec, CatalogVersion, DeploymentType, InMemoryCatalogProvider,
        Region, SkuId,
    };
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn registry() -> EngineRegistry {
        EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()))
    }

    fn db_key() -> CatalogKey {
        CatalogKey::production(DeploymentType::SqlDb)
    }

    fn record(cpu: f64, n: usize) -> TrainingRecord {
        TrainingRecord {
            history: PerfHistory::new()
                .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; n]))
                .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.5; n])),
            chosen_sku: SkuId("DB_GP_2".into()),
            file_layout: None,
        }
    }

    #[test]
    fn hit_returns_the_same_engine_allocation() {
        let registry = registry();
        let a = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let b = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn counters_are_exact_over_a_sequential_workload() {
        let registry = registry();
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        let trained = TrainingSet::new(vec![record(0.5, 64)]);
        // 3 distinct keys: (db, empty), (db, trained), (mi, empty).
        let mi_key = CatalogKey::production(DeploymentType::SqlMi);
        for _ in 0..5 {
            registry.get_or_train(&db_key(), &template, &empty).unwrap();
            registry.get_or_train(&db_key(), &template, &trained).unwrap();
            registry.get_or_train(&mi_key, &template, &empty).unwrap();
        }
        let stats = registry.stats();
        assert_eq!(stats.misses, 3, "one training per distinct key");
        assert_eq!(stats.hits + stats.coalesced, 12);
        assert_eq!(stats.coalesced, 0, "sequential callers never coalesce");
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn distinct_templates_and_training_sets_get_distinct_engines() {
        let registry = registry();
        let a = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let kmeans = EngineTemplate {
            grouping: GroupingStrategy::KMeans { k: 4, seed: 7 },
            ..EngineTemplate::production()
        };
        let b = registry.get_or_train(&db_key(), &kmeans, &TrainingSet::empty()).unwrap();
        let c = registry
            .get_or_train(
                &db_key(),
                &EngineTemplate::production(),
                &TrainingSet::new(vec![record(0.5, 64)]),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.stats().misses, 3);
    }

    #[test]
    fn unknown_catalog_is_an_error_and_counts_as_failure() {
        let registry = registry();
        let missing = db_key().in_region(Region::new("atlantis"));
        let err = registry
            .get_or_train(&missing, &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap_err();
        assert_eq!(err, RegistryError::UnknownCatalog(missing.clone()));
        assert!(err.to_string().contains("atlantis"));
        assert_eq!(registry.stats().failures, 1);
        assert_eq!(registry.len(), 0);
    }

    #[test]
    fn single_flight_trains_once_under_concurrency() {
        let registry = Arc::new(registry());
        let template = EngineTemplate::production();
        // A non-trivial training set so the cold window is wide enough for
        // real overlap.
        let training = TrainingSet::new((0..12).map(|i| record(0.3 + i as f64, 288)).collect());
        const THREADS: usize = 8;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let engines: Vec<Arc<DopplerEngine>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    let barrier = Arc::clone(&barrier);
                    let training = training.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        registry.get_or_train(&db_key(), &template, &training).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for engine in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], engine), "all callers share one engine");
        }
        let stats = registry.stats();
        assert_eq!(stats.misses, 1, "exactly one training run across {THREADS} threads");
        assert_eq!(stats.hits + stats.coalesced, (THREADS - 1) as u64);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn registry_engine_matches_direct_training_bit_for_bit() {
        let registry = registry();
        let training = TrainingSet::new(vec![record(0.6, 96), record(4.0, 96)]);
        let shared =
            registry.get_or_train(&db_key(), &EngineTemplate::production(), &training).unwrap();
        let direct = DopplerEngine::train(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
            training.records(),
        );
        let history = record(0.7, 128).history;
        let a = shared.recommend(&history, None);
        let b = direct.recommend(&history, None);
        assert_eq!(a, b);
    }

    #[test]
    fn get_if_ready_never_trains() {
        let registry = registry();
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        assert!(registry.get_if_ready(&db_key(), &template, &empty).is_none());
        assert_eq!(registry.stats().misses, 0);
        let trained = registry.get_or_train(&db_key(), &template, &empty).unwrap();
        let peeked = registry.get_if_ready(&db_key(), &template, &empty).unwrap();
        assert!(Arc::ptr_eq(&trained, &peeked));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "peeks count nothing");
    }

    #[test]
    fn clear_evicts_but_keeps_live_arcs_valid() {
        let registry = registry();
        let engine = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        registry.clear();
        assert!(registry.is_empty());
        // The evicted engine still serves.
        assert!(engine.recommend(&record(0.4, 32).history, None).sku_id.is_some());
        // Next resolution retrains.
        registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        assert_eq!(registry.stats().misses, 2);
    }

    #[test]
    fn catalog_versions_partition_the_cache() {
        let provider = InMemoryCatalogProvider::production().with_region(
            Region::global(),
            CatalogVersion(2),
            &CatalogSpec { rates: CatalogSpec::default().rates.scaled(1.05), ..Default::default() },
            1.0,
        );
        let registry = EngineRegistry::new(Arc::new(provider));
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        let v1 = registry.get_or_train(&db_key(), &template, &empty).unwrap();
        let v2 = registry
            .get_or_train(&db_key().at_version(CatalogVersion(2)), &template, &empty)
            .unwrap();
        assert!(!Arc::ptr_eq(&v1, &v2));
        // The v2 engine prices 5 % higher.
        let rec1 = v1.recommend(&record(0.4, 32).history, None);
        let rec2 = v2.recommend(&record(0.4, 32).history, None);
        assert_eq!(rec1.sku_id, rec2.sku_id);
        assert!(rec2.monthly_cost.unwrap() > rec1.monthly_cost.unwrap());
    }

    #[test]
    fn training_set_fingerprints_distinguish_contents() {
        let a = TrainingSet::new(vec![record(0.5, 64)]);
        let b = TrainingSet::new(vec![record(0.5, 64)]);
        let c = TrainingSet::new(vec![record(0.6, 64)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), TrainingSet::empty().fingerprint());
        assert!(TrainingSet::empty().is_empty());
        assert_eq!(a.len(), 1);
    }
}
