//! The [`EngineRegistry`]: one trained
//! [`RecommendationBackend`] per
//! `(catalog key, backend, engine template, training set)`, shared fleet-wide.
//!
//! Doppler served hundreds of thousands of recommendations (§4, Table 1)
//! from a handful of trained models — training happens once per offer
//! catalog and training cohort, not once per request or per fleet run. The
//! registry is that memoization layer:
//!
//! * engines are keyed by the [`CatalogKey`] they serve, the
//!   [`BackendSpec`] that trained them, the
//!   [`EngineTemplate`] they were configured from, and the
//!   [`TrainingSet`]'s content fingerprint, so any input change —
//!   a revised catalog version, different billing rates, a new grouping
//!   strategy, a different backend kind, one more training record — yields
//!   a distinct engine, while identical inputs always share one
//!   `Arc<dyn RecommendationBackend>`;
//! * lookups go through a **sharded `RwLock` map**: warm resolutions take
//!   one read lock on one shard, so a 16-worker fleet hammering
//!   [`get_or_train`](EngineRegistry::get_or_train) on a warm key never
//!   serializes;
//! * training is **single-flight**: concurrent requesters of the same cold
//!   key block on the one in-progress training run instead of duplicating
//!   it — N workers racing a cold key cost exactly one training;
//! * [`stats`](EngineRegistry::stats) exposes hit / miss / coalesced
//!   counters, so "a mixed-region fleet run over K keys performs exactly K
//!   trainings" is directly assertable;
//! * the cache has a **lifecycle**: an optional LRU
//!   [capacity](EngineRegistry::with_capacity) bounds how many trained
//!   engines are held (least-recently-resolved engines are evicted as new
//!   trainings land), and
//!   [`retire_version`](EngineRegistry::retire_version) /
//!   [`retire_older_than`](EngineRegistry::retire_older_than) tombstone
//!   keys a catalog roll has superseded — resolving a retired key returns
//!   [`RegistryError::Retired`] instead of silently retraining a stale
//!   catalog, and eviction / retirement counters sit beside the hit/miss
//!   stats.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use doppler_catalog::{CatalogKey, DeploymentType, InMemoryCatalogProvider};
//! use doppler_core::{EngineRegistry, EngineTemplate, TrainingSet};
//!
//! let registry = EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()));
//! let key = CatalogKey::production(DeploymentType::SqlDb);
//!
//! let a = registry
//!     .get_or_train(&key, &EngineTemplate::production(), &TrainingSet::empty())
//!     .unwrap();
//! let b = registry
//!     .get_or_train(&key, &EngineTemplate::production(), &TrainingSet::empty())
//!     .unwrap();
//! assert!(Arc::ptr_eq(&a, &b), "second resolution is a cache hit");
//! let stats = registry.stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

use doppler_catalog::{CatalogKey, CatalogProvider, Fingerprint};
use doppler_obs::{Counter, Histogram, ObsRegistry};

use crate::backend::{BackendSpec, RecommendationBackend};
use crate::engine::{EngineConfig, TrainingRecord};
use crate::grouping::GroupingStrategy;
use crate::profile::NegotiabilityStrategy;

/// The deployment- and rates-free part of an [`EngineConfig`]: how the
/// Customer Profiler summarizes and groups. The deployment comes from the
/// [`CatalogKey`] and the billing rates from the resolved catalog, so one
/// template serves every region and version.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineTemplate {
    pub negotiability: NegotiabilityStrategy,
    pub grouping: GroupingStrategy,
}

impl EngineTemplate {
    /// The production configuration (§5.2.1): thresholding +
    /// straightforward enumeration.
    pub fn production() -> EngineTemplate {
        EngineTemplate {
            negotiability: NegotiabilityStrategy::production(),
            grouping: GroupingStrategy::Enumeration,
        }
    }

    /// Complete the template into a concrete [`EngineConfig`] for a key's
    /// deployment and a resolved catalog's rates.
    pub fn config_for(
        &self,
        deployment: doppler_catalog::DeploymentType,
        rates: doppler_catalog::BillingRates,
    ) -> EngineConfig {
        EngineConfig {
            deployment,
            negotiability: self.negotiability,
            grouping: self.grouping,
            rates,
        }
    }

    /// Content fingerprint: a variant tag plus every parameter, by bit
    /// pattern. Allocation-free — this runs on every warm engine
    /// resolution, once per fleet request.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        match self.negotiability {
            NegotiabilityStrategy::Thresholding { rho } => {
                fp.write_u8(0);
                fp.write_f64(rho);
            }
            NegotiabilityStrategy::MinMaxScalerAuc { cut } => {
                fp.write_u8(1);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::MaxScalerAuc { cut } => {
                fp.write_u8(2);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::OutlierPercentage { cut } => {
                fp.write_u8(3);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::StlVarianceDecomposition { period, cut } => {
                fp.write_u8(4);
                fp.write_usize(period);
                fp.write_f64(cut);
            }
            NegotiabilityStrategy::MinMaxAucWithThresholding { rho, cut } => {
                fp.write_u8(5);
                fp.write_f64(rho);
                fp.write_f64(cut);
            }
        }
        match self.grouping {
            GroupingStrategy::Enumeration => fp.write_u8(0),
            GroupingStrategy::KMeans { k, seed } => {
                fp.write_u8(1);
                fp.write_usize(k);
                fp.write_u64(seed);
            }
            GroupingStrategy::Hierarchical { k, linkage } => {
                fp.write_u8(2);
                fp.write_usize(k);
                fp.write_u8(linkage as u8);
            }
        }
        fp.finish()
    }
}

impl Default for EngineTemplate {
    fn default() -> EngineTemplate {
        EngineTemplate::production()
    }
}

/// An immutable, `Arc`-shared training cohort with its content fingerprint
/// computed **once** at construction — the warm resolution path compares
/// one `u64` instead of rehashing weeks of telemetry per request.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    records: Arc<[TrainingRecord]>,
    fingerprint: u64,
}

impl TrainingSet {
    /// Fingerprint and freeze a training cohort.
    pub fn new(records: Vec<TrainingRecord>) -> TrainingSet {
        let mut fp = Fingerprint::new();
        fp.write_usize(records.len());
        for record in &records {
            for (dim, series) in record.history.iter() {
                fp.write_str(&format!("{dim:?}"));
                fp.write_u32(series.interval_minutes());
                fp.write_usize(series.len());
                for &v in series.values() {
                    fp.write_f64(v);
                }
            }
            fp.write_str(&record.chosen_sku.0);
            match &record.file_layout {
                None => fp.write_u8(0),
                Some(layout) => {
                    fp.write_u8(1);
                    fp.write_usize(layout.files.len());
                    for file in &layout.files {
                        fp.write_f64(file.size_gib);
                    }
                }
            }
        }
        TrainingSet { records: records.into(), fingerprint: fp.finish() }
    }

    /// The empty cohort: engines resolve untrained (zero-tolerance
    /// fallback), which is what a fresh deployment starts from.
    pub fn empty() -> TrainingSet {
        TrainingSet::new(Vec::new())
    }

    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Default for TrainingSet {
    fn default() -> TrainingSet {
        TrainingSet::empty()
    }
}

/// Why an engine could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The provider has no catalog for this key (unknown region,
    /// deployment not offered).
    UnknownCatalog(CatalogKey),
    /// The training run for this key panicked; the slot was evicted, so a
    /// retry will train afresh.
    TrainingFailed(CatalogKey),
    /// The key was retired ([`EngineRegistry::retire_version`] /
    /// [`retire_older_than`](EngineRegistry::retire_older_than)) — a
    /// catalog roll superseded it, so the registry refuses to train or
    /// serve it rather than silently recommending against a stale catalog.
    Retired(CatalogKey),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCatalog(key) => {
                write!(f, "no catalog registered for {key}")
            }
            RegistryError::TrainingFailed(key) => {
                write!(f, "engine training for {key} panicked")
            }
            RegistryError::Retired(key) => {
                write!(f, "catalog {key} is retired; resolve its successor version")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Point-in-time registry counters. `hits + coalesced + misses +
/// failures` = completed [`get_or_train`](EngineRegistry::get_or_train)
/// calls; `misses` equals the number of training runs performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Resolutions served by an already-trained engine.
    pub hits: u64,
    /// Resolutions that blocked on another requester's in-flight training
    /// (single-flight: they cost a wait, not a duplicate training).
    pub coalesced: u64,
    /// Resolutions that performed the training run themselves.
    pub misses: u64,
    /// Resolutions that failed (unknown catalog, a retired key, or a
    /// training panic observed either first-hand or while coalesced).
    pub failures: u64,
    /// Engines dropped to stay within the LRU capacity, plus wholesale
    /// [`clear`](EngineRegistry::clear)s.
    pub evictions: u64,
    /// Engines dropped because their catalog key was retired.
    pub retirements: u64,
    /// Trained engines currently held.
    pub entries: usize,
}

/// The full identity of a cached engine. The map key carries the
/// [`CatalogKey`] structurally (no hash collisions across keys) plus the
/// combined content fingerprint of the resolved catalog, the backend spec,
/// the template, and the training set.
#[derive(Clone, PartialEq, Eq, Hash)]
struct EngineKey {
    catalog: CatalogKey,
    fingerprint: u64,
}

/// One cache slot, shared between the trainer and any coalesced waiters.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// The first requester is training; waiters block on the condvar.
    Training,
    Ready(Arc<dyn RecommendationBackend>),
    /// The training run panicked. Terminal for this slot — the trainer
    /// evicts it from the map, so later requesters allocate a fresh one.
    Failed,
}

impl Slot {
    fn training() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Training), ready: Condvar::new() })
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        // The trainer publishes Ready/Failed before any panic can unwind
        // through this mutex; tolerate poison rather than cascading.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn publish(&self, state: SlotState) {
        *self.lock() = state;
        self.ready.notify_all();
    }

    /// Block until the slot leaves `Training`; `None` means the training
    /// run failed.
    fn wait(&self) -> Option<Arc<dyn RecommendationBackend>> {
        let mut state = self.lock();
        loop {
            match &*state {
                SlotState::Ready(engine) => return Some(Arc::clone(engine)),
                SlotState::Failed => return None,
                SlotState::Training => {
                    state = self.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Non-blocking read of a ready engine.
    fn get_ready(&self) -> Option<Arc<dyn RecommendationBackend>> {
        match &*self.lock() {
            SlotState::Ready(engine) => Some(Arc::clone(engine)),
            _ => None,
        }
    }
}

type Shard = RwLock<HashMap<EngineKey, Arc<Slot>>>;

/// LRU bookkeeping: a logical clock plus the last-resolved tick of every
/// *ready* engine (in-flight trainings are not tracked — they become
/// evictable only once published). Touched only when a capacity is set, so
/// unbounded registries pay nothing for it on the warm path.
struct LruState {
    tick: u64,
    last_used: HashMap<EngineKey, u64>,
}

/// Retirement tombstones: exact retired keys plus a monotone version
/// floor. Read (briefly) on every resolution; written only on catalog
/// rolls.
#[derive(Default)]
struct Lifecycle {
    retired: HashSet<CatalogKey>,
    /// Keys with `version <` this floor are retired wholesale.
    min_version: Option<doppler_catalog::CatalogVersion>,
}

impl Lifecycle {
    fn is_retired(&self, key: &CatalogKey) -> bool {
        self.min_version.is_some_and(|floor| key.version < floor) || self.retired.contains(key)
    }
}

/// The fleet-wide trained-engine cache. See the [module docs](self) for
/// the design; construct with [`new`](EngineRegistry::new) (16 shards) or
/// [`with_shards`](EngineRegistry::with_shards), and share via `Arc` —
/// every method takes `&self`.
pub struct EngineRegistry {
    provider: Arc<dyn CatalogProvider>,
    shards: Box<[Shard]>,
    /// LRU capacity over *ready* engines; `None` = unbounded (the
    /// pre-lifecycle behaviour). Construction-time only.
    capacity: Option<usize>,
    lru: Mutex<LruState>,
    lifecycle: RwLock<Lifecycle>,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    failures: AtomicU64,
    evictions: AtomicU64,
    retirements: AtomicU64,
    obs: RegistryObs,
}

/// Write-through observability for the registry: the lifetime counters
/// above stay authoritative (and are what [`RegistryStats`] reads); these
/// handles mirror each increment into a shared
/// [`ObsRegistry`](doppler_obs::ObsRegistry) so registry traffic shows up
/// in fleet-wide snapshots, plus a train-latency histogram the atomic
/// counters cannot express. All no-ops until
/// [`EngineRegistry::with_obs`] is called.
#[derive(Default)]
struct RegistryObs {
    /// `registry.train_latency` — one observation per training run,
    /// including runs that panic.
    train: Histogram,
    hits: Counter,
    coalesced: Counter,
    misses: Counter,
    failures: Counter,
    evictions: Counter,
    retirements: Counter,
}

impl EngineRegistry {
    const DEFAULT_SHARDS: usize = 16;

    /// A registry over a provider, with the default shard count.
    pub fn new(provider: Arc<dyn CatalogProvider>) -> EngineRegistry {
        EngineRegistry::with_shards(provider, Self::DEFAULT_SHARDS)
    }

    /// A registry with an explicit shard count (clamped to ≥ 1). More
    /// shards = less write contention on cold bursts; warm reads already
    /// share read locks.
    pub fn with_shards(provider: Arc<dyn CatalogProvider>, shards: usize) -> EngineRegistry {
        let shards = shards.max(1);
        EngineRegistry {
            provider,
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            capacity: None,
            lru: Mutex::new(LruState { tick: 0, last_used: HashMap::new() }),
            lifecycle: RwLock::new(Lifecycle::default()),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retirements: AtomicU64::new(0),
            obs: RegistryObs::default(),
        }
    }

    /// Mirror the training-economy counters into `obs` as `registry.*`
    /// series and record per-training latency into
    /// `registry.train_latency`. Write-aside: resolution behaviour and
    /// [`RegistryStats`] are unaffected. Builder-style; set before sharing
    /// the registry.
    pub fn with_obs(mut self, obs: &ObsRegistry) -> EngineRegistry {
        self.obs = RegistryObs {
            train: obs.histogram("registry.train_latency"),
            hits: obs.counter("registry.hits"),
            coalesced: obs.counter("registry.coalesced"),
            misses: obs.counter("registry.misses"),
            failures: obs.counter("registry.failures"),
            evictions: obs.counter("registry.evictions"),
            retirements: obs.counter("registry.retirements"),
        };
        self
    }

    /// Bound the cache to `capacity` trained engines (clamped to ≥ 1),
    /// evicted least-recently-resolved-first as new trainings land. The
    /// engine just resolved is never the one evicted, and in-flight `Arc`s
    /// stay valid — eviction drops the cache's reference, not the
    /// engine. Builder-style; set before sharing the registry.
    pub fn with_capacity(mut self, capacity: usize) -> EngineRegistry {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// The LRU capacity, when one is set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The catalog provider resolutions go through.
    pub fn provider(&self) -> &Arc<dyn CatalogProvider> {
        &self.provider
    }

    /// Resolve the default-backend (heuristic) engine for
    /// `(key, template, training)`, training it exactly once across all
    /// concurrent callers if it is not cached. Equivalent to
    /// [`get_or_train_backend`](EngineRegistry::get_or_train_backend) with
    /// [`BackendSpec::Heuristic`].
    pub fn get_or_train(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Result<Arc<dyn RecommendationBackend>, RegistryError> {
        self.get_or_train_backend(key, template, training, &BackendSpec::Heuristic)
    }

    /// Resolve the backend for `(key, backend spec, template, training)`,
    /// training it exactly once across all concurrent callers if it is not
    /// cached. The spec's fingerprint is part of the memo key, so two
    /// backend kinds trained on identical inputs occupy distinct slots and
    /// can never cross-serve (champion/challenger safety).
    ///
    /// Warm path: one provider lookup, one shard read lock, one map get,
    /// one `Arc` bump. Cold path: the calling thread trains (outside any
    /// lock) while concurrent requesters for the same key block on the
    /// slot; requesters for *other* keys proceed unhindered.
    pub fn get_or_train_backend(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
        backend: &BackendSpec,
    ) -> Result<Arc<dyn RecommendationBackend>, RegistryError> {
        if self.is_retired(key) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.obs.failures.incr();
            return Err(RegistryError::Retired(key.clone()));
        }
        let (engine_key, resolved) =
            self.engine_key(key, template, training, backend).ok_or_else(|| {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.obs.failures.incr();
                RegistryError::UnknownCatalog(key.clone())
            })?;
        let shard = &self.shards[self.shard_of(&engine_key)];

        // Fast path: shared read lock on the shard.
        let existing =
            shard.read().unwrap_or_else(PoisonError::into_inner).get(&engine_key).cloned();
        if let Some(slot) = existing {
            return self.resolve_slot(key, &engine_key, &slot);
        }

        // Slow path: take the write lock just long enough to insert-or-get
        // the slot; training itself happens with no lock held.
        let (slot, trainer) = {
            let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
            match map.get(&engine_key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Slot::training();
                    map.insert(engine_key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !trainer {
            return self.resolve_slot(key, &engine_key, &slot);
        }

        let config = template.config_for(key.deployment, resolved.rates);
        let catalog = (*resolved.catalog).clone();
        let train_span = self.obs.train.start();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            backend.train(catalog, config, training.records())
        }));
        drop(train_span);
        match outcome {
            Ok(engine) => {
                slot.publish(SlotState::Ready(Arc::clone(&engine)));
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.misses.incr();
                // The newly published engine joins the LRU set; evict past
                // the capacity, least-recently-resolved first (never this
                // one — it was touched last).
                self.admit_and_enforce(&engine_key);
                Ok(engine)
            }
            Err(payload) => {
                // Evict before notifying so no requester can coalesce onto
                // a slot that will never become Ready.
                shard.write().unwrap_or_else(PoisonError::into_inner).remove(&engine_key);
                slot.publish(SlotState::Failed);
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.obs.failures.incr();
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// The default-backend engine for `(key, template, training)` if it is
    /// already trained — never blocks, never trains, and counts neither hit
    /// nor miss.
    pub fn get_if_ready(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Option<Arc<dyn RecommendationBackend>> {
        self.get_if_ready_backend(key, template, training, &BackendSpec::Heuristic)
    }

    /// The backend for `(key, backend spec, template, training)` if it is
    /// already trained — never blocks, never trains, and counts neither hit
    /// nor miss.
    pub fn get_if_ready_backend(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
        backend: &BackendSpec,
    ) -> Option<Arc<dyn RecommendationBackend>> {
        let (engine_key, _) = self.engine_key(key, template, training, backend)?;
        let shard = &self.shards[self.shard_of(&engine_key)];
        let slot =
            shard.read().unwrap_or_else(PoisonError::into_inner).get(&engine_key).cloned()?;
        slot.get_ready()
    }

    /// Derive the cache identity of `(key, backend, template, training)`:
    /// resolve the provider and combine the catalog, backend, template, and
    /// training fingerprints. `None` when the provider has no catalog for
    /// the key. The single implementation behind
    /// [`get_or_train_backend`](EngineRegistry::get_or_train_backend) and
    /// [`get_if_ready_backend`](EngineRegistry::get_if_ready_backend), so
    /// the two can never disagree about what identifies an engine.
    fn engine_key(
        &self,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
        backend: &BackendSpec,
    ) -> Option<(EngineKey, doppler_catalog::ResolvedCatalog)> {
        let resolved = self.provider.resolve(key)?;
        let mut fp = Fingerprint::new();
        fp.write_u64(resolved.fingerprint);
        fp.write_u64(backend.fingerprint());
        fp.write_u64(template.fingerprint());
        fp.write_u64(training.fingerprint());
        Some((EngineKey { catalog: key.clone(), fingerprint: fp.finish() }, resolved))
    }

    /// Point-in-time counters and cache size.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retirements: self.retirements.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Trained engines currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached engine, returning how many trained engines were
    /// evicted (they count into [`RegistryStats::evictions`]; in-flight
    /// training slots are dropped from the cache too but count nothing —
    /// no engine existed yet). **Counters are lifetime totals and are
    /// preserved** — `hits + coalesced + misses + failures` keeps
    /// equalling completed resolutions across clears. Retirement
    /// tombstones survive too: `clear` is a cache flush, not an
    /// un-retirement. In-flight `Arc`s stay valid.
    pub fn clear(&self) -> usize {
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
            evicted += map.values().filter(|slot| slot.get_ready().is_some()).count();
            map.clear();
        }
        self.lock_lru().last_used.clear();
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        self.obs.evictions.add(evicted as u64);
        evicted
    }

    /// Tombstone one exact [`CatalogKey`]: every engine trained for it is
    /// dropped (counted into [`RegistryStats::retirements`]) and any later
    /// resolution returns [`RegistryError::Retired`] — never a retrain.
    /// The operator move behind a catalog version roll: retire `v1`, let
    /// the priority lane re-assess against `v2`. Returns the number of
    /// engines dropped. In-flight `Arc`s (and waiters already coalesced
    /// onto an in-flight training) keep their engines; only the cache
    /// forgets them.
    pub fn retire_version(&self, key: &CatalogKey) -> usize {
        self.lifecycle.write().unwrap_or_else(PoisonError::into_inner).retired.insert(key.clone());
        self.retire_matching(|catalog| catalog == key)
    }

    /// Tombstone every key — across all deployments and regions — whose
    /// version is older than `floor`, dropping their engines. The floor is
    /// monotone: a lower floor than one already set is a no-op for the
    /// tombstone (already-retired keys stay retired). Returns the number
    /// of engines dropped.
    pub fn retire_older_than(&self, floor: doppler_catalog::CatalogVersion) -> usize {
        {
            let mut lifecycle = self.lifecycle.write().unwrap_or_else(PoisonError::into_inner);
            lifecycle.min_version = Some(lifecycle.min_version.map_or(floor, |f| f.max(floor)));
        }
        self.retire_matching(|catalog| catalog.version < floor)
    }

    /// Whether resolutions of `key` are refused as retired.
    pub fn is_retired(&self, key: &CatalogKey) -> bool {
        self.lifecycle.read().unwrap_or_else(PoisonError::into_inner).is_retired(key)
    }

    /// Drop every cached entry whose catalog key matches. Trained engines
    /// count into the retirement counter and the return value; in-flight
    /// `Training` slots are dropped from the cache too (so nothing can
    /// coalesce onto a retired key) but count nothing — no engine existed
    /// yet. The shared sweep behind both retirement entry points.
    fn retire_matching(&self, matches: impl Fn(&CatalogKey) -> bool) -> usize {
        let mut dropped = Vec::new();
        let mut engines = 0usize;
        for shard in self.shards.iter() {
            shard.write().unwrap_or_else(PoisonError::into_inner).retain(|k, slot| {
                if matches(&k.catalog) {
                    if slot.get_ready().is_some() {
                        engines += 1;
                    }
                    dropped.push(k.clone());
                    false
                } else {
                    true
                }
            });
        }
        let mut lru = self.lock_lru();
        for k in &dropped {
            lru.last_used.remove(k);
        }
        drop(lru);
        self.retirements.fetch_add(engines as u64, Ordering::Relaxed);
        self.obs.retirements.add(engines as u64);
        engines
    }

    fn lock_lru(&self) -> MutexGuard<'_, LruState> {
        self.lru.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refresh `engine_key`'s LRU recency on a warm resolution. Update
    /// only, never insert: admission happens exactly once, at publish
    /// ([`admit_and_enforce`](EngineRegistry::admit_and_enforce)), so a
    /// hit racing an eviction or retirement can never resurrect a phantom
    /// LRU entry for a key the cache no longer holds. No-op without a
    /// capacity — unbounded registries never touch the LRU mutex.
    fn touch(&self, engine_key: &EngineKey) {
        if self.capacity.is_none() {
            return;
        }
        let mut lru = self.lock_lru();
        lru.tick += 1;
        let tick = lru.tick;
        if let Some(last) = lru.last_used.get_mut(engine_key) {
            *last = tick;
        }
    }

    /// Admit a freshly published engine to the LRU set and evict
    /// least-recently-resolved engines until the set fits the capacity.
    /// The whole pass holds the LRU lock (shard locks are taken inside it;
    /// no path holds a shard lock while waiting on the LRU mutex, so the
    /// ordering is acyclic), which keeps `last_used` and the shards in
    /// step: a concurrent retirement that already swept this key simply
    /// skips admission, and a victim some other thread already removed is
    /// dropped from the LRU set without counting an eviction. `engine_key`
    /// itself is never the victim, so a capacity-1 registry still serves
    /// the key it just trained.
    fn admit_and_enforce(&self, engine_key: &EngineKey) {
        let Some(capacity) = self.capacity else { return };
        let mut lru = self.lock_lru();
        let still_cached = self.shards[self.shard_of(engine_key)]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(engine_key);
        if !still_cached {
            return;
        }
        lru.tick += 1;
        let tick = lru.tick;
        lru.last_used.insert(engine_key.clone(), tick);
        while lru.last_used.len() > capacity {
            let victim = lru
                .last_used
                .iter()
                .filter(|(k, _)| *k != engine_key)
                .min_by_key(|(_, &tick)| tick)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { return };
            lru.last_used.remove(&victim);
            let removed = self.shards[self.shard_of(&victim)]
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&victim);
            if removed.is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs.evictions.incr();
            }
        }
    }

    fn shard_of(&self, key: &EngineKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Resolve through an existing slot, classifying the counter outcome:
    /// a slot that is already `Ready` is a hit; one still `Training` is a
    /// coalesced wait; a `Failed` slot (only observable in the narrow
    /// window before the trainer evicts it) reports failure.
    fn resolve_slot(
        &self,
        key: &CatalogKey,
        engine_key: &EngineKey,
        slot: &Slot,
    ) -> Result<Arc<dyn RecommendationBackend>, RegistryError> {
        if let Some(engine) = slot.get_ready() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.hits.incr();
            self.touch(engine_key);
            return Ok(engine);
        }
        match slot.wait() {
            Some(engine) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.obs.coalesced.incr();
                self.touch(engine_key);
                Ok(engine)
            }
            None => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.obs.failures.incr();
                Err(RegistryError::TrainingFailed(key.clone()))
            }
        }
    }
}

impl fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{
        azure_paas_catalog, Catalog, CatalogSpec, CatalogVersion, DeploymentType,
        InMemoryCatalogProvider, Region, SkuId,
    };
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn registry() -> EngineRegistry {
        EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()))
    }

    fn db_key() -> CatalogKey {
        CatalogKey::production(DeploymentType::SqlDb)
    }

    fn record(cpu: f64, n: usize) -> TrainingRecord {
        TrainingRecord {
            history: PerfHistory::new()
                .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; n]))
                .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.5; n])),
            chosen_sku: SkuId("DB_GP_2".into()),
            file_layout: None,
        }
    }

    #[test]
    fn with_obs_mirrors_counters_and_times_training() {
        let obs = ObsRegistry::enabled();
        let registry = registry().with_obs(&obs);
        registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let unknown = CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("nope"));
        assert!(registry
            .get_or_train(&unknown, &EngineTemplate::production(), &TrainingSet::empty())
            .is_err());
        let stats = registry.stats();
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter("registry.misses"), Some(stats.misses));
        assert_eq!(snapshot.counter("registry.hits"), Some(stats.hits));
        assert_eq!(snapshot.counter("registry.failures"), Some(stats.failures));
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.failures, 1);
        // One training run, one latency observation.
        assert_eq!(snapshot.histogram("registry.train_latency").unwrap().count, stats.misses);
    }

    #[test]
    fn hit_returns_the_same_engine_allocation() {
        let registry = registry();
        let a = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let b = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn counters_are_exact_over_a_sequential_workload() {
        let registry = registry();
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        let trained = TrainingSet::new(vec![record(0.5, 64)]);
        // 3 distinct keys: (db, empty), (db, trained), (mi, empty).
        let mi_key = CatalogKey::production(DeploymentType::SqlMi);
        for _ in 0..5 {
            registry.get_or_train(&db_key(), &template, &empty).unwrap();
            registry.get_or_train(&db_key(), &template, &trained).unwrap();
            registry.get_or_train(&mi_key, &template, &empty).unwrap();
        }
        let stats = registry.stats();
        assert_eq!(stats.misses, 3, "one training per distinct key");
        assert_eq!(stats.hits + stats.coalesced, 12);
        assert_eq!(stats.coalesced, 0, "sequential callers never coalesce");
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn distinct_templates_and_training_sets_get_distinct_engines() {
        let registry = registry();
        let a = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let kmeans = EngineTemplate {
            grouping: GroupingStrategy::KMeans { k: 4, seed: 7 },
            ..EngineTemplate::production()
        };
        let b = registry.get_or_train(&db_key(), &kmeans, &TrainingSet::empty()).unwrap();
        let c = registry
            .get_or_train(
                &db_key(),
                &EngineTemplate::production(),
                &TrainingSet::new(vec![record(0.5, 64)]),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.stats().misses, 3);
    }

    #[test]
    fn champion_and_challenger_backends_never_cross_serve() {
        use crate::learned::LearnedConfig;
        let registry = registry();
        let template = EngineTemplate::production();
        let training = TrainingSet::new(vec![record(0.5, 64)]);
        let learned = BackendSpec::Learned(LearnedConfig::default());

        let champion = registry
            .get_or_train_backend(&db_key(), &template, &training, &BackendSpec::Heuristic)
            .unwrap();
        let challenger =
            registry.get_or_train_backend(&db_key(), &template, &training, &learned).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.misses, 2, "one training per (key, backend)");
        assert_eq!(stats.hits, 0, "no cross-hits between backend kinds");
        assert!(!Arc::ptr_eq(&champion, &challenger));
        assert_eq!(champion.id(), "heuristic");
        assert_eq!(challenger.id(), "learned");

        // Warm resolutions stay within their own backend's slot.
        let champion2 = registry
            .get_or_train_backend(&db_key(), &template, &training, &BackendSpec::Heuristic)
            .unwrap();
        let challenger2 =
            registry.get_or_train_backend(&db_key(), &template, &training, &learned).unwrap();
        let stats = registry.stats();
        assert_eq!((stats.misses, stats.hits), (2, 2));
        assert!(Arc::ptr_eq(&champion, &champion2));
        assert!(Arc::ptr_eq(&challenger, &challenger2));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn unknown_catalog_is_an_error_and_counts_as_failure() {
        let registry = registry();
        let missing = db_key().in_region(Region::new("atlantis"));
        let err = registry
            .get_or_train(&missing, &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap_err();
        assert_eq!(err, RegistryError::UnknownCatalog(missing.clone()));
        assert!(err.to_string().contains("atlantis"));
        assert_eq!(registry.stats().failures, 1);
        assert_eq!(registry.len(), 0);
    }

    #[test]
    fn single_flight_trains_once_under_concurrency() {
        let registry = Arc::new(registry());
        let template = EngineTemplate::production();
        // A non-trivial training set so the cold window is wide enough for
        // real overlap.
        let training = TrainingSet::new((0..12).map(|i| record(0.3 + i as f64, 288)).collect());
        const THREADS: usize = 8;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let engines: Vec<Arc<dyn RecommendationBackend>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    let barrier = Arc::clone(&barrier);
                    let training = training.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        registry.get_or_train(&db_key(), &template, &training).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for engine in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], engine), "all callers share one engine");
        }
        let stats = registry.stats();
        assert_eq!(stats.misses, 1, "exactly one training run across {THREADS} threads");
        assert_eq!(stats.hits + stats.coalesced, (THREADS - 1) as u64);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn registry_engine_matches_direct_training_bit_for_bit() {
        let registry = registry();
        let training = TrainingSet::new(vec![record(0.6, 96), record(4.0, 96)]);
        let shared =
            registry.get_or_train(&db_key(), &EngineTemplate::production(), &training).unwrap();
        let direct = crate::engine::DopplerEngine::train(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
            training.records(),
        );
        let history = record(0.7, 128).history;
        let a = shared.recommend(&history, None);
        let b = direct.recommend(&history, None);
        assert_eq!(a, b);
    }

    #[test]
    fn get_if_ready_never_trains() {
        let registry = registry();
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        assert!(registry.get_if_ready(&db_key(), &template, &empty).is_none());
        assert_eq!(registry.stats().misses, 0);
        let trained = registry.get_or_train(&db_key(), &template, &empty).unwrap();
        let peeked = registry.get_if_ready(&db_key(), &template, &empty).unwrap();
        assert!(Arc::ptr_eq(&trained, &peeked));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "peeks count nothing");
    }

    #[test]
    fn clear_evicts_but_keeps_live_arcs_valid() {
        let registry = registry();
        let engine = registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        assert_eq!(registry.clear(), 1, "clear reports how many entries it evicted");
        assert!(registry.is_empty());
        // The evicted engine still serves.
        assert!(engine.recommend(&record(0.4, 32).history, None).sku_id.is_some());
        // Next resolution retrains; lifetime counters were preserved
        // across the clear, and the flushed entry counts as an eviction.
        registry
            .get_or_train(&db_key(), &EngineTemplate::production(), &TrainingSet::empty())
            .unwrap();
        let stats = registry.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(registry.clear(), 1);
        assert_eq!(registry.clear(), 0, "clearing an empty registry evicts nothing");
        assert_eq!(registry.stats().evictions, 2);
    }

    /// A multi-region provider for the lifecycle tests: `region-0` …
    /// `region-{n-1}`, list-priced, both deployments each.
    fn regions(n: usize) -> InMemoryCatalogProvider {
        (0..n).fold(InMemoryCatalogProvider::new(), |p, i| {
            p.with_region(
                Region::new(format!("region-{i}")),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.0,
            )
        })
    }

    fn region_key(i: usize) -> CatalogKey {
        CatalogKey::new(
            DeploymentType::SqlDb,
            Region::new(format!("region-{i}")),
            CatalogVersion::INITIAL,
        )
    }

    #[test]
    fn lru_capacity_bounds_the_cache_and_counts_evictions() {
        let registry = EngineRegistry::new(Arc::new(regions(6))).with_capacity(3);
        assert_eq!(registry.capacity(), Some(3));
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        for i in 0..6 {
            registry.get_or_train(&region_key(i), &template, &empty).unwrap();
            assert!(registry.len() <= 3, "after key {i}: {} entries", registry.len());
        }
        let stats = registry.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 3, "6 trainings into a 3-slot cache evict 3");
        assert_eq!(stats.entries, 3);
        // The three most recent keys survived; the three oldest are gone.
        for i in 0..3 {
            assert!(registry.get_if_ready(&region_key(i), &template, &empty).is_none(), "{i}");
        }
        for i in 3..6 {
            assert!(registry.get_if_ready(&region_key(i), &template, &empty).is_some(), "{i}");
        }
    }

    #[test]
    fn lru_hits_refresh_recency() {
        let registry = EngineRegistry::new(Arc::new(regions(3))).with_capacity(2);
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        registry.get_or_train(&region_key(0), &template, &empty).unwrap();
        registry.get_or_train(&region_key(1), &template, &empty).unwrap();
        // Hitting key 0 makes key 1 the least recently resolved …
        registry.get_or_train(&region_key(0), &template, &empty).unwrap();
        // … so training key 2 evicts key 1, not key 0.
        registry.get_or_train(&region_key(2), &template, &empty).unwrap();
        assert!(registry.get_if_ready(&region_key(0), &template, &empty).is_some());
        assert!(registry.get_if_ready(&region_key(1), &template, &empty).is_none());
        assert!(registry.get_if_ready(&region_key(2), &template, &empty).is_some());
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn capacity_one_never_evicts_the_engine_just_resolved() {
        let registry = EngineRegistry::new(Arc::new(regions(4))).with_capacity(1);
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        for i in 0..4 {
            registry.get_or_train(&region_key(i), &template, &empty).unwrap();
            // The just-trained engine is protected from its own eviction
            // pass — a capacity-1 cache still serves the key it trained.
            assert!(
                registry.get_if_ready(&region_key(i), &template, &empty).is_some(),
                "key {i} evicted by its own resolution"
            );
            assert_eq!(registry.len(), 1);
        }
        assert_eq!(registry.stats().evictions, 3);
    }

    #[test]
    fn retired_keys_error_and_never_retrain() {
        let registry = registry();
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        let engine = registry.get_or_train(&db_key(), &template, &empty).unwrap();
        assert_eq!(registry.retire_version(&db_key()), 1, "one engine tombstoned");
        assert!(registry.is_retired(&db_key()));
        assert!(registry.is_empty());

        let err = registry.get_or_train(&db_key(), &template, &empty).unwrap_err();
        assert_eq!(err, RegistryError::Retired(db_key()));
        assert!(err.to_string().contains("retired"));
        let stats = registry.stats();
        assert_eq!(stats.misses, 1, "retirement never triggers a retrain");
        assert_eq!(stats.retirements, 1);
        assert_eq!(stats.failures, 1, "the refused resolution counts as a failure");
        assert_eq!(stats.evictions, 0, "retirement is not an LRU eviction");
        // In-flight Arcs keep serving.
        assert!(engine.recommend(&record(0.4, 32).history, None).sku_id.is_some());
        // Other keys are untouched.
        registry
            .get_or_train(&CatalogKey::production(DeploymentType::SqlMi), &template, &empty)
            .unwrap();
        // Clearing the cache does not un-retire.
        registry.clear();
        assert!(matches!(
            registry.get_or_train(&db_key(), &template, &empty),
            Err(RegistryError::Retired(_))
        ));
    }

    #[test]
    fn retire_older_than_applies_a_monotone_version_floor() {
        let provider = InMemoryCatalogProvider::production()
            .with_region(Region::global(), CatalogVersion(2), &CatalogSpec::default(), 1.0)
            .with_region(Region::global(), CatalogVersion(3), &CatalogSpec::default(), 1.0);
        let registry = EngineRegistry::new(Arc::new(provider));
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        for v in 1..=3 {
            registry
                .get_or_train(&db_key().at_version(CatalogVersion(v)), &template, &empty)
                .unwrap();
        }
        assert_eq!(registry.retire_older_than(CatalogVersion(3)), 2, "v1 and v2 engines dropped");
        assert!(registry.is_retired(&db_key()));
        assert!(registry.is_retired(&db_key().at_version(CatalogVersion(2))));
        assert!(!registry.is_retired(&db_key().at_version(CatalogVersion(3))));
        // The floor covers keys never resolved, in any region.
        assert!(registry.is_retired(&db_key().in_region(Region::new("never-seen"))));
        // A lower floor later cannot un-retire.
        registry.retire_older_than(CatalogVersion(2));
        assert!(registry.is_retired(&db_key().at_version(CatalogVersion(2))));
        assert_eq!(registry.stats().retirements, 2);
        assert!(matches!(
            registry.get_or_train(&db_key(), &template, &empty),
            Err(RegistryError::Retired(_))
        ));
        registry.get_or_train(&db_key().at_version(CatalogVersion(3)), &template, &empty).unwrap();
        assert_eq!(registry.stats().misses, 3, "the surviving version still serves warm");
    }

    #[test]
    fn training_panic_then_retirement_refuses_rather_than_retrains() {
        // A provider whose catalog prices are NaN: curve generation sorts
        // by price and panics — a genuine mid-training panic inside the
        // registry's catch.
        struct NanPriced;
        impl CatalogProvider for NanPriced {
            fn resolve(&self, _key: &CatalogKey) -> Option<doppler_catalog::ResolvedCatalog> {
                let catalog = azure_paas_catalog(&CatalogSpec::default());
                let poisoned = Catalog::new(
                    catalog
                        .iter()
                        .map(|sku| {
                            let mut sku = sku.clone();
                            sku.price_per_hour = f64::NAN;
                            sku
                        })
                        .collect(),
                );
                Some(doppler_catalog::ResolvedCatalog::new(
                    Arc::new(poisoned),
                    doppler_catalog::BillingRates::default(),
                ))
            }
        }
        let registry = EngineRegistry::new(Arc::new(NanPriced));
        let template = EngineTemplate::production();
        let training = TrainingSet::new(vec![record(0.5, 64)]);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            registry.get_or_train(&db_key(), &template, &training)
        }));
        assert!(outcome.is_err(), "the training panic propagates to the trainer");
        let stats = registry.stats();
        assert_eq!((stats.failures, stats.entries), (1, 0), "the failed slot was evicted");

        // Retiring the key after the panic: later resolutions get the
        // typed retirement error — not another training attempt, and not
        // another panic.
        assert_eq!(registry.retire_version(&db_key()), 0, "no engine existed to drop");
        let err = registry.get_or_train(&db_key(), &template, &training).unwrap_err();
        assert_eq!(err, RegistryError::Retired(db_key()));
        assert_eq!(registry.stats().misses, 0, "nothing ever trained successfully");
    }

    #[test]
    fn catalog_versions_partition_the_cache() {
        let provider = InMemoryCatalogProvider::production().with_region(
            Region::global(),
            CatalogVersion(2),
            &CatalogSpec { rates: CatalogSpec::default().rates.scaled(1.05), ..Default::default() },
            1.0,
        );
        let registry = EngineRegistry::new(Arc::new(provider));
        let template = EngineTemplate::production();
        let empty = TrainingSet::empty();
        let v1 = registry.get_or_train(&db_key(), &template, &empty).unwrap();
        let v2 = registry
            .get_or_train(&db_key().at_version(CatalogVersion(2)), &template, &empty)
            .unwrap();
        assert!(!Arc::ptr_eq(&v1, &v2));
        // The v2 engine prices 5 % higher.
        let rec1 = v1.recommend(&record(0.4, 32).history, None);
        let rec2 = v2.recommend(&record(0.4, 32).history, None);
        assert_eq!(rec1.sku_id, rec2.sku_id);
        assert!(rec2.monthly_cost.unwrap() > rec1.monthly_cost.unwrap());
    }

    #[test]
    fn training_set_fingerprints_distinguish_contents() {
        let a = TrainingSet::new(vec![record(0.5, 64)]);
        let b = TrainingSet::new(vec![record(0.5, 64)]);
        let c = TrainingSet::new(vec![record(0.6, 64)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), TrainingSet::empty().fingerprint());
        assert!(TrainingSet::empty().is_empty());
        assert_eq!(a.len(), 1);
    }
}
