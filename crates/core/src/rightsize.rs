//! Right-sizing existing cloud customers (§5.1, §5.2.1).
//!
//! "Among this set, we are able to identify approximately 10% of customers
//! that were over-provisioned, as their fixed SKU choice places them much
//! farther along their price-performance curve. There are a few customers
//! that were paying for SKUs that satisfied 4x their max resource needs."
//!
//! The rule implemented here is the curve-position one: find the cheapest
//! SKU delivering (within ε of) the same score as the customer's current
//! SKU; if the current SKU costs at least `cost_ratio_threshold` times
//! that, the customer is over-provisioned and the delta is the savings
//! opportunity — the Figure 8a example (an 80-core machine doing a 2-core
//! job) realizes "over $100k in annual savings".

use crate::curve::PricePerformanceCurve;

/// Result of a right-sizing audit for one customer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RightsizeReport {
    pub current_sku: String,
    /// Cheapest SKU matching the current SKU's delivered score.
    pub recommended_sku: String,
    pub current_monthly: f64,
    pub recommended_monthly: f64,
    /// `current / recommended` cost ratio.
    pub cost_ratio: f64,
    /// Positive when money is on the table.
    pub monthly_savings: f64,
    /// Whether the ratio clears the over-provisioning threshold.
    pub over_provisioned: bool,
    /// Score both SKUs deliver (they match within ε by construction).
    pub score: f64,
}

impl RightsizeReport {
    /// Annualized savings, dollars.
    pub fn annual_savings(&self) -> f64 {
        self.monthly_savings * 12.0
    }
}

/// Audit one customer: `curve` is their price-performance curve,
/// `current_sku` the SKU they are fixed on, and `cost_ratio_threshold` the
/// over-provisioning bar (1.5 marks "much farther along the curve";
/// Figure 8a's 4x cases are flagged by any sane threshold).
///
/// Returns `None` when the current SKU is not on the curve.
pub fn rightsize(
    curve: &PricePerformanceCurve,
    current_sku: &str,
    cost_ratio_threshold: f64,
) -> Option<RightsizeReport> {
    const EPS: f64 = 1e-9;
    let current = curve.point_for(current_sku)?;
    let target = curve
        .points()
        .iter()
        .find(|p| p.score >= current.score - EPS)
        .expect("the current SKU itself qualifies");
    let cost_ratio =
        if target.monthly_cost > 0.0 { current.monthly_cost / target.monthly_cost } else { 1.0 };
    Some(RightsizeReport {
        current_sku: current.sku_id.clone(),
        recommended_sku: target.sku_id.clone(),
        current_monthly: current.monthly_cost,
        recommended_monthly: target.monthly_cost,
        cost_ratio,
        monthly_savings: current.monthly_cost - target.monthly_cost,
        over_provisioned: cost_ratio >= cost_ratio_threshold,
        score: target.score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat curve over a GP ladder: everything scores 1.0.
    fn flat_ladder() -> PricePerformanceCurve {
        PricePerformanceCurve::from_scored(
            (1..=10).map(|i| (format!("GP{}", 2 * i), 370.0 * i as f64, 1.0)).collect(),
        )
    }

    #[test]
    fn eighty_core_customer_on_flat_curve_is_flagged() {
        // The Figure 8a story: a 2-core SKU meets 100% of needs but the
        // customer pays for ~80 cores.
        let curve = flat_ladder();
        let r = rightsize(&curve, "GP20", 1.5).unwrap();
        assert!(r.over_provisioned);
        assert_eq!(r.recommended_sku, "GP2");
        assert!((r.cost_ratio - 10.0).abs() < 1e-9);
        assert!(r.annual_savings() > 12.0 * 3000.0);
    }

    #[test]
    fn right_sized_customer_is_not_flagged() {
        let curve = flat_ladder();
        let r = rightsize(&curve, "GP2", 1.5).unwrap();
        assert!(!r.over_provisioned);
        assert_eq!(r.monthly_savings, 0.0);
        assert_eq!(r.recommended_sku, "GP2");
    }

    #[test]
    fn complex_curve_matches_score_not_just_cheapest() {
        let curve = PricePerformanceCurve::from_scored(vec![
            ("small".into(), 100.0, 0.5),
            ("mid".into(), 300.0, 0.95),
            ("big".into(), 900.0, 0.95),
            ("huge".into(), 1800.0, 1.0),
        ]);
        // "big" delivers the same 0.95 as "mid": recommend "mid".
        let r = rightsize(&curve, "big", 1.5).unwrap();
        assert_eq!(r.recommended_sku, "mid");
        assert!(r.over_provisioned);
        // "huge" is the only 1.0 point: it is right-sized at its score.
        let r2 = rightsize(&curve, "huge", 1.5).unwrap();
        assert_eq!(r2.recommended_sku, "huge");
        assert!(!r2.over_provisioned);
    }

    #[test]
    fn unknown_sku_yields_none() {
        assert!(rightsize(&flat_ladder(), "nope", 1.5).is_none());
    }

    #[test]
    fn threshold_controls_the_flag() {
        let curve = flat_ladder();
        // GP4 costs 2x GP2 on a flat curve.
        let strict = rightsize(&curve, "GP4", 1.5).unwrap();
        assert!(strict.over_provisioned);
        let lenient = rightsize(&curve, "GP4", 3.0).unwrap();
        assert!(!lenient.over_provisioned);
    }
}
