//! The resource-throttling probability of Eq. 1 — Doppler's performance
//! proxy.
//!
//! For customer *n* and SKU *i*:
//!
//! ```text
//! P_n(SKU_i) = P( r_CPU > R_CPU  ∪  r_RAM > R_RAM  ∪ … ∪  r_IOPS > R_IOPS )
//! ```
//!
//! estimated non-parametrically: "calculating the frequency with which all
//! performance dimensions are satisfied by each SKU, at each time point"
//! (§3.2). The estimate is *joint* — one indicator per time sample over the
//! union of dimension exceedances — so cross-dimension correlation is
//! handled for free; the ablation bench shows why assuming independence
//! would misestimate it.
//!
//! IO latency is the one inverted dimension: "IO latency is taken as the
//! inverse of the actual IO latency in order to calculate the effect of
//! this performance dimension relative to an upper bound". Concretely, a
//! sample throttles on latency when the workload *requires* a latency
//! tighter than the SKU's minimum achievable one.

use doppler_catalog::ResourceCaps;
use doppler_telemetry::{PerfDimension, PerfHistory};

/// The capacity a SKU exposes for one dimension, or `None` when the
/// dimension is unconstrained by that SKU (e.g. log rate is not assessed
/// for MI).
fn capacity(caps: &ResourceCaps, dim: PerfDimension) -> Option<f64> {
    match dim {
        PerfDimension::Cpu => Some(caps.vcores),
        PerfDimension::Memory => Some(caps.memory_gb),
        PerfDimension::Iops => Some(caps.iops),
        PerfDimension::IoLatency => Some(caps.min_io_latency_ms),
        PerfDimension::LogRate => Some(caps.log_rate_mbps),
        PerfDimension::Storage => Some(caps.max_data_gb),
    }
}

/// Whether a single sample exceeds a single capacity.
#[inline]
fn exceeds(dim: PerfDimension, demand: f64, cap: f64) -> bool {
    if dim.inverted() {
        // The workload needs a latency *tighter* than the SKU can deliver.
        demand < cap
    } else {
        demand > cap
    }
}

/// Joint throttling probability of Eq. 1: the fraction of time samples at
/// which at least one collected dimension exceeds the SKU's capacity.
///
/// An empty history throttles with probability 0 (no evidence of demand).
pub fn throttling_probability(history: &PerfHistory, caps: &ResourceCaps) -> f64 {
    let n = history.len();
    if n == 0 {
        return 0.0;
    }
    // Collect (dim, values, cap) triples once to keep the hot loop tight.
    let dims: Vec<(PerfDimension, &[f64], f64)> = history
        .iter()
        .filter_map(|(dim, series)| capacity(caps, dim).map(|cap| (dim, series.values(), cap)))
        .collect();
    let mut throttled = 0usize;
    for t in 0..n {
        for &(dim, values, cap) in &dims {
            if exceeds(dim, values[t], cap) {
                throttled += 1;
                break;
            }
        }
    }
    throttled as f64 / n as f64
}

/// Per-dimension exceedance fractions plus the joint probability; feeds the
/// explanation module ("why did this SKU score 0.82?").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThrottleBreakdown {
    /// `(dimension, fraction of samples exceeding capacity)`, one entry per
    /// collected dimension, in canonical order.
    pub per_dimension: Vec<(PerfDimension, f64)>,
    /// The joint union probability (what Eq. 1 reports).
    pub joint: f64,
}

impl ThrottleBreakdown {
    /// Compute the breakdown for one SKU.
    pub fn compute(history: &PerfHistory, caps: &ResourceCaps) -> ThrottleBreakdown {
        let n = history.len();
        let mut per_dimension = Vec::new();
        for (dim, series) in history.iter() {
            let Some(cap) = capacity(caps, dim) else { continue };
            let count = series.values().iter().filter(|&&v| exceeds(dim, v, cap)).count();
            per_dimension.push((dim, if n == 0 { 0.0 } else { count as f64 / n as f64 }));
        }
        ThrottleBreakdown { per_dimension, joint: throttling_probability(history, caps) }
    }

    /// The dimension with the highest individual exceedance, if any
    /// exceeds at all — the bottleneck the explanation names.
    pub fn bottleneck(&self) -> Option<(PerfDimension, f64)> {
        self.per_dimension
            .iter()
            .copied()
            .filter(|&(_, f)| f > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_telemetry::TimeSeries;

    fn caps(vcores: f64, memory: f64, iops: f64, latency: f64) -> ResourceCaps {
        ResourceCaps {
            vcores,
            memory_gb: memory,
            max_data_gb: 1024.0,
            iops,
            log_rate_mbps: 100.0,
            min_io_latency_ms: latency,
            throughput_mbps: 1000.0,
        }
    }

    fn history(cpu: Vec<f64>, latency: Vec<f64>) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(latency))
    }

    #[test]
    fn empty_history_never_throttles() {
        assert_eq!(throttling_probability(&PerfHistory::new(), &caps(2.0, 10.0, 600.0, 5.0)), 0.0);
    }

    #[test]
    fn ample_capacity_never_throttles() {
        let h = history(vec![1.0, 1.5, 1.8], vec![6.0, 6.0, 6.0]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 0.0);
    }

    #[test]
    fn cpu_exceedance_counts_per_sample() {
        let h = history(vec![1.0, 3.0, 1.0, 3.0], vec![6.0; 4]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 0.5);
    }

    #[test]
    fn latency_dimension_is_inverted() {
        // The workload requires 1 ms at half the samples; a 5 ms-floor SKU
        // throttles exactly there.
        let h = history(vec![1.0; 4], vec![1.0, 6.0, 1.0, 6.0]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 0.5);
        // A 1 ms-floor (BC-like) SKU satisfies all samples.
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 1.0)), 0.0);
    }

    #[test]
    fn union_does_not_double_count_correlated_exceedance() {
        // CPU and latency exceed at the SAME samples: the union is 0.5,
        // not 1 - (1-0.5)(1-0.5) = 0.75.
        let h = history(vec![3.0, 1.0, 3.0, 1.0], vec![1.0, 6.0, 1.0, 6.0]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 0.5);
    }

    #[test]
    fn union_adds_disjoint_exceedances() {
        // CPU exceeds at samples 0-1, latency at samples 2-3: union = 1.0.
        let h = history(vec![3.0, 3.0, 1.0, 1.0], vec![6.0, 6.0, 1.0, 1.0]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 1.0);
    }

    #[test]
    fn probability_is_monotone_in_capacity() {
        let h =
            history((0..100).map(|i| (i % 10) as f64).collect(), (0..100).map(|_| 6.0).collect());
        let mut last = 1.0;
        for vcores in [1.0, 3.0, 5.0, 8.0, 12.0] {
            let p = throttling_probability(&h, &caps(vcores, 100.0, 1e6, 5.0));
            assert!(p <= last + 1e-12, "p not monotone at {vcores} vCores");
            last = p;
        }
    }

    #[test]
    fn breakdown_reports_bottleneck() {
        // CPU exceeds at t=0,1,2; latency only at t=0 (overlapping): the
        // joint union is 0.75 and CPU is the named bottleneck.
        let h = history(vec![3.0, 3.0, 3.0, 1.0], vec![1.0, 6.0, 6.0, 6.0]);
        let b = ThrottleBreakdown::compute(&h, &caps(2.0, 10.0, 600.0, 5.0));
        assert_eq!(b.joint, 0.75);
        let (dim, frac) = b.bottleneck().unwrap();
        assert_eq!(dim, PerfDimension::Cpu);
        assert_eq!(frac, 0.75);
        let lat = b.per_dimension.iter().find(|(d, _)| *d == PerfDimension::IoLatency).unwrap();
        assert_eq!(lat.1, 0.25);
    }

    #[test]
    fn breakdown_of_satisfied_workload_has_no_bottleneck() {
        let h = history(vec![0.5; 3], vec![6.0; 3]);
        let b = ThrottleBreakdown::compute(&h, &caps(2.0, 10.0, 600.0, 5.0));
        assert_eq!(b.joint, 0.0);
        assert!(b.bottleneck().is_none());
    }

    #[test]
    fn boundary_values_do_not_throttle() {
        // Demand exactly at capacity is satisfied (strict inequality).
        let h = history(vec![2.0; 3], vec![5.0; 3]);
        assert_eq!(throttling_probability(&h, &caps(2.0, 10.0, 600.0, 5.0)), 0.0);
    }
}
