//! Property-based tests for the engine's invariants.

use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType, ResourceCaps};
use doppler_core::matching::{select_for_p, select_with_slack};
use doppler_core::{throttling_probability, BaselineStrategy, PricePerformanceCurve};
use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
use proptest::prelude::*;

fn caps(vcores: f64, memory: f64, iops: f64, latency: f64) -> ResourceCaps {
    ResourceCaps {
        vcores,
        memory_gb: memory,
        max_data_gb: 4096.0,
        iops,
        log_rate_mbps: 1e6,
        min_io_latency_ms: latency,
        throughput_mbps: 1e6,
    }
}

fn history_strategy() -> impl Strategy<Value = PerfHistory> {
    (
        prop::collection::vec(0.0..40.0f64, 8..120),
        prop::collection::vec(0.0..200.0f64, 8..120),
        prop::collection::vec(0.1..20.0f64, 8..120),
    )
        .prop_map(|(cpu, mem, lat)| {
            let n = cpu.len().min(mem.len()).min(lat.len());
            PerfHistory::new()
                .with(PerfDimension::Cpu, TimeSeries::ten_minute(cpu[..n].to_vec()))
                .with(PerfDimension::Memory, TimeSeries::ten_minute(mem[..n].to_vec()))
                .with(PerfDimension::IoLatency, TimeSeries::ten_minute(lat[..n].to_vec()))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throttling_probability_is_a_probability(h in history_strategy(), v in 0.1..100.0f64) {
        let p = throttling_probability(&h, &caps(v, v * 5.0, v * 300.0, 3.0));
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn throttling_is_monotone_in_capacity(h in history_strategy(), v in 0.1..50.0f64) {
        // Scaling every capacity up can never increase the probability
        // (latency scales *down*, its improving direction).
        let small = caps(v, v * 5.0, v * 300.0, 4.0);
        let big = caps(v * 2.0, v * 10.0, v * 600.0, 2.0);
        let p_small = throttling_probability(&h, &small);
        let p_big = throttling_probability(&h, &big);
        prop_assert!(p_big <= p_small + 1e-12, "{p_big} > {p_small}");
    }

    #[test]
    fn curve_envelope_is_monotone_and_above_raw(h in history_strategy()) {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&h, &skus);
        for w in curve.points().windows(2) {
            prop_assert!(w[0].monthly_cost <= w[1].monthly_cost);
            prop_assert!(w[1].score >= w[0].score - 1e-12);
        }
        for p in curve.points() {
            prop_assert!(p.score >= p.raw_score - 1e-12);
            prop_assert!((0.0..=1.0).contains(&p.raw_score));
        }
    }

    #[test]
    fn selection_respects_the_constraint(h in history_strategy(), p_g in 0.0..1.0f64) {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&h, &skus);
        let best_score = curve.points().iter().map(|p| p.score).fold(0.0, f64::max);
        if let Some(pick) = select_for_p(&curve, p_g) {
            let p = 1.0 - pick.score;
            // Either the constraint held, or nothing satisfied it and the
            // fallback returned the most performant point.
            prop_assert!(
                p <= p_g + 1e-9 || (pick.score - best_score).abs() < 1e-12,
                "constraint violated: P {p} vs P_g {p_g}"
            );
        }
    }

    #[test]
    fn slack_only_widens_the_feasible_set(h in history_strategy(), p_g in 0.0..0.5f64, slack in 0.0..0.3f64) {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        let skus = cat.for_deployment(DeploymentType::SqlDb);
        let curve = PricePerformanceCurve::generate(&h, &skus);
        let strict = select_for_p(&curve, p_g).map(|p| 1.0 - p.score);
        let loose = select_with_slack(&curve, p_g, slack).map(|p| 1.0 - p.score);
        if let (Some(s), Some(l)) = (strict, loose) {
            // The slack pick is at least as close to p_g from the feasible
            // side; both are valid probabilities.
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn baseline_result_dominates_its_own_requirement(h in history_strategy()) {
        let cat = azure_paas_catalog(&CatalogSpec::default());
        for strategy in [BaselineStrategy::max(), BaselineStrategy::p95()] {
            let req = strategy.requirement(&h);
            if let Some(sku) = strategy.recommend(&h, &cat, DeploymentType::SqlDb) {
                prop_assert!(sku.caps.dominates(&req), "{} fails its own requirement", sku.id);
            }
        }
    }

    #[test]
    fn max_baseline_never_throttles_on_additive_dimensions(h in history_strategy()) {
        // The max-reduction baseline over-provisions by construction: its
        // chosen SKU satisfies every sample of every *additive* dimension.
        // Latency is exempt — the baseline's scalar reduction handles the
        // inverted dimension backwards (the §5.3 flaw this repo reproduces
        // deliberately), so latency exceedances are expected.
        let cat = azure_paas_catalog(&CatalogSpec::default());
        if let Some(sku) = BaselineStrategy::max().recommend(&h, &cat, DeploymentType::SqlDb) {
            let breakdown = doppler_core::ThrottleBreakdown::compute(&h, &sku.caps);
            for (dim, frac) in breakdown.per_dimension {
                if !dim.inverted() {
                    prop_assert!(frac.abs() < 1e-12, "{dim} exceeded {frac} under max baseline");
                }
            }
        }
    }
}
