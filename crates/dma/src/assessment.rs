//! Adoption accounting for the batch assessment service.
//!
//! DMA "receives hundreds of assessment requests daily" (abstract) and
//! Table 1 reports its adoption: unique instances assessed, unique
//! databases assessed, and total recommendations generated, per month.
//! This module keeps those three counters. The batch execution itself —
//! once a bespoke atomic-counter thread fan-out here — is served by the
//! `doppler-fleet` worker pool: see `doppler_fleet::AssessmentService`,
//! which records into this ledger.

/// One month's adoption counters (a Table 1 row), extended with the
/// drift-monitoring outcomes of continuous operation: how many deployed
/// customers were re-checked this month and how many had drifted off
/// their SKU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MonthlyAdoption {
    pub unique_instances: usize,
    pub unique_databases: usize,
    pub recommendations_generated: usize,
    /// Drift checks run against deployed customers this month.
    pub drift_checks: usize,
    /// Of those, checks that detected a SKU change.
    pub drift_detected: usize,
    /// Catalog version rolls processed this month (price feeds / catalog
    /// swaps that superseded a key customers were pinned to).
    pub catalog_rolls: usize,
    /// Customers re-priced through the priority lane because their catalog
    /// key rolled.
    pub customers_repriced: usize,
}

/// Adoption counters by month label (e.g. `"Oct-21"`), in first-seen
/// order — Table 1 reads chronologically, not alphabetically.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdoptionLedger {
    months: Vec<(String, MonthlyAdoption)>,
}

impl AdoptionLedger {
    /// The month's row, appended (in first-seen order) if new.
    fn entry(&mut self, month: &str) -> &mut MonthlyAdoption {
        match self.months.iter().position(|(k, _)| k == month) {
            Some(i) => &mut self.months[i].1,
            None => {
                self.months.push((month.to_string(), MonthlyAdoption::default()));
                &mut self.months.last_mut().expect("just pushed").1
            }
        }
    }

    /// Record one completed assessment. `recommendations` counts the
    /// recommendation variants produced for the request (DMA emits one per
    /// eligible target; at least one per assessed instance).
    pub fn record(&mut self, month: &str, databases: usize, recommendations: usize) {
        let m = self.entry(month);
        m.unique_instances += 1;
        m.unique_databases += databases;
        m.recommendations_generated += recommendations;
    }

    /// Record one drift check against a deployed customer — the
    /// continuous-monitoring counterpart of [`record`](AdoptionLedger::record).
    pub fn record_drift(&mut self, month: &str, drifted: bool) {
        let m = self.entry(month);
        m.drift_checks += 1;
        if drifted {
            m.drift_detected += 1;
        }
    }

    /// Record one catalog version roll and how many pinned customers it
    /// re-priced — the lifecycle counterpart of
    /// [`record_drift`](AdoptionLedger::record_drift): a billing change is
    /// fleet work the same way drift is, and it reads off the same Table 1
    /// dashboard.
    pub fn record_roll(&mut self, month: &str, repriced: usize) {
        let m = self.entry(month);
        m.catalog_rolls += 1;
        m.customers_repriced += repriced;
    }

    /// Fold another ledger's counters into this one, month-wise. Months
    /// unseen so far are appended in the other ledger's order, so merging
    /// period reports into a running total preserves chronology.
    pub fn merge(&mut self, other: &AdoptionLedger) {
        for (month, row) in other.rows() {
            self.add_row(month, row);
        }
    }

    /// Fold one prebuilt row into `month`, field-wise — appended in
    /// first-seen order if the month is new. The sharded fleet aggregator
    /// uses this to rebuild a ledger from per-shard partial rows in a
    /// caller-chosen month order.
    pub fn add_row(&mut self, month: &str, row: &MonthlyAdoption) {
        let m = self.entry(month);
        m.unique_instances += row.unique_instances;
        m.unique_databases += row.unique_databases;
        m.recommendations_generated += row.recommendations_generated;
        m.drift_checks += row.drift_checks;
        m.drift_detected += row.drift_detected;
        m.catalog_rolls += row.catalog_rolls;
        m.customers_repriced += row.customers_repriced;
    }

    /// Iterate rows in first-recorded order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &MonthlyAdoption)> {
        self.months.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A specific month's counters.
    pub fn month(&self, label: &str) -> Option<&MonthlyAdoption> {
        self.months.iter().find(|(k, _)| k == label).map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_instances_databases_recommendations() {
        let mut ledger = AdoptionLedger::default();
        for _ in 0..3 {
            ledger.record("Oct-21", 2, 4);
        }
        let m = ledger.month("Oct-21").unwrap();
        assert_eq!(m.unique_instances, 3);
        assert_eq!(m.unique_databases, 6);
        assert_eq!(m.recommendations_generated, 12);
    }

    #[test]
    fn ledger_accumulates_across_batches_within_a_month() {
        let mut ledger = AdoptionLedger::default();
        ledger.record("Nov-21", 1, 1);
        ledger.record("Nov-21", 1, 1);
        assert_eq!(ledger.month("Nov-21").unwrap().unique_instances, 2);
        assert_eq!(ledger.rows().count(), 1);
    }

    #[test]
    fn months_read_in_first_seen_order() {
        let mut ledger = AdoptionLedger::default();
        for month in ["Oct-21", "Nov-21", "Dec-21", "Nov-21"] {
            ledger.record(month, 1, 1);
        }
        let order: Vec<&str> = ledger.rows().map(|(m, _)| m).collect();
        assert_eq!(order, vec!["Oct-21", "Nov-21", "Dec-21"]);
    }

    #[test]
    fn unknown_month_is_none() {
        assert_eq!(AdoptionLedger::default().month("Jan-22"), None);
    }

    #[test]
    fn drift_rows_count_checks_and_detections() {
        let mut ledger = AdoptionLedger::default();
        ledger.record_drift("Oct-21", false);
        ledger.record_drift("Oct-21", true);
        ledger.record_drift("Oct-21", false);
        let m = ledger.month("Oct-21").unwrap();
        assert_eq!(m.drift_checks, 3);
        assert_eq!(m.drift_detected, 1);
        // Drift rows live beside the Table 1 counters, not instead.
        assert_eq!(m.unique_instances, 0);
        ledger.record("Oct-21", 1, 1);
        assert_eq!(ledger.month("Oct-21").unwrap().unique_instances, 1);
        assert_eq!(ledger.rows().count(), 1);
    }

    #[test]
    fn roll_rows_count_rolls_and_repriced_customers() {
        let mut ledger = AdoptionLedger::default();
        ledger.record_roll("Oct-21", 12);
        ledger.record_roll("Oct-21", 0);
        let m = ledger.month("Oct-21").unwrap();
        assert_eq!(m.catalog_rolls, 2);
        assert_eq!(m.customers_repriced, 12);
        // Roll rows live beside the Table 1 and drift counters, not instead.
        assert_eq!(m.unique_instances, 0);
        assert_eq!(m.drift_checks, 0);
    }

    #[test]
    fn add_row_folds_field_wise_in_caller_order() {
        let mut ledger = AdoptionLedger::default();
        let row = MonthlyAdoption {
            unique_instances: 2,
            unique_databases: 5,
            recommendations_generated: 7,
            drift_checks: 3,
            drift_detected: 1,
            catalog_rolls: 1,
            customers_repriced: 4,
        };
        ledger.add_row("Nov-21", &row);
        ledger.add_row("Oct-21", &row);
        ledger.add_row("Nov-21", &row);
        let order: Vec<&str> = ledger.rows().map(|(m, _)| m).collect();
        assert_eq!(order, vec!["Nov-21", "Oct-21"]);
        let nov = ledger.month("Nov-21").unwrap();
        assert_eq!(nov.unique_instances, 4);
        assert_eq!(nov.unique_databases, 10);
        assert_eq!(nov.recommendations_generated, 14);
        assert_eq!(nov.drift_checks, 6);
        assert_eq!(nov.drift_detected, 2);
        assert_eq!(nov.catalog_rolls, 2);
        assert_eq!(nov.customers_repriced, 8);
        assert_eq!(*ledger.month("Oct-21").unwrap(), row);
    }

    #[test]
    fn merge_carries_roll_rows() {
        let mut total = AdoptionLedger::default();
        total.record_roll("Oct-21", 3);
        let mut period = AdoptionLedger::default();
        period.record_roll("Oct-21", 4);
        period.record_roll("Nov-21", 1);
        total.merge(&period);
        assert_eq!(total.month("Oct-21").unwrap().catalog_rolls, 2);
        assert_eq!(total.month("Oct-21").unwrap().customers_repriced, 7);
        assert_eq!(total.month("Nov-21").unwrap().catalog_rolls, 1);
    }

    #[test]
    fn merge_carries_drift_rows() {
        let mut total = AdoptionLedger::default();
        total.record_drift("Oct-21", true);
        let mut period = AdoptionLedger::default();
        period.record_drift("Oct-21", true);
        period.record_drift("Nov-21", false);
        total.merge(&period);
        assert_eq!(total.month("Oct-21").unwrap().drift_checks, 2);
        assert_eq!(total.month("Oct-21").unwrap().drift_detected, 2);
        assert_eq!(total.month("Nov-21").unwrap().drift_checks, 1);
        assert_eq!(total.month("Nov-21").unwrap().drift_detected, 0);
    }

    #[test]
    fn merge_sums_matching_months_and_appends_new_ones() {
        let mut total = AdoptionLedger::default();
        total.record("Oct-21", 2, 3);
        let mut period = AdoptionLedger::default();
        period.record("Oct-21", 1, 1);
        period.record("Nov-21", 4, 5);
        total.merge(&period);
        let oct = total.month("Oct-21").unwrap();
        assert_eq!((oct.unique_instances, oct.unique_databases), (2, 3));
        assert_eq!(oct.recommendations_generated, 4);
        assert_eq!(total.month("Nov-21").unwrap().unique_databases, 4);
        let order: Vec<&str> = total.rows().map(|(m, _)| m).collect();
        assert_eq!(order, vec!["Oct-21", "Nov-21"]);
    }
}
