//! The batch assessment service and adoption accounting.
//!
//! DMA "receives hundreds of assessment requests daily" (abstract) and
//! Table 1 reports its adoption: unique instances assessed, unique
//! databases assessed, and total recommendations generated, per month.
//! This module processes request batches across threads (the engine is
//! read-only after training, so assessment parallelizes embarrassingly)
//! and keeps the same three counters.

use std::sync::Mutex;

use crate::pipeline::{AssessmentRequest, AssessmentResult, SkuRecommendationPipeline};

/// One month's adoption counters (a Table 1 row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MonthlyAdoption {
    pub unique_instances: usize,
    pub unique_databases: usize,
    pub recommendations_generated: usize,
}

/// Adoption counters by month label (e.g. `"Oct-21"`), in first-seen
/// order — Table 1 reads chronologically, not alphabetically.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdoptionLedger {
    months: Vec<(String, MonthlyAdoption)>,
}

impl AdoptionLedger {
    /// Record one completed assessment. `recommendations` counts the
    /// recommendation variants produced for the request (DMA emits one per
    /// eligible target; at least one per assessed instance).
    pub fn record(&mut self, month: &str, databases: usize, recommendations: usize) {
        let m = match self.months.iter_mut().find(|(k, _)| k == month) {
            Some((_, m)) => m,
            None => {
                self.months.push((month.to_string(), MonthlyAdoption::default()));
                &mut self.months.last_mut().expect("just pushed").1
            }
        };
        m.unique_instances += 1;
        m.unique_databases += databases;
        m.recommendations_generated += recommendations;
    }

    /// Iterate rows in first-recorded order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &MonthlyAdoption)> {
        self.months.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A specific month's counters.
    pub fn month(&self, label: &str) -> Option<&MonthlyAdoption> {
        self.months.iter().find(|(k, _)| k == label).map(|(_, m)| m)
    }
}

/// The batch service: a pipeline plus worker fan-out.
pub struct AssessmentService {
    pipeline: SkuRecommendationPipeline,
    workers: usize,
}

impl AssessmentService {
    /// A service over a pipeline with the given worker count (clamped to
    /// at least 1).
    pub fn new(pipeline: SkuRecommendationPipeline, workers: usize) -> AssessmentService {
        AssessmentService { pipeline, workers: workers.max(1) }
    }

    /// Process a batch of requests in parallel, preserving input order in
    /// the output.
    pub fn assess_batch(&self, requests: &[AssessmentRequest]) -> Vec<AssessmentResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let results: Mutex<Vec<Option<AssessmentResult>>> =
            Mutex::new((0..requests.len()).map(|_| None).collect());
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(requests.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let result = self.pipeline.assess(&requests[i]);
                    results.lock().expect("no worker panicked")[i] = Some(result);
                });
            }
        });
        results
            .into_inner()
            .expect("no worker panicked")
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Process a batch and record it against a ledger month. Each assessed
    /// instance contributes one recommendation per curve point scored at
    /// 1.0 or, when none reach it, a single best-effort recommendation —
    /// matching DMA's behaviour of surfacing every eligible target.
    pub fn assess_and_record(
        &self,
        month: &str,
        requests: &[AssessmentRequest],
        ledger: &mut AdoptionLedger,
    ) -> Vec<AssessmentResult> {
        let results = self.assess_batch(requests);
        for r in &results {
            let eligible =
                r.recommendation.curve.points().iter().filter(|p| p.score >= 1.0 - 1e-9).count();
            ledger.record(month, r.databases_assessed, eligible.max(1));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::PreprocessedInstance;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_core::engine::EngineConfig;
    use doppler_core::DopplerEngine;
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn service(workers: usize) -> AssessmentService {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        AssessmentService::new(SkuRecommendationPipeline::new(engine), workers)
    }

    fn request(name: &str, cpu: f64) -> AssessmentRequest {
        let h = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 128]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 128]));
        AssessmentRequest {
            instance_name: name.into(),
            input: PreprocessedInstance {
                instance: h.clone(),
                databases: vec![("d1".into(), h.clone()), ("d2".into(), h)],
                file_sizes_gib: vec![],
            },
            confidence: None,
        }
    }

    #[test]
    fn batch_preserves_order() {
        let svc = service(4);
        let reqs: Vec<AssessmentRequest> =
            (0..16).map(|i| request(&format!("inst-{i}"), 0.5)).collect();
        let results = svc.assess_batch(&reqs);
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.instance_name, format!("inst-{i}"));
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let reqs: Vec<AssessmentRequest> =
            (0..8).map(|i| request(&format!("i{i}"), 0.4 + i as f64)).collect();
        let serial: Vec<_> =
            service(1).assess_batch(&reqs).into_iter().map(|r| r.recommendation.sku_id).collect();
        let parallel: Vec<_> =
            service(8).assess_batch(&reqs).into_iter().map(|r| r.recommendation.sku_id).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(service(2).assess_batch(&[]).is_empty());
    }

    #[test]
    fn ledger_counts_instances_databases_recommendations() {
        let svc = service(2);
        let reqs: Vec<AssessmentRequest> = (0..3).map(|i| request(&format!("i{i}"), 0.5)).collect();
        let mut ledger = AdoptionLedger::default();
        svc.assess_and_record("Oct-21", &reqs, &mut ledger);
        let m = ledger.month("Oct-21").unwrap();
        assert_eq!(m.unique_instances, 3);
        assert_eq!(m.unique_databases, 6);
        // Tiny workloads: every SKU is eligible, so recommendations exceed
        // instances — the Table 1 pattern.
        assert!(m.recommendations_generated > m.unique_instances);
    }

    #[test]
    fn ledger_accumulates_across_batches() {
        let svc = service(2);
        let mut ledger = AdoptionLedger::default();
        svc.assess_and_record("Nov-21", &[request("a", 0.5)], &mut ledger);
        svc.assess_and_record("Nov-21", &[request("b", 0.5)], &mut ledger);
        assert_eq!(ledger.month("Nov-21").unwrap().unique_instances, 2);
        assert_eq!(ledger.rows().count(), 1);
    }
}
