//! A minimal self-contained JSON value type, writer, and parser.
//!
//! The Resource Use Module exports machine-readable reports; the build
//! environment cannot vendor `serde_json`, so this module provides the
//! small slice of JSON the DMA integration needs: construction, pretty
//! printing, strict parsing, and typed accessors. Numbers are `f64`
//! round-tripped via Rust's shortest-representation formatting, which is
//! lossless for every finite double.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (reports are small; no map needed).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// `Null` becomes `None`, anything else `Some`.
    pub fn non_null(&self) -> Option<&Json> {
        match self {
            Json::Null => None,
            other => Some(other),
        }
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(xs) if xs.is_empty() => out.push_str("[]"),
            Json::Arr(xs) => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    x.write(out, indent + 1);
                    out.push_str(if i + 1 < xs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // Shortest round-trip representation; force a decimal point or
        // exponent so integers stay unambiguous doubles on re-parse.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no non-finite literals; null is the conventional spill.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

/// Nesting cap: well past any report this crate emits, and low enough that
/// hostile deeply-nested input returns `Err` instead of blowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a \uDC00-\uDFFF low surrogate
                            // must follow; combine into one scalar.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone high surrogate in \\u escape".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate in \\u escape".into());
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(scalar).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
}

/// Strict JSON number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
/// Rust's lenient `f64::from_str` would also accept `+1`, `.5`, `01`,
/// `inf`, etc., so the shape is validated here first; values that overflow
/// to infinity are rejected (they could not round-trip — the writer spills
/// non-finite numbers as `null`).
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let digits = |pos: &mut usize| -> bool {
        let first = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > first
    };
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1, // a leading zero must stand alone
        Some(b'1'..=b'9') => {
            digits(pos);
        }
        _ => return Err(format!("invalid number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(format!("missing digits after '.' at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(format!("missing exponent digits at byte {}", *pos));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let value: f64 =
        text.parse().map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    if !value.is_finite() {
        return Err(format!("number '{text}' overflows f64 at byte {start}"));
    }
    Ok(Json::Num(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "3.5", "\"hi\\nthere\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("inst \"1\"".into())),
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(-2.25e-9)])),
            ("empty".into(), Json::Arr(vec![])),
            ("none".into(), Json::Null),
        ]);
        let text = v.render_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_losslessly() {
        for x in [0.0, 1.0, -1.5, 1e300, 5e-324, 1.0 / 3.0, 774_000.0] {
            let text = Json::Num(x).render_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x, "{text}");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": [1.5, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].get("b").unwrap().as_str(), Some("c"));
        assert!(v.get("d").unwrap().non_null().is_none());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_error() {
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn number_grammar_is_strict() {
        for ok in ["0", "-0", "0.25", "-12.5e+3", "1e-999", "1E4"] {
            assert!(Json::parse(ok).is_ok(), "{ok}");
        }
        for bad in ["+1", ".5", "01", "1.", "1e", "1e+", "-", "1e999", "NaN", "inf"] {
            assert!(Json::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // 128 levels is fine.
        let ok = format!("{}1.0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(Json::parse("1.0 x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }
}
