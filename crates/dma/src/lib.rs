//! Data Migration Assistant (DMA) integration (§4).
//!
//! Doppler ships inside DMA v5.5; three modules were built around the
//! engine, and this crate reproduces each:
//!
//! * [`preprocess`] — the **Data Preprocessing Module**: raw perf counters
//!   (collected every 10 minutes, possibly gappy) are aggregated and rolled
//!   up file → database → instance, and the static inputs (SKU catalog,
//!   pricing) are attached;
//! * [`pipeline`] — the **SKU Recommendation Pipeline**: runs the Doppler
//!   engine over the preprocessed input and packages the result;
//! * [`report`] — the **Resource Use Module**: time-series and distribution
//!   dashboards plus the price-performance curve, "so that customers can
//!   understand why they received a specific SKU recommendation"; exports
//!   to plain text and JSON;
//! * [`assessment`] — adoption accounting: DMA receives hundreds of
//!   assessment requests daily (Table 1); this module keeps the monthly
//!   adoption counters. The batch fan-out itself is served by the
//!   `doppler-fleet` worker pool (`doppler_fleet::AssessmentService`),
//!   which records into the [`AdoptionLedger`] kept here.

pub mod assessment;
pub mod json;
pub mod obs_export;
pub mod pipeline;
pub mod preprocess;
pub mod report;

pub use assessment::{AdoptionLedger, MonthlyAdoption};
pub use obs_export::{obs_snapshot_from_json, obs_snapshot_to_json};
pub use pipeline::{AssessmentRequest, AssessmentResult, SkuRecommendationPipeline};
pub use preprocess::{DatabaseTelemetry, PreprocessedInstance, RawCounterSet};
pub use report::{render_text_report, ResourceUseReport};
