//! [`ObsSnapshot`] ⇄ [`Json`] conversion — the machine-readable side of the
//! observability surface. The ASCII dashboard ([`ObsSnapshot::render`]) is
//! for terminals; this module is for artifacts: CI jobs export a snapshot
//! with [`obs_snapshot_to_json`], archive the rendered text, and later runs
//! re-load it with [`obs_snapshot_from_json`] to diff trajectories.
//!
//! Schema (all latencies in integer nanoseconds):
//!
//! ```json
//! {
//!   "enabled": true,
//!   "uptime_ns": 123456789,
//!   "counters": {"fleet.worker.0.tasks": 250},
//!   "gauges": {"fleet.queue.depth.normal": 0},
//!   "histograms": [
//!     {"name": "fleet.stage.assess", "count": 1000, "mean_ns": 52000,
//!      "p50_ns": 49152, "p95_ns": 98304, "p99_ns": 98304, "max_ns": 812345}
//!   ],
//!   "events": [
//!     {"seq": 0, "at_ns": 1000, "name": "catalog.roll", "detail": "..."}
//!   ]
//! }
//! ```

use doppler_obs::{HistogramSummary, ObsEvent, ObsSnapshot};

use crate::json::Json;

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Export a snapshot as a [`Json`] tree following the module-level schema.
/// Counter/gauge maps preserve the snapshot's name-sorted order. The
/// conversion is lossless for the integer range `f64` covers exactly
/// (counters and nanosecond latencies far below 2^53), so
/// [`obs_snapshot_from_json`] round-trips it.
pub fn obs_snapshot_to_json(snapshot: &ObsSnapshot) -> Json {
    Json::Obj(vec![
        ("enabled".into(), Json::Bool(snapshot.enabled)),
        ("uptime_ns".into(), num(snapshot.uptime_ns)),
        (
            "counters".into(),
            Json::Obj(snapshot.counters.iter().map(|(n, v)| (n.clone(), num(*v))).collect()),
        ),
        (
            "gauges".into(),
            Json::Obj(
                snapshot.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))).collect(),
            ),
        ),
        (
            "histograms".into(),
            Json::Arr(
                snapshot
                    .histograms
                    .iter()
                    .map(|h| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(h.name.clone())),
                            ("count".into(), num(h.count)),
                            ("mean_ns".into(), num(h.mean_ns)),
                            ("p50_ns".into(), num(h.p50_ns)),
                            ("p95_ns".into(), num(h.p95_ns)),
                            ("p99_ns".into(), num(h.p99_ns)),
                            ("max_ns".into(), num(h.max_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "events".into(),
            Json::Arr(
                snapshot
                    .events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("seq".into(), num(e.seq)),
                            ("at_ns".into(), num(e.at_ns)),
                            ("name".into(), Json::Str(e.name.clone())),
                            ("detail".into(), Json::Str(e.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn get_u64(json: &Json, key: &str) -> Option<u64> {
    Some(json.get(key)?.as_f64()? as u64)
}

fn get_str(json: &Json, key: &str) -> Option<String> {
    Some(json.get(key)?.as_str()?.to_string())
}

/// Re-load a snapshot exported by [`obs_snapshot_to_json`]. `None` when the
/// tree does not follow the schema — the CI round-trip validation treats
/// that as a broken artifact.
pub fn obs_snapshot_from_json(json: &Json) -> Option<ObsSnapshot> {
    let enabled = matches!(json.get("enabled")?, Json::Bool(true));
    let pairs = |key: &str| -> Option<Vec<(String, f64)>> {
        match json.get(key)? {
            Json::Obj(entries) => {
                entries.iter().map(|(name, value)| Some((name.clone(), value.as_f64()?))).collect()
            }
            _ => None,
        }
    };
    Some(ObsSnapshot {
        enabled,
        uptime_ns: get_u64(json, "uptime_ns")?,
        counters: pairs("counters")?.into_iter().map(|(n, v)| (n, v as u64)).collect(),
        gauges: pairs("gauges")?.into_iter().map(|(n, v)| (n, v as i64)).collect(),
        histograms: json
            .get("histograms")?
            .as_arr()?
            .iter()
            .map(|h| {
                Some(HistogramSummary {
                    name: get_str(h, "name")?,
                    count: get_u64(h, "count")?,
                    mean_ns: get_u64(h, "mean_ns")?,
                    p50_ns: get_u64(h, "p50_ns")?,
                    p95_ns: get_u64(h, "p95_ns")?,
                    p99_ns: get_u64(h, "p99_ns")?,
                    max_ns: get_u64(h, "max_ns")?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        events: json
            .get("events")?
            .as_arr()?
            .iter()
            .map(|e| {
                Some(ObsEvent {
                    seq: get_u64(e, "seq")?,
                    at_ns: get_u64(e, "at_ns")?,
                    name: get_str(e, "name")?,
                    detail: get_str(e, "detail")?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_obs::ObsRegistry;

    fn populated_snapshot() -> ObsSnapshot {
        let obs = ObsRegistry::enabled();
        obs.counter("ops").add(42);
        obs.gauge("depth").set(-3);
        let h = obs.histogram("lat");
        for ns in [100, 1_000, 50_000] {
            h.record_ns(ns);
        }
        obs.event("roll", "west v1 -> v2");
        obs.snapshot()
    }

    #[test]
    fn snapshot_round_trips_through_json_text() {
        let snapshot = populated_snapshot();
        let text = obs_snapshot_to_json(&snapshot).render_pretty();
        let parsed = Json::parse(&text).expect("rendered JSON parses");
        let back = obs_snapshot_from_json(&parsed).expect("schema round-trips");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn disabled_snapshot_round_trips_too() {
        let snapshot = ObsRegistry::disabled().snapshot();
        let json = obs_snapshot_to_json(&snapshot);
        assert_eq!(obs_snapshot_from_json(&json), Some(snapshot));
    }

    #[test]
    fn malformed_trees_return_none() {
        assert_eq!(obs_snapshot_from_json(&Json::Null), None);
        let missing = Json::Obj(vec![("enabled".into(), Json::Bool(true))]);
        assert_eq!(obs_snapshot_from_json(&missing), None);
        let mut snapshot_json = match obs_snapshot_to_json(&populated_snapshot()) {
            Json::Obj(entries) => entries,
            _ => unreachable!(),
        };
        for (key, value) in &mut snapshot_json {
            if key == "histograms" {
                *value = Json::Str("not an array".into());
            }
        }
        assert_eq!(obs_snapshot_from_json(&Json::Obj(snapshot_json)), None);
    }
}
