//! The SKU Recommendation Pipeline (§4): preprocessed input → Doppler
//! engine → packaged result.

use std::sync::Arc;

use doppler_catalog::{CatalogKey, DeploymentType, FileLayout};
use doppler_core::{
    BackendSpec, ConfidenceConfig, DopplerEngine, EngineRegistry, EngineTemplate, Recommendation,
    RecommendationBackend, RegistryError, TrainingSet,
};
use doppler_telemetry::PerfHistory;

use crate::preprocess::PreprocessedInstance;
use crate::report::ResourceUseReport;

/// One assessment request: an instance's preprocessed telemetry plus the
/// customer's target choice.
#[derive(Debug, Clone)]
pub struct AssessmentRequest {
    /// Identifier carried through to the ledger.
    pub instance_name: String,
    pub input: PreprocessedInstance,
    /// Whether to compute the §3.4 confidence score.
    pub confidence: Option<ConfidenceConfig>,
}

impl AssessmentRequest {
    /// Build a request from an already-aggregated instance-level history —
    /// the entry point batch callers (e.g. `doppler-fleet`) use when no
    /// per-database raw counters exist. The instance is recorded as one
    /// database (how DMA represents a server it could not enumerate) whose
    /// per-database history is left empty: assessment reads only the
    /// instance-level series and the database *count*, and duplicating a
    /// multi-week history per request would double fleet memory.
    pub fn from_history(
        instance_name: impl Into<String>,
        instance: PerfHistory,
        file_sizes_gib: Vec<f64>,
        confidence: Option<ConfidenceConfig>,
    ) -> AssessmentRequest {
        let instance_name = instance_name.into();
        let databases = vec![(format!("{instance_name}/db0"), PerfHistory::new())];
        AssessmentRequest {
            instance_name,
            input: PreprocessedInstance { instance, databases, file_sizes_gib },
            confidence,
        }
    }
}

/// One completed assessment.
#[derive(Debug, Clone)]
pub struct AssessmentResult {
    pub instance_name: String,
    /// Number of databases assessed within the instance.
    pub databases_assessed: usize,
    pub recommendation: Recommendation,
    pub report: ResourceUseReport,
}

/// The pipeline: a recommendation backend plus the glue.
///
/// Since the registry refactor the pipeline does not *own* its engine: it
/// holds an `Arc<dyn RecommendationBackend>`, so cloning a pipeline (or
/// sharing it across fleets and services) bumps a reference count instead
/// of copying a trained model and its catalog — and since the backend
/// redesign the engine behind that `Arc` can be any
/// [`RecommendationBackend`] (the heuristic [`DopplerEngine`], the learned
/// `LearnedBackend`, or a third-party implementation). Resolve backends
/// through an [`EngineRegistry`] with
/// [`from_registry`](SkuRecommendationPipeline::from_registry) /
/// [`from_registry_backend`](SkuRecommendationPipeline::from_registry_backend)
/// — one training per distinct
/// `(catalog key, backend, template, training set)` across every pipeline
/// in the process.
#[derive(Debug, Clone)]
pub struct SkuRecommendationPipeline {
    backend: Arc<dyn RecommendationBackend>,
}

impl SkuRecommendationPipeline {
    /// Wrap a trained backend this pipeline will be the only user of. For
    /// backends shared across consumers, prefer
    /// [`from_shared`](SkuRecommendationPipeline::from_shared) or
    /// [`from_registry`](SkuRecommendationPipeline::from_registry).
    pub fn new(backend: impl RecommendationBackend + 'static) -> SkuRecommendationPipeline {
        SkuRecommendationPipeline::from_shared(Arc::new(backend))
    }

    /// Wrap an already-shared backend — a reference-count bump, no model or
    /// catalog copies.
    pub fn from_shared(backend: Arc<dyn RecommendationBackend>) -> SkuRecommendationPipeline {
        SkuRecommendationPipeline { backend }
    }

    /// Resolve the default (heuristic) backend through a registry
    /// (training it on first use, sharing it afterwards) and wrap it.
    pub fn from_registry(
        registry: &EngineRegistry,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
    ) -> Result<SkuRecommendationPipeline, RegistryError> {
        Ok(SkuRecommendationPipeline::from_shared(registry.get_or_train(key, template, training)?))
    }

    /// Resolve a specific backend kind through a registry and wrap it.
    pub fn from_registry_backend(
        registry: &EngineRegistry,
        key: &CatalogKey,
        template: &EngineTemplate,
        training: &TrainingSet,
        backend: &BackendSpec,
    ) -> Result<SkuRecommendationPipeline, RegistryError> {
        Ok(SkuRecommendationPipeline::from_shared(
            registry.get_or_train_backend(key, template, training, backend)?,
        ))
    }

    /// The backend in use — the canonical accessor (also the shared handle:
    /// clone it to hold the backend, `Arc::ptr_eq` it to compare
    /// allocations).
    pub fn backend(&self) -> &Arc<dyn RecommendationBackend> {
        &self.backend
    }

    /// The engine in use as its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline's backend is not the heuristic
    /// [`DopplerEngine`] — trait-object pipelines should use
    /// [`backend`](SkuRecommendationPipeline::backend).
    #[deprecated(since = "0.1.0", note = "use `backend()`; pipelines are backend-agnostic now")]
    pub fn engine(&self) -> &DopplerEngine {
        self.backend
            .as_any()
            .downcast_ref::<DopplerEngine>()
            .expect("pipeline backend is not the heuristic DopplerEngine; use backend()")
    }

    /// The shared backend handle.
    #[deprecated(since = "0.1.0", note = "use `backend()`; it returns the same shared handle")]
    pub fn shared_engine(&self) -> &Arc<dyn RecommendationBackend> {
        &self.backend
    }

    /// The deployment target this pipeline's backend was configured for —
    /// the routing key batch layers (e.g. `doppler-fleet`) shard on.
    pub fn deployment(&self) -> DeploymentType {
        self.backend.config().deployment
    }

    /// Assess one instance.
    pub fn assess(&self, request: &AssessmentRequest) -> AssessmentResult {
        let history: &PerfHistory = &request.input.instance;
        let layout = (self.backend.config().deployment == DeploymentType::SqlMi
            && !request.input.file_sizes_gib.is_empty())
        .then(|| FileLayout::from_sizes(&request.input.file_sizes_gib));

        let recommendation = match &request.confidence {
            Some(cfg) => self.backend.recommend_with_confidence(history, layout.as_ref(), cfg),
            None => self.backend.recommend(history, layout.as_ref()),
        };
        let report = ResourceUseReport::build(history, &recommendation);
        AssessmentResult {
            instance_name: request.instance_name.clone(),
            databases_assessed: request.input.databases.len(),
            recommendation,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::engine::EngineConfig;
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn pipeline(deployment: DeploymentType) -> SkuRecommendationPipeline {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(deployment),
        );
        SkuRecommendationPipeline::new(engine)
    }

    fn request(deployment_files: Vec<f64>) -> AssessmentRequest {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 300]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![2.0; 300]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![80.0; 300]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.5; 300]));
        AssessmentRequest {
            instance_name: "inst-1".into(),
            input: PreprocessedInstance {
                instance: history.clone(),
                databases: vec![("db1".into(), history)],
                file_sizes_gib: deployment_files,
            },
            confidence: None,
        }
    }

    #[test]
    fn db_assessment_recommends_cheapest_gp() {
        let result = pipeline(DeploymentType::SqlDb).assess(&request(vec![]));
        assert_eq!(result.recommendation.sku_id.as_deref(), Some("DB_GP_2"));
        assert_eq!(result.databases_assessed, 1);
    }

    #[test]
    fn mi_assessment_uses_the_file_layout() {
        let result = pipeline(DeploymentType::SqlMi).assess(&request(vec![100.0, 100.0]));
        let mi = result.recommendation.mi.as_ref().expect("MI context");
        assert_eq!(mi.gp_iops_limit, 1000.0);
    }

    #[test]
    fn confidence_is_attached_when_requested() {
        let mut req = request(vec![]);
        req.confidence = Some(ConfidenceConfig { replicates: 8, window_samples: 60, seed: 1 });
        let result = pipeline(DeploymentType::SqlDb).assess(&req);
        assert_eq!(result.recommendation.confidence, Some(1.0));
    }

    #[test]
    fn pipeline_reports_its_deployment() {
        assert_eq!(pipeline(DeploymentType::SqlMi).deployment(), DeploymentType::SqlMi);
        assert_eq!(pipeline(DeploymentType::SqlDb).deployment(), DeploymentType::SqlDb);
    }

    #[test]
    fn report_is_produced() {
        let result = pipeline(DeploymentType::SqlDb).assess(&request(vec![]));
        assert!(!result.report.dimension_summaries.is_empty());
    }

    #[test]
    fn registry_resolved_pipelines_share_one_engine() {
        use doppler_catalog::InMemoryCatalogProvider;
        let registry = EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()));
        let key = CatalogKey::production(DeploymentType::SqlDb);
        let a = SkuRecommendationPipeline::from_registry(
            &registry,
            &key,
            &EngineTemplate::production(),
            &TrainingSet::empty(),
        )
        .unwrap();
        let b = SkuRecommendationPipeline::from_registry(
            &registry,
            &key,
            &EngineTemplate::production(),
            &TrainingSet::empty(),
        )
        .unwrap();
        assert!(Arc::ptr_eq(a.backend(), b.backend()), "one engine, two pipelines");
        assert_eq!(registry.stats().misses, 1);
        // Cloning a pipeline is a reference-count bump, not a model copy.
        let c = a.clone();
        assert!(Arc::ptr_eq(a.backend(), c.backend()));
        assert_eq!(
            a.assess(&request(vec![])).recommendation,
            b.assess(&request(vec![])).recommendation
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_accessors_keep_working_on_heuristic_pipelines() {
        let p = pipeline(DeploymentType::SqlDb);
        // `engine()` downcasts back to the concrete engine; `shared_engine`
        // aliases `backend()`.
        assert_eq!(p.engine().config().deployment, DeploymentType::SqlDb);
        assert!(Arc::ptr_eq(p.shared_engine(), p.backend()));
    }

    #[test]
    fn registry_resolves_learned_backend_pipelines() {
        use doppler_catalog::InMemoryCatalogProvider;
        use doppler_core::{LearnedBackend, LearnedConfig};
        let registry = EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production()));
        let key = CatalogKey::production(DeploymentType::SqlDb);
        let spec = BackendSpec::Learned(LearnedConfig::default());
        let p = SkuRecommendationPipeline::from_registry_backend(
            &registry,
            &key,
            &EngineTemplate::production(),
            &TrainingSet::empty(),
            &spec,
        )
        .unwrap();
        assert_eq!(p.backend().id(), "learned");
        assert!(p.backend().as_any().downcast_ref::<LearnedBackend>().is_some());
        // An empty corpus means the learned backend is pure fallback.
        let direct = pipeline(DeploymentType::SqlDb);
        assert_eq!(
            p.assess(&request(vec![])).recommendation,
            direct.assess(&request(vec![])).recommendation
        );
    }
}
