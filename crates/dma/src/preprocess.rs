//! The Data Preprocessing Module (§4).
//!
//! "transforms the raw time-series data from perf counters into a format
//! that can be ingested by the Doppler recommendation engine. … perf
//! counters are collected every 10 minutes, then aggregated at the file,
//! database and instance levels."

use doppler_telemetry::{rollup, PerfDimension, PerfHistory, PreAggregator, RawSample};

/// The raw counters collected for one database (or one file): per-dimension
/// sample streams over a common collection window.
#[derive(Debug, Clone, Default)]
pub struct RawCounterSet {
    pub samples: Vec<(PerfDimension, Vec<RawSample>)>,
}

impl RawCounterSet {
    /// Add one dimension's raw stream.
    pub fn with(mut self, dim: PerfDimension, samples: Vec<RawSample>) -> RawCounterSet {
        self.samples.push((dim, samples));
        self
    }
}

/// One database's telemetry: raw counters plus its data-file sizes (the MI
/// flow needs the layout).
#[derive(Debug, Clone, Default)]
pub struct DatabaseTelemetry {
    pub name: String,
    pub counters: RawCounterSet,
    pub file_sizes_gib: Vec<f64>,
}

/// The preprocessed output: one aligned instance-level history plus the
/// per-database histories and the combined file layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessedInstance {
    pub instance: PerfHistory,
    pub databases: Vec<(String, PerfHistory)>,
    pub file_sizes_gib: Vec<f64>,
}

/// Run the preprocessing: aggregate each database's raw counters onto the
/// 10-minute grid, then roll databases up to the instance level.
///
/// `total_minutes` is the collection-window length. Databases whose
/// counters produced no finite samples are dropped (with their files).
pub fn preprocess(databases: &[DatabaseTelemetry], total_minutes: f64) -> PreprocessedInstance {
    let agg = PreAggregator::default();
    let mut per_db = Vec::new();
    let mut files = Vec::new();
    for db in databases {
        let history = agg.aggregate_history(&db.counters.samples, total_minutes);
        if history.is_empty() {
            continue;
        }
        per_db.push((db.name.clone(), history));
        files.extend_from_slice(&db.file_sizes_gib);
    }
    let instance = rollup(&per_db.iter().map(|(_, h)| h.clone()).collect::<Vec<_>>());
    PreprocessedInstance { instance, databases: per_db, file_sizes_gib: files }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(values: &[(f64, f64)]) -> Vec<RawSample> {
        values.iter().map(|&(minute, value)| RawSample { minute, value }).collect()
    }

    fn db(name: &str, cpu_level: f64) -> DatabaseTelemetry {
        DatabaseTelemetry {
            name: name.into(),
            counters: RawCounterSet::default()
                .with(
                    PerfDimension::Cpu,
                    samples(&[(0.0, cpu_level), (10.0, cpu_level), (20.0, cpu_level)]),
                )
                .with(PerfDimension::IoLatency, samples(&[(0.0, 6.0), (10.0, 6.0), (20.0, 6.0)])),
            file_sizes_gib: vec![100.0],
        }
    }

    #[test]
    fn instance_cpu_sums_databases() {
        let out = preprocess(&[db("a", 1.0), db("b", 2.5)], 30.0);
        assert_eq!(out.databases.len(), 2);
        let cpu = out.instance.values(PerfDimension::Cpu).unwrap();
        assert!(cpu.iter().all(|&v| (v - 3.5).abs() < 1e-9));
    }

    #[test]
    fn file_sizes_concatenate() {
        let out = preprocess(&[db("a", 1.0), db("b", 1.0)], 30.0);
        assert_eq!(out.file_sizes_gib, vec![100.0, 100.0]);
    }

    #[test]
    fn dead_databases_are_dropped() {
        let dead = DatabaseTelemetry {
            name: "dead".into(),
            counters: RawCounterSet::default()
                .with(PerfDimension::Cpu, samples(&[(0.0, f64::NAN)])),
            file_sizes_gib: vec![512.0],
        };
        let out = preprocess(&[db("a", 1.0), dead], 30.0);
        assert_eq!(out.databases.len(), 1);
        assert_eq!(out.file_sizes_gib, vec![100.0]);
    }

    #[test]
    fn empty_input_yields_empty_instance() {
        let out = preprocess(&[], 30.0);
        assert!(out.instance.is_empty());
        assert!(out.databases.is_empty());
    }

    #[test]
    fn gappy_counters_are_filled_onto_the_grid() {
        let gappy = DatabaseTelemetry {
            name: "gappy".into(),
            counters: RawCounterSet::default()
                .with(PerfDimension::Cpu, samples(&[(0.0, 2.0), (55.0, 4.0)])),
            file_sizes_gib: vec![],
        };
        let out = preprocess(&[gappy], 60.0);
        let cpu = out.instance.values(PerfDimension::Cpu).unwrap();
        assert_eq!(cpu.len(), 6);
        assert_eq!(cpu[0], 2.0);
        assert_eq!(cpu[2], 2.0); // forward-filled
        assert_eq!(cpu[5], 4.0);
    }
}
