//! The Resource Use Module (§4).
//!
//! "provides a visualization dashboard for customers to better understand
//! their workload resource needs. It outputs time series and distribution
//! plots of customer usage across various perf dimensions, as well as, the
//! price-performance curve, so that customers can understand why they
//! received a specific SKU recommendation."
//!
//! The terminal is our dashboard: summaries and ECDF grids render as text,
//! and the whole report serializes to JSON for machine consumers.

use doppler_core::Recommendation;
use doppler_stats::{Ecdf, Summary};
use doppler_telemetry::{PerfDimension, PerfHistory};

use crate::json::Json;

/// Distribution data for one perf dimension.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DimensionReport {
    pub dimension: PerfDimension,
    pub unit: String,
    pub summary: Summary,
    /// `(x, F(x))` pairs of the ECDF on a 16-point grid.
    pub ecdf: Vec<(f64, f64)>,
}

/// The full dashboard payload for one assessment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceUseReport {
    pub dimension_summaries: Vec<DimensionReport>,
    /// `(sku, monthly cost, envelope score)` rows of the curve.
    pub curve_rows: Vec<(String, f64, f64)>,
    pub recommended_sku: Option<String>,
    pub explanation: String,
    pub confidence: Option<f64>,
}

impl ResourceUseReport {
    /// Assemble the report from the assessed history and recommendation.
    pub fn build(history: &PerfHistory, recommendation: &Recommendation) -> ResourceUseReport {
        let mut dimension_summaries = Vec::new();
        for (dim, series) in history.iter() {
            let Some(summary) = Summary::of(series.values()) else { continue };
            let ecdf = Ecdf::new(series.values()).map(|e| e.grid(16)).unwrap_or_default();
            dimension_summaries.push(DimensionReport {
                dimension: dim,
                unit: dim.unit().to_string(),
                summary,
                ecdf,
            });
        }
        ResourceUseReport {
            dimension_summaries,
            curve_rows: recommendation
                .curve
                .points()
                .iter()
                .map(|p| (p.sku_id.clone(), p.monthly_cost, p.score))
                .collect(),
            recommended_sku: recommendation.sku_id.clone(),
            explanation: recommendation.explanation.render(),
            confidence: recommendation.confidence,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let dims = self
            .dimension_summaries
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("dimension".into(), Json::Str(d.dimension.to_string())),
                    ("unit".into(), Json::Str(d.unit.clone())),
                    (
                        "summary".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(d.summary.count as f64)),
                            ("mean".into(), Json::Num(d.summary.mean)),
                            ("stddev".into(), Json::Num(d.summary.stddev)),
                            ("min".into(), Json::Num(d.summary.min)),
                            ("p25".into(), Json::Num(d.summary.p25)),
                            ("median".into(), Json::Num(d.summary.median)),
                            ("p75".into(), Json::Num(d.summary.p75)),
                            ("p95".into(), Json::Num(d.summary.p95)),
                            ("max".into(), Json::Num(d.summary.max)),
                        ]),
                    ),
                    (
                        "ecdf".into(),
                        Json::Arr(
                            d.ecdf
                                .iter()
                                .map(|&(x, f)| Json::Arr(vec![Json::Num(x), Json::Num(f)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let curve = self
            .curve_rows
            .iter()
            .map(|(sku, cost, score)| {
                Json::Arr(vec![Json::Str(sku.clone()), Json::Num(*cost), Json::Num(*score)])
            })
            .collect();
        Json::Obj(vec![
            ("dimension_summaries".into(), Json::Arr(dims)),
            ("curve_rows".into(), Json::Arr(curve)),
            (
                "recommended_sku".into(),
                self.recommended_sku.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            ("explanation".into(), Json::Str(self.explanation.clone())),
            ("confidence".into(), self.confidence.map(Json::Num).unwrap_or(Json::Null)),
        ])
        .render_pretty()
    }

    /// Reconstruct a report from [`ResourceUseReport::to_json`] output.
    pub fn from_json(text: &str) -> Result<ResourceUseReport, String> {
        let v = Json::parse(text)?;
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let num =
            |j: &Json, what: &str| j.as_f64().ok_or_else(|| format!("'{what}' is not a number"));

        let mut dimension_summaries = Vec::new();
        for d in field("dimension_summaries")?.as_arr().ok_or("summaries not an array")? {
            let name = d.get("dimension").and_then(Json::as_str).ok_or("missing dimension")?;
            let dimension = PerfDimension::ALL
                .into_iter()
                .find(|dim| dim.to_string() == name)
                .ok_or_else(|| format!("unknown dimension '{name}'"))?;
            let s = d.get("summary").ok_or("missing summary")?;
            let sfield = |key: &str| {
                s.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("missing summary field '{key}'"))
            };
            let mut ecdf = Vec::new();
            for pair in d.get("ecdf").and_then(Json::as_arr).ok_or("missing ecdf")? {
                let pair =
                    pair.as_arr().filter(|p| p.len() == 2).ok_or("ecdf row is not a pair")?;
                ecdf.push((num(&pair[0], "ecdf x")?, num(&pair[1], "ecdf F")?));
            }
            dimension_summaries.push(DimensionReport {
                dimension,
                unit: d.get("unit").and_then(Json::as_str).ok_or("missing unit")?.to_string(),
                summary: Summary {
                    count: sfield("count")? as usize,
                    mean: sfield("mean")?,
                    stddev: sfield("stddev")?,
                    min: sfield("min")?,
                    p25: sfield("p25")?,
                    median: sfield("median")?,
                    p75: sfield("p75")?,
                    p95: sfield("p95")?,
                    max: sfield("max")?,
                },
                ecdf,
            });
        }

        let mut curve_rows = Vec::new();
        for row in field("curve_rows")?.as_arr().ok_or("curve_rows not an array")? {
            let row = row.as_arr().filter(|r| r.len() == 3).ok_or("curve row is not a triple")?;
            curve_rows.push((
                row[0].as_str().ok_or("curve row SKU not a string")?.to_string(),
                num(&row[1], "curve row cost")?,
                num(&row[2], "curve row score")?,
            ));
        }

        Ok(ResourceUseReport {
            dimension_summaries,
            curve_rows,
            recommended_sku: field("recommended_sku")?
                .non_null()
                .map(|j| j.as_str().map(str::to_string).ok_or("SKU not a string"))
                .transpose()?,
            explanation: field("explanation")?
                .as_str()
                .ok_or("explanation not a string")?
                .to_string(),
            confidence: field("confidence")?
                .non_null()
                .map(|j| num(j, "confidence"))
                .transpose()?,
        })
    }
}

/// Render the dashboard as plain text.
pub fn render_text_report(report: &ResourceUseReport) -> String {
    let mut out = String::new();
    out.push_str("=== Resource Use Report ===\n");
    for d in &report.dimension_summaries {
        out.push_str(&format!(
            "{:<10} [{:>6}]  mean {:>10.2}  p95 {:>10.2}  max {:>10.2}\n",
            d.dimension.to_string(),
            d.unit,
            d.summary.mean,
            d.summary.p95,
            d.summary.max
        ));
    }
    out.push_str("\n--- Price-performance curve ---\n");
    for (sku, cost, score) in &report.curve_rows {
        let bar = (score * 32.0).round() as usize;
        out.push_str(&format!("{sku:>12} ${cost:>10.2}/mo |{:<32}| {score:.3}\n", "#".repeat(bar)));
    }
    match &report.recommended_sku {
        Some(sku) => out.push_str(&format!("\nRecommended SKU: {sku}\n")),
        None => out.push_str("\nNo SKU could be recommended.\n"),
    }
    if let Some(c) = report.confidence {
        out.push_str(&format!("Confidence: {:.0}%\n", c * 100.0));
    }
    out.push_str(&format!("\n{}\n", report.explanation));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_core::engine::EngineConfig;
    use doppler_core::DopplerEngine;
    use doppler_telemetry::TimeSeries;

    fn fixture() -> (PerfHistory, Recommendation) {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 64]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 64]));
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let rec = engine.recommend(&history, None);
        (history, rec)
    }

    #[test]
    fn report_covers_every_collected_dimension() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        assert_eq!(r.dimension_summaries.len(), 2);
        assert_eq!(r.curve_rows.len(), rec.curve.len());
    }

    #[test]
    fn text_rendering_mentions_the_recommendation() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        let text = render_text_report(&r);
        assert!(text.contains("DB_GP_2"), "{text}");
        assert!(text.contains("Price-performance curve"));
        assert!(text.contains("Cpu"));
    }

    #[test]
    fn json_round_trips() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        let json = r.to_json();
        let back = ResourceUseReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_rows_error_instead_of_panicking() {
        let short_curve_row = r#"{"dimension_summaries": [], "curve_rows": [["sku"]],
            "recommended_sku": null, "explanation": "", "confidence": null}"#;
        assert!(ResourceUseReport::from_json(short_curve_row).is_err());
        let short_ecdf_pair = r#"{"dimension_summaries": [{"dimension": "Cpu", "unit": "vCores",
            "summary": {"count": 1.0, "mean": 0.0, "stddev": 0.0, "min": 0.0, "p25": 0.0,
                        "median": 0.0, "p75": 0.0, "p95": 0.0, "max": 0.0},
            "ecdf": [[1.0]]}],
            "curve_rows": [], "recommended_sku": null, "explanation": "", "confidence": null}"#;
        assert!(ResourceUseReport::from_json(short_ecdf_pair).is_err());
    }

    #[test]
    fn ecdf_grid_is_monotone() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        for d in &r.dimension_summaries {
            for w in d.ecdf.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }
}
