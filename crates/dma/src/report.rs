//! The Resource Use Module (§4).
//!
//! "provides a visualization dashboard for customers to better understand
//! their workload resource needs. It outputs time series and distribution
//! plots of customer usage across various perf dimensions, as well as, the
//! price-performance curve, so that customers can understand why they
//! received a specific SKU recommendation."
//!
//! The terminal is our dashboard: summaries and ECDF grids render as text,
//! and the whole report serializes to JSON for machine consumers.

use doppler_core::Recommendation;
use doppler_stats::{Ecdf, Summary};
use doppler_telemetry::{PerfDimension, PerfHistory};

/// Distribution data for one perf dimension.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DimensionReport {
    pub dimension: PerfDimension,
    pub unit: String,
    pub summary: Summary,
    /// `(x, F(x))` pairs of the ECDF on a 16-point grid.
    pub ecdf: Vec<(f64, f64)>,
}

/// The full dashboard payload for one assessment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceUseReport {
    pub dimension_summaries: Vec<DimensionReport>,
    /// `(sku, monthly cost, envelope score)` rows of the curve.
    pub curve_rows: Vec<(String, f64, f64)>,
    pub recommended_sku: Option<String>,
    pub explanation: String,
    pub confidence: Option<f64>,
}

impl ResourceUseReport {
    /// Assemble the report from the assessed history and recommendation.
    pub fn build(history: &PerfHistory, recommendation: &Recommendation) -> ResourceUseReport {
        let mut dimension_summaries = Vec::new();
        for (dim, series) in history.iter() {
            let Some(summary) = Summary::of(series.values()) else { continue };
            let ecdf = Ecdf::new(series.values())
                .map(|e| e.grid(16))
                .unwrap_or_default();
            dimension_summaries.push(DimensionReport {
                dimension: dim,
                unit: dim.unit().to_string(),
                summary,
                ecdf,
            });
        }
        ResourceUseReport {
            dimension_summaries,
            curve_rows: recommendation
                .curve
                .points()
                .iter()
                .map(|p| (p.sku_id.clone(), p.monthly_cost, p.score))
                .collect(),
            recommended_sku: recommendation.sku_id.clone(),
            explanation: recommendation.explanation.render(),
            confidence: recommendation.confidence,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Render the dashboard as plain text.
pub fn render_text_report(report: &ResourceUseReport) -> String {
    let mut out = String::new();
    out.push_str("=== Resource Use Report ===\n");
    for d in &report.dimension_summaries {
        out.push_str(&format!(
            "{:<10} [{:>6}]  mean {:>10.2}  p95 {:>10.2}  max {:>10.2}\n",
            d.dimension.to_string(),
            d.unit,
            d.summary.mean,
            d.summary.p95,
            d.summary.max
        ));
    }
    out.push_str("\n--- Price-performance curve ---\n");
    for (sku, cost, score) in &report.curve_rows {
        let bar = (score * 32.0).round() as usize;
        out.push_str(&format!(
            "{sku:>12} ${cost:>10.2}/mo |{:<32}| {score:.3}\n",
            "#".repeat(bar)
        ));
    }
    match &report.recommended_sku {
        Some(sku) => out.push_str(&format!("\nRecommended SKU: {sku}\n")),
        None => out.push_str("\nNo SKU could be recommended.\n"),
    }
    if let Some(c) = report.confidence {
        out.push_str(&format!("Confidence: {:.0}%\n", c * 100.0));
    }
    out.push_str(&format!("\n{}\n", report.explanation));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
    use doppler_core::engine::EngineConfig;
    use doppler_core::DopplerEngine;
    use doppler_telemetry::TimeSeries;

    fn fixture() -> (PerfHistory, Recommendation) {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 64]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 64]));
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let rec = engine.recommend(&history, None);
        (history, rec)
    }

    #[test]
    fn report_covers_every_collected_dimension() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        assert_eq!(r.dimension_summaries.len(), 2);
        assert_eq!(r.curve_rows.len(), rec.curve.len());
    }

    #[test]
    fn text_rendering_mentions_the_recommendation() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        let text = render_text_report(&r);
        assert!(text.contains("DB_GP_2"), "{text}");
        assert!(text.contains("Price-performance curve"));
        assert!(text.contains("Cpu"));
    }

    #[test]
    fn json_round_trips() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        let json = r.to_json();
        let back: ResourceUseReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn ecdf_grid_is_monotone() {
        let (h, rec) = fixture();
        let r = ResourceUseReport::build(&h, &rec);
        for d in &r.dimension_summaries {
            for w in d.ecdf.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }
}
