//! Champion/challenger (A/B) fleets: route one cohort through two
//! recommendation backends and compare them side by side.
//!
//! The backend redesign makes a second engine cheap to *run*; this module
//! makes it cheap to *judge*. An [`AbFleet`] wraps two [`FleetAssessor`]s —
//! the **champion** (typically the production heuristic) and the
//! **challenger** (e.g. the learned backend) — and assesses the same cohort
//! through both, pairing the per-instance results by submission index:
//!
//! * both sides inherit the fleet layer's determinism (submission-order
//!   aggregation), so the comparison is bit-for-bit reproducible at any
//!   worker count;
//! * when both assessors resolve through one shared
//!   [`EngineRegistry`](doppler_core::EngineRegistry), the backend spec is
//!   part of the memo key, so the run costs exactly one training per
//!   `(key, backend)` and the sides can never cross-serve engines;
//! * the outcome is the champion's [`FleetReport`] with
//!   [`FleetReport::ab`] populated: side-by-side cost / confidence /
//!   recommendation-count columns, SKU agreement, and an adoption row
//!   estimating what switching to the challenger where it is cheaper would
//!   save — rendered in the ASCII dashboard and exported via
//!   [`doppler_dma::json`] ([`ab_summary_to_json`]).
//!
//! ```
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_fleet::{AbFleet, FleetAssessor, FleetConfig, FleetRequest};
//! use doppler_dma::AssessmentRequest;
//! use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
//!
//! let engine = || DopplerEngine::untrained(
//!     azure_paas_catalog(&CatalogSpec::default()),
//!     EngineConfig::production(DeploymentType::SqlDb),
//! );
//! let champion = FleetAssessor::new(engine(), FleetConfig::with_workers(2));
//! let challenger = FleetAssessor::new(engine(), FleetConfig::with_workers(2));
//! let cohort: Vec<FleetRequest> = (0..4)
//!     .map(|i| {
//!         let history = PerfHistory::new()
//!             .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.4; 96]));
//!         FleetRequest::new(
//!             DeploymentType::SqlDb,
//!             AssessmentRequest::from_history(
//!                 format!("db-{i}"),
//!                 history,
//!                 vec![],
//!                 None,
//!             ),
//!         )
//!     })
//!     .collect();
//! let outcome = AbFleet::new(champion, challenger).assess(cohort);
//! let ab = outcome.report.ab.as_ref().expect("A/B summary attached");
//! assert_eq!(ab.paired, 4);
//! assert_eq!(ab.sku_agreements, 4, "identical backends always agree");
//! ```

use doppler_dma::json::Json;

use crate::assessor::{FleetAssessment, FleetAssessor, FleetRequest};
use crate::report::FleetReport;

/// One side's aggregate columns in an A/B comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AbSideSummary {
    /// The backend id serving this side (`"heuristic"`, `"learned"`, ...),
    /// or a caller-supplied label.
    pub backend: String,
    /// Instances with a concrete SKU recommendation.
    pub recommended: usize,
    /// Instances that failed or were unplaceable.
    pub unrecommended: usize,
    /// Total monthly bill over the recommended instances.
    pub total_monthly_cost: f64,
    /// Mean monthly cost per recommended instance.
    pub mean_monthly_cost: Option<f64>,
    /// Mean confidence over instances that carried a score.
    pub mean_confidence: Option<f64>,
}

/// The adoption row: what switching to the challenger would change, over
/// the instances where both sides recommended.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AbAdoption {
    /// Paired instances where the challenger proposed a *different* SKU at
    /// a strictly lower monthly cost.
    pub challenger_cheaper: usize,
    /// Total monthly savings from adopting the challenger on exactly those
    /// instances (positive = challenger saves money).
    pub projected_monthly_savings: f64,
}

/// Side-by-side champion/challenger comparison, attached to
/// [`FleetReport::ab`] by [`AbFleet::assess`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AbSummary {
    pub champion: AbSideSummary,
    pub challenger: AbSideSummary,
    /// Instances paired across both runs (the cohort size).
    pub paired: usize,
    /// Pairs where both sides produced a concrete SKU.
    pub both_recommended: usize,
    /// Of those, pairs recommending the *same* SKU.
    pub sku_agreements: usize,
    pub adoption: AbAdoption,
}

impl AbSummary {
    /// SKU agreement as a fraction of pairs where both sides recommended;
    /// `None` when no pair did.
    pub fn agreement_rate(&self) -> Option<f64> {
        (self.both_recommended > 0)
            .then(|| self.sku_agreements as f64 / self.both_recommended as f64)
    }
}

/// The outcome of an A/B run: the champion's report with the comparison
/// attached, plus both sides' full assessments for drill-down.
#[derive(Debug, Clone)]
pub struct AbAssessment {
    /// The champion's [`FleetReport`] with [`FleetReport::ab`] populated —
    /// what a dashboard renders.
    pub report: FleetReport,
    pub champion: FleetAssessment,
    pub challenger: FleetAssessment,
}

/// A champion/challenger harness over two [`FleetAssessor`]s. See the
/// [module docs](self) for the full walkthrough.
pub struct AbFleet {
    champion: FleetAssessor,
    challenger: FleetAssessor,
    champion_label: Option<String>,
    challenger_label: Option<String>,
    adoption_threshold: f64,
}

impl AbFleet {
    /// Pair a champion and a challenger assessor. Build each side with its
    /// own backend (via [`FleetAssessor::new`],
    /// [`with_backend`](FleetAssessor::with_backend), or registry routes
    /// with distinct [`BackendSpec`](doppler_core::BackendSpec)s); sharing
    /// one registry between the sides is safe and costs one training per
    /// `(key, backend)`.
    pub fn new(champion: FleetAssessor, challenger: FleetAssessor) -> AbFleet {
        AbFleet {
            champion,
            challenger,
            champion_label: None,
            challenger_label: None,
            adoption_threshold: 0.0,
        }
    }

    /// Only count a pair toward the adoption row when the challenger's
    /// cheaper pick saves at least this much per month. The default (0.0)
    /// counts every strictly-cheaper disagreement; a staged rollout sets a
    /// materiality bar so trivial price differences don't drive promotion.
    pub fn with_adoption_threshold(mut self, min_savings_per_pair: f64) -> AbFleet {
        self.adoption_threshold = min_savings_per_pair;
        self
    }

    /// Override the side labels reported in the summary (defaults to each
    /// side's backend id where resolvable, else `"champion"` /
    /// `"challenger"`).
    pub fn with_labels(
        mut self,
        champion: impl Into<String>,
        challenger: impl Into<String>,
    ) -> AbFleet {
        self.champion_label = Some(champion.into());
        self.challenger_label = Some(challenger.into());
        self
    }

    /// The champion-side assessor.
    pub fn champion(&self) -> &FleetAssessor {
        &self.champion
    }

    /// The challenger-side assessor.
    pub fn challenger(&self) -> &FleetAssessor {
        &self.challenger
    }

    /// Assess the cohort through both sides and pair the results by
    /// submission index. Deterministic at any worker count: each side's
    /// results are in submission order, so pairing, agreement counts, and
    /// the adoption row are functions of the cohort alone.
    pub fn assess(&self, cohort: Vec<FleetRequest>) -> AbAssessment {
        let champion_run = self.champion.assess(cohort.iter().cloned());
        let challenger_run = self.challenger.assess(cohort);
        let summary = self.summarize(&champion_run, &challenger_run);
        let mut report = champion_run.report.clone();
        report.ab = Some(summary);
        AbAssessment { report, champion: champion_run, challenger: challenger_run }
    }

    fn side_label(
        &self,
        assessor: &FleetAssessor,
        explicit: &Option<String>,
        role: &str,
    ) -> String {
        if let Some(label) = explicit {
            return label.clone();
        }
        // A fixed pipeline knows its backend id directly; a registry route
        // carries it in its spec. Mixed-backend sides (different ids per
        // deployment) fall back to the role name.
        let mut ids: Vec<&str> =
            [doppler_catalog::DeploymentType::SqlDb, doppler_catalog::DeploymentType::SqlMi]
                .into_iter()
                .filter_map(|d| assessor.pipeline_for(d).map(|p| p.backend().id()))
                .chain(assessor.routes().map(|route| route.backend.id()))
                .collect();
        ids.sort_unstable();
        ids.dedup();
        match ids.as_slice() {
            [id] => (*id).to_string(),
            _ => role.to_string(),
        }
    }

    fn summarize(&self, champion: &FleetAssessment, challenger: &FleetAssessment) -> AbSummary {
        debug_assert_eq!(
            champion.results.len(),
            challenger.results.len(),
            "A/B sides assessed different cohort sizes"
        );
        let paired = champion.results.len().min(challenger.results.len());
        let mut both_recommended = 0usize;
        let mut sku_agreements = 0usize;
        let mut challenger_cheaper = 0usize;
        let mut projected_monthly_savings = 0.0f64;
        for (a, b) in champion.results.iter().zip(&challenger.results) {
            let a_rec = a.outcome.as_ref().ok().map(|r| &r.recommendation);
            let b_rec = b.outcome.as_ref().ok().map(|r| &r.recommendation);
            let (Some(a_rec), Some(b_rec)) = (a_rec, b_rec) else { continue };
            let (Some(a_sku), Some(b_sku)) = (&a_rec.sku_id, &b_rec.sku_id) else { continue };
            both_recommended += 1;
            if a_sku == b_sku {
                sku_agreements += 1;
            } else if let (Some(a_cost), Some(b_cost)) = (a_rec.monthly_cost, b_rec.monthly_cost) {
                if b_cost < a_cost && a_cost - b_cost >= self.adoption_threshold {
                    challenger_cheaper += 1;
                    projected_monthly_savings += a_cost - b_cost;
                }
            }
        }
        AbSummary {
            champion: side_summary(
                self.side_label(&self.champion, &self.champion_label, "champion"),
                champion,
            ),
            challenger: side_summary(
                self.side_label(&self.challenger, &self.challenger_label, "challenger"),
                challenger,
            ),
            paired,
            both_recommended,
            sku_agreements,
            adoption: AbAdoption { challenger_cheaper, projected_monthly_savings },
        }
    }
}

/// The bar a challenger must clear, month after month, to be promoted to
/// champion in a staged rollout — and the hysteresis that protects a
/// promoted challenger from flapping back on one bad month.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Minimum SKU-agreement rate ([`AbSummary::agreement_rate`]) a month
    /// must show to count toward promotion.
    pub min_agreement: f64,
    /// Minimum projected monthly savings
    /// ([`AbAdoption::projected_monthly_savings`]) a month must show.
    pub min_monthly_savings: f64,
    /// Consecutive qualifying months required before promotion.
    pub months_required: usize,
    /// Consecutive *failing* months required before a promoted challenger
    /// is demoted (hysteresis: one regression month never demotes when
    /// this is > 1).
    pub demotion_months: usize,
}

impl Default for PromotionPolicy {
    /// 90% agreement, any non-negative savings, three qualifying months to
    /// promote, three failing months to demote.
    fn default() -> PromotionPolicy {
        PromotionPolicy {
            min_agreement: 0.9,
            min_monthly_savings: 0.0,
            months_required: 3,
            demotion_months: 3,
        }
    }
}

/// Where the challenger currently stands in a staged rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RolloutStage {
    /// Still shadowing the champion.
    Challenger,
    /// Promoted: the challenger's picks are the fleet's picks.
    Promoted,
}

/// What one observed month did to the rollout state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum RolloutEvent {
    /// No stage change this month.
    #[default]
    None,
    /// The qualifying streak reached the policy bar — challenger promoted.
    Promoted,
    /// The failing streak exhausted the hysteresis — challenger demoted.
    Demoted,
}

/// The promotion state machine of a staged rollout: feed it one
/// [`AbSummary`] per scheduled month and it promotes the challenger after
/// [`PromotionPolicy::months_required`] consecutive qualifying months,
/// demoting only after [`PromotionPolicy::demotion_months`] consecutive
/// failing months.
///
/// Driven by [`FleetScheduler::with_challenger`](crate::FleetScheduler::with_challenger);
/// usable standalone for hand-cranked A/B campaigns.
#[derive(Debug, Clone)]
pub struct RolloutTracker {
    policy: PromotionPolicy,
    stage: RolloutStage,
    qualifying_streak: usize,
    failing_streak: usize,
    promoted_month: Option<String>,
}

impl RolloutTracker {
    /// A tracker starting in [`RolloutStage::Challenger`] with empty
    /// streaks.
    pub fn new(policy: PromotionPolicy) -> RolloutTracker {
        RolloutTracker {
            policy,
            stage: RolloutStage::Challenger,
            qualifying_streak: 0,
            failing_streak: 0,
            promoted_month: None,
        }
    }

    /// The policy the tracker judges against.
    pub fn policy(&self) -> &PromotionPolicy {
        &self.policy
    }

    /// The current stage.
    pub fn stage(&self) -> RolloutStage {
        self.stage
    }

    /// The month label of the (latest) promotion, if any.
    pub fn promoted_month(&self) -> Option<&str> {
        self.promoted_month.as_deref()
    }

    fn qualifies(&self, summary: &AbSummary) -> bool {
        summary.agreement_rate().is_some_and(|rate| rate >= self.policy.min_agreement)
            && summary.adoption.projected_monthly_savings >= self.policy.min_monthly_savings
    }

    /// Feed one scheduled month's A/B summary through the state machine.
    pub fn observe(&mut self, month: &str, summary: &AbSummary) -> RolloutEvent {
        let qualified = self.qualifies(summary);
        match self.stage {
            RolloutStage::Challenger => {
                if qualified {
                    self.qualifying_streak += 1;
                    if self.qualifying_streak >= self.policy.months_required.max(1) {
                        self.stage = RolloutStage::Promoted;
                        self.promoted_month = Some(month.to_string());
                        self.failing_streak = 0;
                        return RolloutEvent::Promoted;
                    }
                } else {
                    self.qualifying_streak = 0;
                }
                RolloutEvent::None
            }
            RolloutStage::Promoted => {
                if qualified {
                    self.failing_streak = 0;
                } else {
                    self.failing_streak += 1;
                    if self.failing_streak >= self.policy.demotion_months.max(1) {
                        self.stage = RolloutStage::Challenger;
                        self.qualifying_streak = 0;
                        self.failing_streak = 0;
                        return RolloutEvent::Demoted;
                    }
                }
                RolloutEvent::None
            }
        }
    }
}

fn side_summary(backend: String, run: &FleetAssessment) -> AbSideSummary {
    let report = &run.report;
    let mean_confidence = report.confidence.as_ref().map(|c| c.mean);
    AbSideSummary {
        backend,
        recommended: report.recommended,
        unrecommended: report.fleet_size - report.recommended,
        total_monthly_cost: report.total_monthly_cost,
        mean_monthly_cost: report.mean_monthly_cost,
        mean_confidence,
    }
}

fn side_to_json(side: &AbSideSummary) -> Json {
    Json::Obj(vec![
        ("backend".into(), Json::Str(side.backend.clone())),
        ("recommended".into(), Json::Num(side.recommended as f64)),
        ("unrecommended".into(), Json::Num(side.unrecommended as f64)),
        ("total_monthly_cost".into(), Json::Num(side.total_monthly_cost)),
        ("mean_monthly_cost".into(), side.mean_monthly_cost.map_or(Json::Null, Json::Num)),
        ("mean_confidence".into(), side.mean_confidence.map_or(Json::Null, Json::Num)),
    ])
}

fn side_from_json(json: &Json) -> Option<AbSideSummary> {
    Some(AbSideSummary {
        backend: json.get("backend")?.as_str()?.to_string(),
        recommended: json.get("recommended")?.as_f64()? as usize,
        unrecommended: json.get("unrecommended")?.as_f64()? as usize,
        total_monthly_cost: json.get("total_monthly_cost")?.as_f64()?,
        mean_monthly_cost: json.get("mean_monthly_cost")?.non_null().and_then(Json::as_f64),
        mean_confidence: json.get("mean_confidence")?.non_null().and_then(Json::as_f64),
    })
}

/// Export an [`AbSummary`] as a [`doppler_dma::json`] value — the A/B
/// analogue of the obs-snapshot export, losslessly re-parsable with
/// [`ab_summary_from_json`].
pub fn ab_summary_to_json(summary: &AbSummary) -> Json {
    Json::Obj(vec![
        ("champion".into(), side_to_json(&summary.champion)),
        ("challenger".into(), side_to_json(&summary.challenger)),
        ("paired".into(), Json::Num(summary.paired as f64)),
        ("both_recommended".into(), Json::Num(summary.both_recommended as f64)),
        ("sku_agreements".into(), Json::Num(summary.sku_agreements as f64)),
        (
            "adoption".into(),
            Json::Obj(vec![
                (
                    "challenger_cheaper".into(),
                    Json::Num(summary.adoption.challenger_cheaper as f64),
                ),
                (
                    "projected_monthly_savings".into(),
                    Json::Num(summary.adoption.projected_monthly_savings),
                ),
            ]),
        ),
    ])
}

/// Re-parse an exported A/B summary; `None` on any structural mismatch.
pub fn ab_summary_from_json(json: &Json) -> Option<AbSummary> {
    let adoption = json.get("adoption")?;
    Some(AbSummary {
        champion: side_from_json(json.get("champion")?)?,
        challenger: side_from_json(json.get("challenger")?)?,
        paired: json.get("paired")?.as_f64()? as usize,
        both_recommended: json.get("both_recommended")?.as_f64()? as usize,
        sku_agreements: json.get("sku_agreements")?.as_f64()? as usize,
        adoption: AbAdoption {
            challenger_cheaper: adoption.get("challenger_cheaper")?.as_f64()? as usize,
            projected_monthly_savings: adoption.get("projected_monthly_savings")?.as_f64()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType, SkuId};
    use doppler_core::{
        BackendSpec, ConfidenceConfig, DopplerEngine, EngineConfig, LearnedBackend, LearnedConfig,
        TrainingRecord,
    };
    use doppler_dma::AssessmentRequest;
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
    use std::sync::Arc;

    fn history(cpu: f64) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![2.0; 96]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![cpu * 200.0; 96]))
            .with(PerfDimension::LogRate, TimeSeries::ten_minute(vec![0.4; 96]))
    }

    fn engine() -> DopplerEngine {
        DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        )
    }

    fn cohort(n: usize) -> Vec<FleetRequest> {
        (0..n)
            .map(|i| {
                let cpu = 0.2 + (i % 7) as f64 * 0.45;
                FleetRequest::new(
                    DeploymentType::SqlDb,
                    AssessmentRequest::from_history(
                        format!("cust-{i:03}"),
                        history(cpu),
                        vec![],
                        Some(ConfidenceConfig { replicates: 4, window_samples: 24, seed: 11 }),
                    ),
                )
            })
            .collect()
    }

    fn learned(records: &[TrainingRecord], floor: f64) -> LearnedBackend {
        LearnedBackend::train(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
            LearnedConfig { similarity_floor: floor, ..LearnedConfig::default() },
            records,
        )
    }

    fn training() -> Vec<TrainingRecord> {
        (0..8)
            .map(|i| {
                let cpu = 0.2 + (i % 4) as f64 * 0.9;
                TrainingRecord {
                    history: history(cpu),
                    chosen_sku: SkuId(if cpu > 1.0 { "DB_GP_8".into() } else { "DB_GP_2".into() }),
                    file_layout: None,
                }
            })
            .collect()
    }

    #[test]
    fn identical_backends_agree_everywhere_with_zero_savings() {
        let ab = AbFleet::new(
            FleetAssessor::new(engine(), crate::FleetConfig::with_workers(2)),
            FleetAssessor::new(engine(), crate::FleetConfig::with_workers(3)),
        );
        let out = ab.assess(cohort(24));
        let s = out.report.ab.as_ref().expect("summary");
        assert_eq!(s.paired, 24);
        assert_eq!(s.both_recommended, s.sku_agreements);
        assert_eq!(s.agreement_rate(), Some(1.0));
        assert_eq!(s.adoption.challenger_cheaper, 0);
        assert_eq!(s.adoption.projected_monthly_savings, 0.0);
        assert_eq!(s.champion.backend, "heuristic");
        assert_eq!(s.champion.total_monthly_cost, s.challenger.total_monthly_cost);
    }

    #[test]
    fn ab_assessment_is_deterministic_across_worker_counts() {
        let reports: Vec<FleetReport> = [1usize, 4, 8]
            .into_iter()
            .map(|workers| {
                let ab = AbFleet::new(
                    FleetAssessor::new(engine(), crate::FleetConfig::with_workers(workers)),
                    FleetAssessor::new(
                        learned(&training(), 0.0),
                        crate::FleetConfig::with_workers(workers),
                    ),
                );
                ab.assess(cohort(48)).report
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
        assert_eq!(reports[0].render(), reports[2].render());
        let s = reports[0].ab.as_ref().expect("summary");
        assert_eq!(s.challenger.backend, "learned");
    }

    #[test]
    fn shared_registry_trains_once_per_backend_and_key() {
        use doppler_catalog::{CatalogKey, InMemoryCatalogProvider};
        use doppler_core::{EngineRegistry, TrainingSet};
        let registry =
            Arc::new(EngineRegistry::new(Arc::new(InMemoryCatalogProvider::production())));
        let key = CatalogKey::production(DeploymentType::SqlDb);
        let training = TrainingSet::new(training());
        let route = || crate::EngineRoute::production(key.clone()).trained(training.clone());
        let champion = FleetAssessor::over_registry(
            Arc::clone(&registry),
            crate::FleetConfig::with_workers(4),
        )
        .with_route(route());
        let challenger = FleetAssessor::over_registry(
            Arc::clone(&registry),
            crate::FleetConfig::with_workers(4),
        )
        .with_route(route().with_backend_spec(BackendSpec::Learned(LearnedConfig::default())));
        // No explicit labels: the sides are named from their routes' specs.
        let out = AbFleet::new(champion, challenger).assess(cohort(32));
        let stats = registry.stats();
        assert_eq!(stats.misses, 2, "one training per (key, backend)");
        assert_eq!(stats.failures, 0);
        let s = out.report.ab.as_ref().expect("summary");
        assert_eq!(s.paired, 32);
        assert_eq!(
            (s.champion.backend.as_str(), s.challenger.backend.as_str()),
            ("heuristic", "learned")
        );
    }

    #[test]
    fn json_export_round_trips_losslessly() {
        let ab = AbFleet::new(
            FleetAssessor::new(engine(), crate::FleetConfig::with_workers(2)),
            FleetAssessor::new(learned(&training(), 0.0), crate::FleetConfig::with_workers(2)),
        );
        let out = ab.assess(cohort(16));
        let summary = out.report.ab.clone().expect("summary");
        let rendered = ab_summary_to_json(&summary).render_pretty();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        let round = ab_summary_from_json(&parsed).expect("structurally complete");
        assert_eq!(round, summary);
    }

    #[test]
    fn ab_section_renders_in_the_dashboard() {
        let ab = AbFleet::new(
            FleetAssessor::new(engine(), crate::FleetConfig::with_workers(2)),
            FleetAssessor::new(learned(&training(), 0.0), crate::FleetConfig::with_workers(2)),
        );
        let out = ab.assess(cohort(16));
        let text = out.report.render();
        assert!(text.contains("Champion/challenger"), "render:\n{text}");
        assert!(text.contains("heuristic"));
        assert!(text.contains("learned"));
        assert!(text.contains("SKU agreement"));
        assert!(text.contains("adopt challenger"));
    }

    /// A synthetic month: `agreement` over 10 recommending pairs plus the
    /// given projected savings.
    fn month_summary(agreement: f64, savings: f64) -> AbSummary {
        let side = |backend: &str| AbSideSummary {
            backend: backend.into(),
            recommended: 10,
            unrecommended: 0,
            total_monthly_cost: 1000.0,
            mean_monthly_cost: Some(100.0),
            mean_confidence: None,
        };
        AbSummary {
            champion: side("heuristic"),
            challenger: side("learned"),
            paired: 10,
            both_recommended: 10,
            sku_agreements: (agreement * 10.0).round() as usize,
            adoption: AbAdoption {
                challenger_cheaper: usize::from(savings > 0.0),
                projected_monthly_savings: savings,
            },
        }
    }

    fn policy() -> PromotionPolicy {
        PromotionPolicy { min_monthly_savings: 25.0, ..PromotionPolicy::default() }
    }

    #[test]
    fn agreement_alone_never_promotes() {
        let mut tracker = RolloutTracker::new(policy());
        for month in 0..6 {
            // Perfect agreement, zero savings: below the savings bar.
            let event = tracker.observe(&format!("m{month}"), &month_summary(1.0, 0.0));
            assert_eq!(event, RolloutEvent::None);
        }
        assert_eq!(tracker.stage(), RolloutStage::Challenger);
        assert_eq!(tracker.promoted_month(), None);
    }

    #[test]
    fn savings_alone_never_promotes() {
        let mut tracker = RolloutTracker::new(policy());
        for month in 0..6 {
            // Big savings, but agreement below the 90% bar.
            let event = tracker.observe(&format!("m{month}"), &month_summary(0.5, 500.0));
            assert_eq!(event, RolloutEvent::None);
        }
        assert_eq!(tracker.stage(), RolloutStage::Challenger);
    }

    #[test]
    fn promotion_fires_after_the_required_streak() {
        let mut tracker = RolloutTracker::new(policy());
        assert_eq!(tracker.observe("Jan-22", &month_summary(0.9, 30.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("Feb-22", &month_summary(1.0, 40.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("Mar-22", &month_summary(0.95, 25.0)), RolloutEvent::Promoted);
        assert_eq!(tracker.stage(), RolloutStage::Promoted);
        assert_eq!(tracker.promoted_month(), Some("Mar-22"));
        // Further qualifying months are steady-state, not re-promotions.
        assert_eq!(tracker.observe("Apr-22", &month_summary(1.0, 40.0)), RolloutEvent::None);
    }

    #[test]
    fn a_bad_month_resets_the_qualifying_streak() {
        let mut tracker = RolloutTracker::new(policy());
        tracker.observe("m0", &month_summary(1.0, 40.0));
        tracker.observe("m1", &month_summary(1.0, 40.0));
        tracker.observe("m2", &month_summary(0.5, 40.0)); // regression
        assert_eq!(tracker.observe("m3", &month_summary(1.0, 40.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m4", &month_summary(1.0, 40.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m5", &month_summary(1.0, 40.0)), RolloutEvent::Promoted);
    }

    #[test]
    fn demotion_has_hysteresis() {
        let mut tracker = RolloutTracker::new(policy());
        for month in 0..3 {
            tracker.observe(&format!("m{month}"), &month_summary(1.0, 40.0));
        }
        assert_eq!(tracker.stage(), RolloutStage::Promoted);
        // Two failing months out of three: hysteresis holds the promotion.
        assert_eq!(tracker.observe("m3", &month_summary(0.4, 0.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m4", &month_summary(0.4, 0.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m5", &month_summary(1.0, 40.0)), RolloutEvent::None);
        assert_eq!(tracker.stage(), RolloutStage::Promoted);
        // Three *consecutive* failing months demote.
        assert_eq!(tracker.observe("m6", &month_summary(0.4, 0.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m7", &month_summary(0.4, 0.0)), RolloutEvent::None);
        assert_eq!(tracker.observe("m8", &month_summary(0.4, 0.0)), RolloutEvent::Demoted);
        assert_eq!(tracker.stage(), RolloutStage::Challenger);
        // The promotion month is retained for the audit trail.
        assert_eq!(tracker.promoted_month(), Some("m2"));
    }

    #[test]
    fn adoption_threshold_filters_trivial_savings() {
        let ab = AbFleet::new(
            FleetAssessor::new(engine(), crate::FleetConfig::with_workers(2)),
            FleetAssessor::new(learned(&training(), 0.0), crate::FleetConfig::with_workers(2)),
        )
        .with_adoption_threshold(f64::INFINITY);
        let out = ab.assess(cohort(16));
        let s = out.report.ab.as_ref().expect("summary");
        assert_eq!(s.adoption.challenger_cheaper, 0, "no pair clears an infinite bar");
        assert_eq!(s.adoption.projected_monthly_savings, 0.0);
    }
}
