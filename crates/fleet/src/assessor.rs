//! The fleet assessor: shard a fleet of assessment requests across a
//! worker pool, collect per-instance results order-stably, and aggregate
//! them into a [`FleetReport`].
//!
//! Doppler ran as a service issuing hundreds of thousands of SKU
//! recommendations (§4, Table 1); this module is the reproduction's version
//! of that serving layer. The trained engine is read-only after
//! construction, so assessment parallelizes embarrassingly: each worker
//! holds an `Arc` of the deployment's pipeline, pops tasks from a bounded
//! queue (so lazily-generated fleets never materialize fully), and streams
//! results back in completion order. Results are then folded in submission
//! order, making the output — and every aggregate derived from it —
//! bit-for-bit independent of the worker count.
//!
//! Since the streaming front-end landed, [`FleetAssessor::assess`] is a
//! one-shot convenience over [`FleetService`]: it spins up a service, feeds
//! the fleet through with backpressure, drains the tickets in order, and
//! shuts the service down. The worker pool itself lives in
//! [`crate::service`].

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use doppler_catalog::DeploymentType;
use doppler_core::DopplerEngine;
use doppler_dma::{AssessmentRequest, AssessmentResult, SkuRecommendationPipeline};

use crate::report::FleetReport;
use crate::service::{FleetService, TicketQueue};

/// One fleet member: which deployment target it is assessed against, plus
/// the ordinary DMA assessment request.
#[derive(Debug, Clone)]
pub struct FleetRequest {
    pub deployment: DeploymentType,
    pub request: AssessmentRequest,
}

impl FleetRequest {
    pub fn new(deployment: DeploymentType, request: AssessmentRequest) -> FleetRequest {
        FleetRequest { deployment, request }
    }
}

/// Why an instance produced no [`AssessmentResult`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AssessmentError {
    pub message: String,
}

/// One fleet member's outcome, tagged with its submission index.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Position in the input fleet (results are sorted by this).
    pub index: usize,
    pub instance_name: String,
    pub deployment: DeploymentType,
    pub outcome: Result<AssessmentResult, AssessmentError>,
}

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bounded work-queue depth; caps how far the feeder runs ahead of the
    /// workers when the fleet comes from a lazy iterator.
    pub queue_depth: usize,
    /// Keep the full per-instance results in [`FleetAssessment::results`].
    /// Disable for very large fleets where only the report matters.
    pub keep_results: bool,
}

impl FleetConfig {
    /// `workers` threads with a queue depth of four tasks per worker.
    pub fn with_workers(workers: usize) -> FleetConfig {
        let workers = workers.max(1);
        FleetConfig { workers, queue_depth: workers * 4, keep_results: true }
    }
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        FleetConfig::with_workers(workers)
    }
}

/// A completed fleet run: the aggregate report plus (optionally) every
/// per-instance result in submission order.
#[derive(Debug, Clone)]
pub struct FleetAssessment {
    pub report: FleetReport,
    /// Per-instance results in submission order; empty when
    /// [`FleetConfig::keep_results`] is false.
    pub results: Vec<FleetResult>,
}

/// The per-deployment routing table: one read-only pipeline per deployment
/// target, shared immutably (via `Arc`) across however many worker threads
/// — scoped or long-lived — the serving layer runs.
///
/// This is the single place a fleet request turns into a [`FleetResult`]:
/// both the one-shot [`FleetAssessor`] and the streaming
/// [`FleetService`](crate::service::FleetService) route through it, so the
/// two paths cannot drift apart.
#[derive(Clone)]
pub(crate) struct EngineSet {
    pipelines: Vec<(DeploymentType, Arc<SkuRecommendationPipeline>)>,
}

impl EngineSet {
    pub(crate) fn new() -> EngineSet {
        EngineSet { pipelines: Vec::new() }
    }

    /// Add (or replace) the pipeline serving its engine's deployment.
    pub(crate) fn insert(&mut self, pipeline: Arc<SkuRecommendationPipeline>) {
        let deployment = pipeline.deployment();
        self.pipelines.retain(|(d, _)| *d != deployment);
        self.pipelines.push((deployment, pipeline));
    }

    pub(crate) fn pipeline_for(
        &self,
        deployment: DeploymentType,
    ) -> Option<&Arc<SkuRecommendationPipeline>> {
        self.pipelines.iter().find(|(d, _)| *d == deployment).map(|(_, p)| p)
    }

    /// Assess one routed request; panics and missing routes become `Err`
    /// outcomes instead of poisoning the worker.
    pub(crate) fn assess_one(&self, index: usize, task: FleetRequest) -> FleetResult {
        let FleetRequest { deployment, request } = task;
        let instance_name = request.instance_name.clone();
        let outcome = match self.pipeline_for(deployment) {
            None => Err(AssessmentError {
                message: format!("no engine configured for deployment {deployment:?}"),
            }),
            Some(pipeline) => {
                std::panic::catch_unwind(AssertUnwindSafe(|| pipeline.assess(&request)))
                    .map_err(|payload| AssessmentError { message: panic_message(payload) })
            }
        };
        FleetResult { index, instance_name, deployment, outcome }
    }
}

/// The fleet-scale batch assessor: one read-only pipeline per deployment
/// target, shared immutably across the worker pool.
pub struct FleetAssessor {
    engines: EngineSet,
    config: FleetConfig,
}

impl FleetAssessor {
    /// An assessor serving one deployment target, taken from the engine's
    /// own configuration.
    pub fn new(engine: DopplerEngine, config: FleetConfig) -> FleetAssessor {
        FleetAssessor::from_pipeline(Arc::new(SkuRecommendationPipeline::new(engine)), config)
    }

    /// An assessor over an already-built (and possibly shared) pipeline —
    /// the warm-start path: no engine retraining, no catalog copies, just a
    /// reference-count bump.
    pub fn from_pipeline(
        pipeline: Arc<SkuRecommendationPipeline>,
        config: FleetConfig,
    ) -> FleetAssessor {
        let mut engines = EngineSet::new();
        engines.insert(pipeline);
        FleetAssessor { engines, config }
    }

    /// Add (or replace) the engine serving `engine.config().deployment` —
    /// lets one assessor serve a heterogeneous SqlDb + SqlMi fleet.
    pub fn with_engine(self, engine: DopplerEngine) -> FleetAssessor {
        self.with_pipeline(Arc::new(SkuRecommendationPipeline::new(engine)))
    }

    /// Add (or replace) a shared pipeline for its deployment target.
    pub fn with_pipeline(mut self, pipeline: Arc<SkuRecommendationPipeline>) -> FleetAssessor {
        self.engines.insert(pipeline);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The pipeline serving `deployment`, if configured.
    pub fn pipeline_for(
        &self,
        deployment: DeploymentType,
    ) -> Option<&Arc<SkuRecommendationPipeline>> {
        self.engines.pipeline_for(deployment)
    }

    /// Convert into the long-lived streaming front-end, keeping the engine
    /// set and configuration.
    pub fn into_service(self) -> FleetService {
        let FleetAssessor { engines, config } = self;
        FleetService::from_parts(engines, config)
    }

    /// Assess an entire fleet.
    ///
    /// The fleet iterator is consumed lazily from the calling thread and
    /// fed through a bounded queue to `config.workers` worker threads; a
    /// panicking or unroutable instance lands in the failure bucket instead
    /// of poisoning the run. Completed results are drained in submission
    /// order while the feed is still running, so with
    /// `keep_results = false` peak memory is O(queue depth + workers) plus
    /// the aggregation state — which includes one name per unplaceable
    /// instance and one row per failure, so a fleet that fails wholesale
    /// still accumulates its attention buckets. Output order and every
    /// aggregate are deterministic: the same fleet yields the same
    /// [`FleetAssessment`] for any worker count.
    pub fn assess<I>(&self, fleet: I) -> FleetAssessment
    where
        I: IntoIterator<Item = FleetRequest>,
    {
        let service = FleetService::from_parts(self.engines.clone(), self.config);
        let keep = self.config.keep_results;
        let mut kept = Vec::new();
        let mut outstanding = TicketQueue::new();

        // Feed with backpressure (submit blocks at queue capacity). With
        // keep_results on, retire tickets from the front as they resolve so
        // the outstanding window normally tracks the service's out-of-order
        // window (the kept vector is O(fleet) by request — and so is the
        // ticket buffer in the worst case, e.g. when the very first
        // assessment is the slowest). With keep_results off, tickets are
        // dropped at submission: no per-request buffering at all, and the
        // report alone flows out of the service. If the fleet iterator
        // panics mid-feed, dropping `service` closes the queue and joins
        // the workers, so the panic propagates instead of deadlocking.
        for request in fleet {
            match service.submit(request) {
                Ok(ticket) if keep => outstanding.push(ticket),
                Ok(_) => {}
                Err(_) => unreachable!("the service queue is not closed until the feed ends"),
            }
            while let Some(result) = outstanding.try_next() {
                kept.push(result);
            }
        }

        service.close();
        while let Some(result) = outstanding.next_blocking() {
            kept.push(result);
        }
        let report = service.shutdown();
        FleetAssessment { report, results: kept }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("assessment panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("assessment panicked: {s}")
    } else {
        "assessment panicked (opaque payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::EngineConfig;
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn assessor(workers: usize) -> FleetAssessor {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        FleetAssessor::new(engine, FleetConfig::with_workers(workers))
    }

    fn request(name: &str, cpu: f64) -> FleetRequest {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]));
        FleetRequest::new(
            DeploymentType::SqlDb,
            AssessmentRequest::from_history(name, history, vec![], None),
        )
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let fleet: Vec<FleetRequest> =
            (0..64).map(|i| request(&format!("inst-{i}"), 0.4 + (i % 7) as f64)).collect();
        let out = assessor(8).assess(fleet);
        assert_eq!(out.results.len(), 64);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.instance_name, format!("inst-{i}"));
        }
    }

    #[test]
    fn worker_count_does_not_change_the_assessment() {
        let fleet: Vec<FleetRequest> =
            (0..48).map(|i| request(&format!("i{i}"), 0.3 + i as f64 * 0.5)).collect();
        let a = assessor(1).assess(fleet.clone());
        let b = assessor(7).assess(fleet);
        assert_eq!(a.report, b.report);
        let skus = |out: &FleetAssessment| -> Vec<Option<String>> {
            out.results
                .iter()
                .map(|r| r.outcome.as_ref().unwrap().recommendation.sku_id.clone())
                .collect()
        };
        assert_eq!(skus(&a), skus(&b));
    }

    #[test]
    fn unroutable_deployments_land_in_the_failure_bucket() {
        let mut fleet = vec![request("ok", 0.5)];
        let mut mi = request("mi-stranded", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        fleet.push(mi);
        let out = assessor(2).assess(fleet);
        assert_eq!(out.report.recommended, 1);
        assert_eq!(out.report.failed, 1);
        assert!(out.results[1].outcome.as_ref().unwrap_err().message.contains("SqlMi"));
    }

    #[test]
    fn heterogeneous_fleets_route_per_deployment() {
        let mi_engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlMi),
        );
        let assessor = assessor(4).with_engine(mi_engine);
        let mut mi = request("mi-1", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        mi.request.input.file_sizes_gib = vec![64.0, 64.0];
        let out = assessor.assess(vec![request("db-1", 0.5), mi]);
        assert_eq!(out.report.failed, 0);
        let sku_of = |i: usize| {
            out.results[i].outcome.as_ref().unwrap().recommendation.sku_id.clone().unwrap()
        };
        assert!(sku_of(0).starts_with("DB_"));
        assert!(sku_of(1).starts_with("MI_"));
    }

    #[test]
    fn panicking_fleet_iterator_propagates_instead_of_deadlocking() {
        let assessor = assessor(2);
        let fleet = (0..8).map(|i| {
            if i == 4 {
                panic!("fleet source failed");
            }
            request(&format!("i{i}"), 0.5)
        });
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| assessor.assess(fleet)));
        assert!(outcome.is_err(), "the feed panic must propagate out of assess()");
    }

    #[test]
    fn empty_fleet_is_fine() {
        let out = assessor(4).assess(Vec::new());
        assert_eq!(out.report.fleet_size, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn keep_results_false_retains_only_the_report() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let mut config = FleetConfig::with_workers(2);
        config.keep_results = false;
        let out = FleetAssessor::new(engine, config)
            .assess((0..8).map(|i| request(&format!("i{i}"), 0.5)));
        assert!(out.results.is_empty());
        assert_eq!(out.report.fleet_size, 8);
        assert_eq!(out.report.recommended, 8);
    }

    #[test]
    fn shared_pipelines_warm_start_without_retraining() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let pipeline = Arc::new(SkuRecommendationPipeline::new(engine));
        let a = FleetAssessor::from_pipeline(Arc::clone(&pipeline), FleetConfig::with_workers(2));
        let b = FleetAssessor::from_pipeline(Arc::clone(&pipeline), FleetConfig::with_workers(4));
        // Both assessors reference the identical pipeline allocation.
        assert!(Arc::ptr_eq(
            a.pipeline_for(DeploymentType::SqlDb).unwrap(),
            b.pipeline_for(DeploymentType::SqlDb).unwrap()
        ));
        let fleet: Vec<FleetRequest> =
            (0..12).map(|i| request(&format!("w{i}"), 0.5 + i as f64 * 0.3)).collect();
        assert_eq!(a.assess(fleet.clone()).report, b.assess(fleet).report);
    }
}
