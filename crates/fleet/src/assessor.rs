//! The fleet assessor: shard a fleet of assessment requests across a
//! worker pool, collect per-instance results order-stably, and aggregate
//! them into a [`FleetReport`].
//!
//! Doppler ran as a service issuing hundreds of thousands of SKU
//! recommendations (§4, Table 1); this module is the reproduction's version
//! of that serving layer. The trained engine is read-only after
//! construction, so assessment parallelizes embarrassingly: each worker
//! holds an `Arc` of the deployment's pipeline, pops tasks from a bounded
//! queue (so lazily-generated fleets never materialize fully), and streams
//! results back in completion order. Results are then folded in submission
//! order, making the output — and every aggregate derived from it —
//! bit-for-bit independent of the worker count.
//!
//! Since the streaming front-end landed, [`FleetAssessor::assess`] is a
//! one-shot convenience over [`FleetService`]: it spins up a service, feeds
//! the fleet through with backpressure, drains the tickets in order, and
//! shuts the service down. The worker pool itself lives in
//! [`crate::service`].

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use doppler_catalog::{CatalogKey, DeploymentType};
use doppler_core::{
    BackendSpec, DopplerEngine, EngineRegistry, EngineTemplate, RecommendationBackend, TrainingSet,
};
use doppler_dma::{AssessmentRequest, AssessmentResult, SkuRecommendationPipeline};
use doppler_obs::{Histogram, ObsRegistry};

use crate::report::FleetReport;
use crate::service::{FleetService, TicketQueue};
use crate::shard::ShardPlan;

/// One fleet member: which deployment target it is assessed against, plus
/// the ordinary DMA assessment request.
///
/// A request may additionally pin a [`CatalogKey`] — the exact
/// `(deployment, region, version)` offer catalog it should be priced
/// against — so one fleet run can mix regions; keyless requests route to
/// their deployment's default engine. The optional `month` label feeds the
/// fleet report's adoption ledger (the paper's Table 1 view).
#[derive(Debug, Clone)]
pub struct FleetRequest {
    pub deployment: DeploymentType,
    /// Resolve through the registry against this exact offer catalog;
    /// `None` = the deployment's default route.
    pub catalog_key: Option<CatalogKey>,
    /// Adoption-ledger month label (e.g. `"Oct-21"`); `None` = untracked.
    /// Interned: every result and digest derived from this request shares
    /// the one allocation.
    pub month: Option<Arc<str>>,
    /// Enter the service queue's priority lane: popped ahead of the
    /// normal backlog (migration-deadline and drifted-customer work),
    /// while aggregation stays in submission order.
    pub priority: bool,
    pub request: AssessmentRequest,
}

impl FleetRequest {
    pub fn new(deployment: DeploymentType, request: AssessmentRequest) -> FleetRequest {
        FleetRequest { deployment, catalog_key: None, month: None, priority: false, request }
    }

    /// Pin the offer catalog this request is assessed against. The key's
    /// deployment becomes the request's deployment — the key is the more
    /// specific routing fact.
    pub fn with_catalog_key(mut self, key: CatalogKey) -> FleetRequest {
        self.deployment = key.deployment;
        self.catalog_key = Some(key);
        self
    }

    /// Tag the request with an adoption-ledger month (Table 1).
    pub fn with_month(mut self, month: impl Into<Arc<str>>) -> FleetRequest {
        self.month = Some(month.into());
        self
    }

    /// Route through the service queue's priority lane — the
    /// migration-deadline / drifted-customer fast path. Ordering jumps the
    /// backlog; the report aggregate is unaffected (submission order).
    ///
    /// ```
    /// use doppler_catalog::DeploymentType;
    /// use doppler_dma::AssessmentRequest;
    /// use doppler_fleet::FleetRequest;
    /// use doppler_telemetry::PerfHistory;
    ///
    /// let request = FleetRequest::new(
    ///     DeploymentType::SqlDb,
    ///     AssessmentRequest::from_history("deadline-cust", PerfHistory::new(), vec![], None),
    /// )
    /// .with_priority();
    /// assert!(request.priority);
    /// ```
    pub fn with_priority(mut self) -> FleetRequest {
        self.priority = true;
        self
    }
}

/// Why an instance produced no [`AssessmentResult`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AssessmentError {
    pub message: String,
}

/// One fleet member's outcome, tagged with its submission index.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Position in the input fleet (results are sorted by this). Under a
    /// sharded service this is the *global* submission index — gap-free
    /// across all shards, in submission order.
    pub index: usize,
    /// Interned once per assessment; digests and monitors share it by
    /// refcount instead of re-cloning the heap string per result.
    pub instance_name: Arc<str>,
    pub deployment: DeploymentType,
    /// The adoption-ledger month the request carried, if any.
    pub month: Option<Arc<str>>,
    pub outcome: Result<AssessmentResult, AssessmentError>,
}

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bounded work-queue depth; caps how far the feeder runs ahead of the
    /// workers when the fleet comes from a lazy iterator.
    pub queue_depth: usize,
    /// Keep the full per-instance results in [`FleetAssessment::results`].
    /// Disable for very large fleets where only the report matters.
    pub keep_results: bool,
}

impl FleetConfig {
    /// `workers` threads with a queue depth of four tasks per worker.
    pub fn with_workers(workers: usize) -> FleetConfig {
        let workers = workers.max(1);
        FleetConfig { workers, queue_depth: workers * 4, keep_results: true }
    }
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        FleetConfig::with_workers(workers)
    }
}

/// A completed fleet run: the aggregate report plus (optionally) every
/// per-instance result in submission order.
#[derive(Debug, Clone)]
pub struct FleetAssessment {
    pub report: FleetReport,
    /// Per-instance results in submission order; empty when
    /// [`FleetConfig::keep_results`] is false.
    pub results: Vec<FleetResult>,
}

/// One registry-backed route: how requests for a deployment resolve when
/// the serving layer goes through an [`EngineRegistry`]. Keyless requests
/// resolve `default_key`; keyed requests resolve their own key — in both
/// cases with this route's template and training cohort, so every region
/// and version of a deployment shares one configuration and one training
/// set (and therefore exactly one training run per distinct key,
/// registry-wide).
#[derive(Clone)]
pub struct EngineRoute {
    pub default_key: CatalogKey,
    pub template: EngineTemplate,
    pub training: TrainingSet,
    /// Which backend kind this route trains and serves (the heuristic
    /// engine by default). Part of the registry memo key, so routes with
    /// different backends — e.g. a champion and a challenger fleet sharing
    /// one registry — never cross-serve each other's engines.
    pub backend: BackendSpec,
}

impl EngineRoute {
    /// A production-template route with no training data.
    pub fn production(default_key: CatalogKey) -> EngineRoute {
        EngineRoute {
            default_key,
            template: EngineTemplate::production(),
            training: TrainingSet::empty(),
            backend: BackendSpec::Heuristic,
        }
    }

    /// The same route with a training cohort.
    pub fn trained(mut self, training: TrainingSet) -> EngineRoute {
        self.training = training;
        self
    }

    /// The same route with a different engine template.
    pub fn with_template(mut self, template: EngineTemplate) -> EngineRoute {
        self.template = template;
        self
    }

    /// The same route serving a different backend kind.
    pub fn with_backend_spec(mut self, backend: BackendSpec) -> EngineRoute {
        self.backend = backend;
        self
    }
}

/// The routing table: fixed pre-built pipelines per deployment (the seed
/// path) and/or an [`EngineRegistry`] with per-deployment [`EngineRoute`]s
/// (the multi-region path). Shared immutably across however many worker
/// threads — scoped or long-lived — the serving layer runs; all engine
/// state lives behind `Arc`s, so cloning the set is cheap.
///
/// This is the single place a fleet request turns into a [`FleetResult`]:
/// both the one-shot [`FleetAssessor`] and the streaming
/// [`FleetService`](crate::service::FleetService) route through it, so the
/// two paths cannot drift apart. Resolution order for a request:
///
/// 1. a pinned [`FleetRequest::catalog_key`] resolves through the registry
///    (an error outcome if no registry or no route for its deployment);
/// 2. otherwise a fixed pipeline for the deployment, if one is registered;
/// 3. otherwise the registry route's `default_key`;
/// 4. otherwise the request fails into the report's failure bucket.
#[derive(Clone)]
pub(crate) struct EngineSet {
    pipelines: Vec<(DeploymentType, Arc<SkuRecommendationPipeline>)>,
    registry: Option<Arc<EngineRegistry>>,
    routes: Vec<(DeploymentType, EngineRoute)>,
    obs: EngineSetObs,
}

/// Per-stage latency histograms for the engine-resolution and assessment
/// stages of [`EngineSet::assess_one`]. Default handles are no-ops; they
/// become live via [`EngineSet::instrument`].
#[derive(Clone, Default)]
struct EngineSetObs {
    /// `fleet.stage.resolve` — routing one request to its pipeline
    /// (including any registry training the first request per key pays).
    resolve: Histogram,
    /// `fleet.stage.assess` — running one assessment through the resolved
    /// pipeline.
    assess: Histogram,
}

impl EngineSet {
    pub(crate) fn new() -> EngineSet {
        EngineSet {
            pipelines: Vec::new(),
            registry: None,
            routes: Vec::new(),
            obs: EngineSetObs::default(),
        }
    }

    /// Register the per-stage histograms with `obs` (a disabled registry
    /// leaves the set uninstrumented).
    pub(crate) fn instrument(&mut self, obs: &ObsRegistry) {
        self.obs = EngineSetObs {
            resolve: obs.histogram("fleet.stage.resolve"),
            assess: obs.histogram("fleet.stage.assess"),
        };
    }

    /// Add (or replace) the pipeline serving its engine's deployment.
    pub(crate) fn insert(&mut self, pipeline: Arc<SkuRecommendationPipeline>) {
        let deployment = pipeline.deployment();
        self.pipelines.retain(|(d, _)| *d != deployment);
        self.pipelines.push((deployment, pipeline));
    }

    pub(crate) fn set_registry(&mut self, registry: Arc<EngineRegistry>) {
        self.registry = Some(registry);
    }

    pub(crate) fn registry(&self) -> Option<&Arc<EngineRegistry>> {
        self.registry.as_ref()
    }

    /// The configured registry routes, in insertion order.
    pub(crate) fn routes(&self) -> impl Iterator<Item = &EngineRoute> {
        self.routes.iter().map(|(_, route)| route)
    }

    /// Add (or replace) the registry route serving its default key's
    /// deployment.
    pub(crate) fn insert_route(&mut self, route: EngineRoute) {
        let deployment = route.default_key.deployment;
        self.routes.retain(|(d, _)| *d != deployment);
        self.routes.push((deployment, route));
    }

    pub(crate) fn pipeline_for(
        &self,
        deployment: DeploymentType,
    ) -> Option<&Arc<SkuRecommendationPipeline>> {
        self.pipelines.iter().find(|(d, _)| *d == deployment).map(|(_, p)| p)
    }

    pub(crate) fn route_for(&self, deployment: DeploymentType) -> Option<&EngineRoute> {
        self.routes.iter().find(|(d, _)| *d == deployment).map(|(_, r)| r)
    }

    /// Resolve the pipeline a request routes to (see the type docs for the
    /// resolution order). Warm registry resolutions are a sharded read
    /// lock plus an `Arc` bump; the first request per key pays the one
    /// training run.
    pub(crate) fn resolve(
        &self,
        deployment: DeploymentType,
        catalog_key: &Option<CatalogKey>,
    ) -> Result<SkuRecommendationPipeline, AssessmentError> {
        if let Some(key) = catalog_key {
            let registry = self.registry.as_deref().ok_or_else(|| AssessmentError {
                message: format!(
                    "request pinned catalog {key} but no engine registry is configured"
                ),
            })?;
            let route = self.route_for(key.deployment).ok_or_else(|| AssessmentError {
                message: format!("no engine route configured for deployment {:?}", key.deployment),
            })?;
            let engine = registry
                .get_or_train_backend(key, &route.template, &route.training, &route.backend)
                .map_err(|e| AssessmentError { message: e.to_string() })?;
            return Ok(SkuRecommendationPipeline::from_shared(engine));
        }
        if let Some(pipeline) = self.pipeline_for(deployment) {
            return Ok(SkuRecommendationPipeline::clone(pipeline));
        }
        match (self.registry.as_deref(), self.route_for(deployment)) {
            (Some(registry), Some(route)) => {
                let engine = registry
                    .get_or_train_backend(
                        &route.default_key,
                        &route.template,
                        &route.training,
                        &route.backend,
                    )
                    .map_err(|e| AssessmentError { message: e.to_string() })?;
                Ok(SkuRecommendationPipeline::from_shared(engine))
            }
            _ => Err(AssessmentError {
                message: format!("no engine configured for deployment {deployment:?}"),
            }),
        }
    }

    /// Assess one routed request; panics, missing routes, and registry
    /// resolution errors become `Err` outcomes instead of poisoning the
    /// worker. The catch covers resolution too: a registry training run
    /// (or a provider) that panics must kill this request, not the worker
    /// — a dead worker would strand the in-order aggregation and, with
    /// one worker, deadlock the feeder on queue backpressure.
    pub(crate) fn assess_one(&self, index: usize, task: FleetRequest) -> FleetResult {
        let FleetRequest { deployment, catalog_key, month, request, priority: _ } = task;
        let instance_name: Arc<str> = Arc::from(request.instance_name.as_str());
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let resolved = {
                let _span = self.obs.resolve.start();
                self.resolve(deployment, &catalog_key)
            };
            resolved.map(|pipeline| {
                let _span = self.obs.assess.start();
                pipeline.assess(&request)
            })
        }))
        .unwrap_or_else(|payload| Err(AssessmentError { message: panic_message(payload) }));
        FleetResult { index, instance_name, deployment, month, outcome }
    }
}

/// The fleet-scale batch assessor: one read-only pipeline per deployment
/// target, shared immutably across the worker pool.
pub struct FleetAssessor {
    engines: EngineSet,
    config: FleetConfig,
    plan: ShardPlan,
    obs: ObsRegistry,
}

impl FleetAssessor {
    /// An assessor serving one deployment target, taken from the backend's
    /// own configuration.
    pub fn new(
        backend: impl RecommendationBackend + 'static,
        config: FleetConfig,
    ) -> FleetAssessor {
        FleetAssessor::from_pipeline(Arc::new(SkuRecommendationPipeline::new(backend)), config)
    }

    /// An assessor over an already-built (and possibly shared) pipeline —
    /// the warm-start path: no engine retraining, no catalog copies, just a
    /// reference-count bump.
    pub fn from_pipeline(
        pipeline: Arc<SkuRecommendationPipeline>,
        config: FleetConfig,
    ) -> FleetAssessor {
        let mut engines = EngineSet::new();
        engines.insert(pipeline);
        FleetAssessor { engines, config, plan: ShardPlan::single(), obs: ObsRegistry::disabled() }
    }

    /// An assessor that resolves every engine through a shared
    /// [`EngineRegistry`] — the multi-region path. Add one
    /// [`EngineRoute`] per deployment with
    /// [`with_route`](FleetAssessor::with_route); requests pinning a
    /// [`FleetRequest::catalog_key`] then resolve their exact offer
    /// catalog, keyless requests resolve their deployment route's default
    /// key, and a mixed-region fleet costs exactly one training per
    /// distinct key (asserted via [`EngineRegistry::stats`]).
    pub fn over_registry(registry: Arc<EngineRegistry>, config: FleetConfig) -> FleetAssessor {
        let mut engines = EngineSet::new();
        engines.set_registry(registry);
        FleetAssessor { engines, config, plan: ShardPlan::single(), obs: ObsRegistry::disabled() }
    }

    /// Record hot-path metrics into `obs`: per-stage latency histograms
    /// (queue wait → engine resolution → assessment → aggregation),
    /// queue-lane depth gauges and wait histograms, valve trips, and
    /// per-worker task counters. Instrumentation is strictly write-aside —
    /// assessments, reports, and their byte-level renders are identical
    /// whether `obs` is enabled, disabled, or absent. Carried into the
    /// service by [`into_service`](FleetAssessor::into_service) and every
    /// [`assess`](FleetAssessor::assess) run.
    pub fn with_obs(mut self, obs: &ObsRegistry) -> FleetAssessor {
        self.obs = obs.clone();
        self.engines.instrument(obs);
        self
    }

    /// Add (or replace) the registry route serving its default key's
    /// deployment. Panics if the assessor was not built with
    /// [`over_registry`](FleetAssessor::over_registry).
    pub fn with_route(mut self, route: EngineRoute) -> FleetAssessor {
        assert!(
            self.engines.registry().is_some(),
            "with_route requires an assessor built with FleetAssessor::over_registry"
        );
        self.engines.insert_route(route);
        self
    }

    /// The shared registry, when this assessor resolves through one.
    pub fn registry(&self) -> Option<&Arc<EngineRegistry>> {
        self.engines.registry()
    }

    /// The registry routes configured via
    /// [`with_route`](FleetAssessor::with_route), in insertion order.
    /// Empty for fixed-pipeline assessors.
    pub fn routes(&self) -> impl Iterator<Item = &EngineRoute> {
        self.engines.routes()
    }

    /// Add (or replace) the backend serving `backend.config().deployment`
    /// — lets one assessor serve a heterogeneous SqlDb + SqlMi fleet, or
    /// mix backend kinds across deployments.
    pub fn with_backend(self, backend: impl RecommendationBackend + 'static) -> FleetAssessor {
        self.with_pipeline(Arc::new(SkuRecommendationPipeline::new(backend)))
    }

    /// Add (or replace) the engine serving `engine.config().deployment`.
    #[deprecated(since = "0.1.0", note = "use `with_backend`; it accepts any backend")]
    pub fn with_engine(self, engine: DopplerEngine) -> FleetAssessor {
        self.with_backend(engine)
    }

    /// Add (or replace) a shared pipeline for its deployment target.
    pub fn with_pipeline(mut self, pipeline: Arc<SkuRecommendationPipeline>) -> FleetAssessor {
        self.engines.insert(pipeline);
        self
    }

    /// Partition the service across independent shards (per-shard queue,
    /// worker pool, and aggregator), routed by each request's
    /// [`CatalogKey`] region. [`FleetConfig::workers`] and
    /// [`FleetConfig::queue_depth`] apply *per shard*. The default
    /// [`ShardPlan::single`] keeps today's single-shard behavior; any plan
    /// produces bit-for-bit the same reports and results.
    pub fn with_shard_plan(mut self, plan: ShardPlan) -> FleetAssessor {
        self.plan = plan;
        self
    }

    /// The shard plan in use.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The pipeline serving `deployment`, if configured.
    pub fn pipeline_for(
        &self,
        deployment: DeploymentType,
    ) -> Option<&Arc<SkuRecommendationPipeline>> {
        self.engines.pipeline_for(deployment)
    }

    /// Convert into the long-lived streaming front-end, keeping the engine
    /// set and configuration.
    pub fn into_service(self) -> FleetService {
        let FleetAssessor { engines, config, plan, obs } = self;
        FleetService::from_parts(engines, config, plan, obs)
    }

    /// Assess an entire fleet.
    ///
    /// The fleet iterator is consumed lazily from the calling thread and
    /// fed through a bounded queue to `config.workers` worker threads; a
    /// panicking or unroutable instance lands in the failure bucket instead
    /// of poisoning the run. Completed results are drained in submission
    /// order while the feed is still running, so with
    /// `keep_results = false` peak memory is O(queue depth + workers) plus
    /// the aggregation state — which includes one name per unplaceable
    /// instance and one row per failure, so a fleet that fails wholesale
    /// still accumulates its attention buckets. Output order and every
    /// aggregate are deterministic: the same fleet yields the same
    /// [`FleetAssessment`] for any worker count.
    pub fn assess<I>(&self, fleet: I) -> FleetAssessment
    where
        I: IntoIterator<Item = FleetRequest>,
    {
        let service = FleetService::from_parts(
            self.engines.clone(),
            self.config,
            self.plan.clone(),
            self.obs.clone(),
        );
        let keep = self.config.keep_results;
        let mut kept = Vec::new();
        let mut outstanding = TicketQueue::new();

        // Feed with backpressure (submit blocks at queue capacity). With
        // keep_results on, retire tickets from the front as they resolve so
        // the outstanding window normally tracks the service's out-of-order
        // window (the kept vector is O(fleet) by request — and so is the
        // ticket buffer in the worst case, e.g. when the very first
        // assessment is the slowest). With keep_results off, tickets are
        // dropped at submission: no per-request buffering at all, and the
        // report alone flows out of the service. If the fleet iterator
        // panics mid-feed, dropping `service` closes the queue and joins
        // the workers, so the panic propagates instead of deadlocking.
        for request in fleet {
            match service.submit(request) {
                Ok(ticket) if keep => outstanding.push(ticket),
                Ok(_) => {}
                Err(_) => unreachable!("the service queue is not closed until the feed ends"),
            }
            while let Some(result) = outstanding.try_next() {
                kept.push(result);
            }
        }

        service.close();
        while let Some(result) = outstanding.next_blocking() {
            kept.push(result);
        }
        let report = service.shutdown();
        FleetAssessment { report, results: kept }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("assessment panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("assessment panicked: {s}")
    } else {
        "assessment panicked (opaque payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::EngineConfig;
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn assessor(workers: usize) -> FleetAssessor {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        FleetAssessor::new(engine, FleetConfig::with_workers(workers))
    }

    fn request(name: &str, cpu: f64) -> FleetRequest {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]));
        FleetRequest::new(
            DeploymentType::SqlDb,
            AssessmentRequest::from_history(name, history, vec![], None),
        )
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let fleet: Vec<FleetRequest> =
            (0..64).map(|i| request(&format!("inst-{i}"), 0.4 + (i % 7) as f64)).collect();
        let out = assessor(8).assess(fleet);
        assert_eq!(out.results.len(), 64);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(*r.instance_name, format!("inst-{i}"));
        }
    }

    #[test]
    fn worker_count_does_not_change_the_assessment() {
        let fleet: Vec<FleetRequest> =
            (0..48).map(|i| request(&format!("i{i}"), 0.3 + i as f64 * 0.5)).collect();
        let a = assessor(1).assess(fleet.clone());
        let b = assessor(7).assess(fleet);
        assert_eq!(a.report, b.report);
        let skus = |out: &FleetAssessment| -> Vec<Option<String>> {
            out.results
                .iter()
                .map(|r| r.outcome.as_ref().unwrap().recommendation.sku_id.clone())
                .collect()
        };
        assert_eq!(skus(&a), skus(&b));
    }

    #[test]
    fn unroutable_deployments_land_in_the_failure_bucket() {
        let mut fleet = vec![request("ok", 0.5)];
        let mut mi = request("mi-stranded", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        fleet.push(mi);
        let out = assessor(2).assess(fleet);
        assert_eq!(out.report.recommended, 1);
        assert_eq!(out.report.failed, 1);
        assert!(out.results[1].outcome.as_ref().unwrap_err().message.contains("SqlMi"));
    }

    #[test]
    fn heterogeneous_fleets_route_per_deployment() {
        let mi_engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlMi),
        );
        let assessor = assessor(4).with_backend(mi_engine);
        let mut mi = request("mi-1", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        mi.request.input.file_sizes_gib = vec![64.0, 64.0];
        let out = assessor.assess(vec![request("db-1", 0.5), mi]);
        assert_eq!(out.report.failed, 0);
        let sku_of = |i: usize| {
            out.results[i].outcome.as_ref().unwrap().recommendation.sku_id.clone().unwrap()
        };
        assert!(sku_of(0).starts_with("DB_"));
        assert!(sku_of(1).starts_with("MI_"));
    }

    #[test]
    fn panicking_fleet_iterator_propagates_instead_of_deadlocking() {
        let assessor = assessor(2);
        let fleet = (0..8).map(|i| {
            if i == 4 {
                panic!("fleet source failed");
            }
            request(&format!("i{i}"), 0.5)
        });
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| assessor.assess(fleet)));
        assert!(outcome.is_err(), "the feed panic must propagate out of assess()");
    }

    #[test]
    fn empty_fleet_is_fine() {
        let out = assessor(4).assess(Vec::new());
        assert_eq!(out.report.fleet_size, 0);
        assert!(out.results.is_empty());
    }

    #[test]
    fn keep_results_false_retains_only_the_report() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let mut config = FleetConfig::with_workers(2);
        config.keep_results = false;
        let out = FleetAssessor::new(engine, config)
            .assess((0..8).map(|i| request(&format!("i{i}"), 0.5)));
        assert!(out.results.is_empty());
        assert_eq!(out.report.fleet_size, 8);
        assert_eq!(out.report.recommended, 8);
    }

    fn regional_registry() -> Arc<EngineRegistry> {
        use doppler_catalog::{CatalogSpec, CatalogVersion, InMemoryCatalogProvider, Region};
        let provider = InMemoryCatalogProvider::production()
            .with_region(
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.08,
            )
            .with_region(
                Region::new("eastasia"),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.12,
            );
        Arc::new(EngineRegistry::new(Arc::new(provider)))
    }

    #[test]
    fn registry_assessor_serves_keyless_and_keyed_requests() {
        use doppler_catalog::Region;
        let registry = regional_registry();
        let assessor =
            FleetAssessor::over_registry(Arc::clone(&registry), FleetConfig::with_workers(4))
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let west =
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("westeurope"));
        let fleet = vec![
            request("global-0", 0.5),
            request("west-0", 0.5).with_catalog_key(west.clone()),
            request("global-1", 0.5),
            request("west-1", 0.5).with_catalog_key(west),
        ];
        let out = assessor.assess(fleet);
        assert_eq!(out.report.failed, 0);
        assert_eq!(out.report.recommended, 4);
        // Same workload, same SKU — but the West Europe instances pay the
        // 8 % regional premium.
        let cost = |i: usize| {
            out.results[i].outcome.as_ref().unwrap().recommendation.monthly_cost.unwrap()
        };
        assert_eq!(cost(0), cost(2));
        assert!((cost(1) - cost(0) * 1.08).abs() < 1e-6, "west {} vs global {}", cost(1), cost(0));
        // Two distinct keys touched → exactly two trainings, fleet-wide.
        let stats = registry.stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.hits + stats.coalesced, 2);
    }

    #[test]
    fn pinned_key_without_a_registry_fails_into_the_bucket() {
        let assessor = assessor(2);
        let keyed =
            request("pinned", 0.5).with_catalog_key(CatalogKey::production(DeploymentType::SqlDb));
        let out = assessor.assess(vec![keyed]);
        assert_eq!(out.report.failed, 1);
        let message = &out.results[0].outcome.as_ref().unwrap_err().message;
        assert!(message.contains("no engine registry"), "{message}");
    }

    #[test]
    fn registry_assessor_without_a_route_fails_that_deployment_only() {
        let registry = regional_registry();
        let assessor =
            FleetAssessor::over_registry(Arc::clone(&registry), FleetConfig::with_workers(2))
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let mut mi = request("mi-unrouted", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        let out = assessor.assess(vec![request("db-ok", 0.5), mi]);
        assert_eq!(out.report.recommended, 1);
        assert_eq!(out.report.failed, 1);
        assert!(out.results[1].outcome.as_ref().unwrap_err().message.contains("SqlMi"));
    }

    #[test]
    fn unknown_regions_resolve_to_error_outcomes() {
        use doppler_catalog::Region;
        let registry = regional_registry();
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(2))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let lost = request("lost", 0.5).with_catalog_key(
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("atlantis")),
        );
        let out = assessor.assess(vec![lost]);
        assert_eq!(out.report.failed, 1);
        assert!(out.results[0]
            .outcome
            .as_ref()
            .unwrap_err()
            .message
            .contains("no catalog registered"));
    }

    #[test]
    fn panicking_resolution_fails_the_request_not_the_worker() {
        use doppler_catalog::{CatalogProvider, InMemoryCatalogProvider, Region, ResolvedCatalog};
        struct PanickyProvider(InMemoryCatalogProvider);
        impl CatalogProvider for PanickyProvider {
            fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog> {
                if key.region == Region::new("boom") {
                    panic!("provider feed corrupted");
                }
                self.0.resolve(key)
            }
        }
        let registry = Arc::new(EngineRegistry::new(Arc::new(PanickyProvider(
            InMemoryCatalogProvider::production(),
        ))));
        // One worker: if the panic killed it, the second request would
        // never be assessed (and a longer feed would deadlock on
        // backpressure).
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(1))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let boom = request("boom", 0.5).with_catalog_key(
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("boom")),
        );
        let out = assessor.assess(vec![boom, request("fine", 0.5)]);
        assert_eq!(out.report.failed, 1);
        assert_eq!(out.report.recommended, 1);
        let message = &out.results[0].outcome.as_ref().unwrap_err().message;
        assert!(message.contains("provider feed corrupted"), "{message}");
        assert!(out.results[1].outcome.is_ok());
    }

    #[test]
    fn fixed_pipelines_take_precedence_for_keyless_requests() {
        // An assessor with both a fixed pipeline and a registry route for
        // SqlDb: keyless requests use the fixed pipeline (no training),
        // keyed requests go through the registry.
        let registry = regional_registry();
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let assessor =
            FleetAssessor::over_registry(Arc::clone(&registry), FleetConfig::with_workers(2))
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
                .with_backend(engine);
        let out = assessor.assess(vec![request("keyless", 0.5)]);
        assert_eq!(out.report.recommended, 1);
        assert_eq!(registry.stats().misses, 0, "fixed pipeline served it; nothing trained");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_engine_still_routes() {
        let mi_engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlMi),
        );
        let assessor = assessor(2).with_engine(mi_engine);
        assert!(assessor.pipeline_for(DeploymentType::SqlMi).is_some());
    }

    #[test]
    fn learned_backend_route_resolves_through_the_registry() {
        use doppler_core::{LearnedConfig, TrainingRecord};
        let registry = Arc::new(EngineRegistry::new(Arc::new(
            doppler_catalog::InMemoryCatalogProvider::production(),
        )));
        let training = TrainingSet::new(vec![TrainingRecord {
            history: PerfHistory::new()
                .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 96]))
                .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96])),
            chosen_sku: doppler_catalog::SkuId("DB_GP_2".into()),
            file_layout: None,
        }]);
        let assessor =
            FleetAssessor::over_registry(Arc::clone(&registry), FleetConfig::with_workers(2))
                .with_route(
                    EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb))
                        .trained(training)
                        .with_backend_spec(BackendSpec::Learned(LearnedConfig::default())),
                );
        let out = assessor.assess(vec![request("learned-1", 0.5)]);
        assert_eq!(out.report.recommended, 1);
        let stats = registry.stats();
        assert_eq!(stats.misses, 1, "one learned training");
    }

    #[test]
    fn shared_pipelines_warm_start_without_retraining() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let pipeline = Arc::new(SkuRecommendationPipeline::new(engine));
        let a = FleetAssessor::from_pipeline(Arc::clone(&pipeline), FleetConfig::with_workers(2));
        let b = FleetAssessor::from_pipeline(Arc::clone(&pipeline), FleetConfig::with_workers(4));
        // Both assessors reference the identical pipeline allocation.
        assert!(Arc::ptr_eq(
            a.pipeline_for(DeploymentType::SqlDb).unwrap(),
            b.pipeline_for(DeploymentType::SqlDb).unwrap()
        ));
        let fleet: Vec<FleetRequest> =
            (0..12).map(|i| request(&format!("w{i}"), 0.5 + i as f64 * 0.3)).collect();
        assert_eq!(a.assess(fleet.clone()).report, b.assess(fleet).report);
    }
}
