//! Replay back-testing for recommendation backends (§5.4 style).
//!
//! The Doppler paper validates recommendations by *replaying* each
//! customer's demand trace against the recommended SKU and checking that
//! latency and throttling stay within bounds (§5.4, Figure 13). This
//! module turns that per-instance check into a fleet-level harness: a
//! held-out cohort is assessed through two assessors — a **candidate**
//! (typically a [`doppler_core::LearnedBackend`]) and a **reference**
//! (typically the production heuristic engine, or the ground-truth SKU
//! labels baked into a synthetic cohort) — and every pick is replayed
//! through the `doppler-replay` queueing machine on the customer's own
//! history. The result is a [`BacktestReport`]: paired fit rates,
//! throttle-month counts, and the projected cost delta of switching to
//! the candidate.
//!
//! The harness is deterministic for any worker count: both assessors
//! collect order-stably, cases are scored in submission order, and the
//! replay machine itself is a pure function of `(history, SKU)`.

use doppler_catalog::{Catalog, DeploymentType, SkuId};
use doppler_dma::json::Json;
use doppler_dma::AssessmentRequest;
use doppler_replay::{replay, ReplayOutcome};
use doppler_telemetry::PerfHistory;
use doppler_workload::CloudCustomer;

use crate::assessor::{FleetAssessor, FleetRequest};

/// One held-out customer: a demand history plus, optionally, the SKU the
/// customer actually ran on (the §5 back-test label). When `ground_truth`
/// is present it overrides the reference assessor's pick for this case.
#[derive(Debug, Clone)]
pub struct BacktestCase {
    /// Instance name carried through assessment and the report.
    pub name: String,
    pub deployment: DeploymentType,
    /// The held-out demand trace — replayed as-is on both picks.
    pub history: PerfHistory,
    /// MI file sizes, forwarded to the assessors (empty for SQL DB).
    pub file_sizes_gib: Vec<f64>,
    /// The SKU the customer actually chose, when known.
    pub ground_truth: Option<String>,
}

impl BacktestCase {
    /// Build a case from a synthetic cloud customer, using its
    /// `chosen_sku` (the SKU it "fixed for ≥ 40 days") as ground truth.
    pub fn from_customer(customer: &CloudCustomer) -> BacktestCase {
        let file_sizes_gib = customer
            .file_layout
            .as_ref()
            .map(|layout| layout.files.iter().map(|f| f.size_gib).collect())
            .unwrap_or_default();
        BacktestCase {
            name: format!("customer-{}", customer.id),
            deployment: customer.deployment,
            history: customer.history.clone(),
            file_sizes_gib,
            ground_truth: Some(customer.chosen_sku.0.clone()),
        }
    }
}

/// The replay scorecard for one (case, SKU) pair.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayScore {
    pub sku_id: String,
    /// Monthly cost of the replayed SKU (730-hour month).
    pub monthly_cost: f64,
    /// Fraction of ticks where any capacity was exceeded.
    pub throttle_fraction: f64,
    pub mean_latency_ms: f64,
    pub p95_latency_ms: f64,
    /// Whether the pick *fits*: p95 latency within the harness limit and
    /// throttling within budget.
    pub fits: bool,
}

/// One scored case: the candidate's and reference's replay outcomes side
/// by side. A side is `None` when that assessor produced no recommendation
/// for the case, the SKU is absent from the replay catalog, or the
/// history is empty (nothing to replay).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BacktestCaseRow {
    pub name: String,
    pub candidate: Option<ReplayScore>,
    pub reference: Option<ReplayScore>,
    /// Both sides picked the same SKU.
    pub agreed: bool,
}

/// The fleet-level back-test roll-up.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BacktestReport {
    pub candidate_label: String,
    pub reference_label: String,
    /// p95-latency bound a pick must meet to fit (ms).
    pub latency_limit_ms: f64,
    /// Throttle-fraction bound a pick must meet to fit.
    pub throttle_budget: f64,
    pub cases: Vec<BacktestCaseRow>,
    /// Cases where both sides produced a replayable pick.
    pub scored_pairs: usize,
    pub sku_agreements: usize,
    pub candidate_fit: usize,
    pub reference_fit: usize,
    /// Cases whose pick exceeded the throttle budget. Each case is one
    /// customer-history window — about one telemetry month — so this
    /// counts "months with throttling" across the cohort.
    pub candidate_throttle_months: usize,
    pub reference_throttle_months: usize,
    /// Total monthly cost of each side's picks over the scored pairs.
    pub candidate_monthly_cost: f64,
    pub reference_monthly_cost: f64,
}

impl BacktestReport {
    /// Fraction of scored pairs where both sides picked the same SKU;
    /// `None` when nothing was scored.
    pub fn agreement_rate(&self) -> Option<f64> {
        (self.scored_pairs > 0).then(|| self.sku_agreements as f64 / self.scored_pairs as f64)
    }

    /// Fraction of scored pairs where the candidate's pick fits.
    pub fn candidate_fit_rate(&self) -> Option<f64> {
        (self.scored_pairs > 0).then(|| self.candidate_fit as f64 / self.scored_pairs as f64)
    }

    /// Fraction of scored pairs where the reference's pick fits.
    pub fn reference_fit_rate(&self) -> Option<f64> {
        (self.scored_pairs > 0).then(|| self.reference_fit as f64 / self.scored_pairs as f64)
    }

    /// Candidate cost minus reference cost over the scored pairs —
    /// negative means the candidate is cheaper.
    pub fn monthly_cost_delta(&self) -> f64 {
        self.candidate_monthly_cost - self.reference_monthly_cost
    }

    /// Terminal rendering in the fleet-report ASCII style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Backend Backtest ===\n");
        out.push_str(&format!(
            "candidate: {}   reference: {}\n",
            self.candidate_label, self.reference_label
        ));
        out.push_str(&format!(
            "cases: {}   scored pairs: {}   SKU agreement: {}\n",
            self.cases.len(),
            self.scored_pairs,
            match self.agreement_rate() {
                Some(rate) => format!("{:.1}%", rate * 100.0),
                None => "n/a".into(),
            }
        ));
        out.push_str(&format!(
            "fit (p95 <= {:.1} ms, throttle <= {:.1}%):\n",
            self.latency_limit_ms,
            self.throttle_budget * 100.0
        ));
        out.push_str(&format!(
            "  candidate: {:>5}/{}   throttle months: {:>4}   cost: ${:.2}/mo\n",
            self.candidate_fit,
            self.scored_pairs,
            self.candidate_throttle_months,
            self.candidate_monthly_cost
        ));
        out.push_str(&format!(
            "  reference: {:>5}/{}   throttle months: {:>4}   cost: ${:.2}/mo\n",
            self.reference_fit,
            self.scored_pairs,
            self.reference_throttle_months,
            self.reference_monthly_cost
        ));
        let delta = self.monthly_cost_delta();
        out.push_str(&format!(
            "cost delta (candidate - reference): {}${:.2}/mo\n",
            if delta < 0.0 { "-" } else { "+" },
            delta.abs()
        ));
        out
    }
}

/// The back-test harness: two assessors over one catalog, with the fit
/// bounds of §5.4.
pub struct Backtest {
    catalog: Catalog,
    candidate: FleetAssessor,
    reference: FleetAssessor,
    candidate_label: String,
    reference_label: String,
    latency_limit_ms: f64,
    throttle_budget: f64,
}

impl Backtest {
    /// Build a harness replaying picks against `catalog`. Defaults: p95
    /// latency limit 15 ms, throttle budget 5% of ticks.
    pub fn new(catalog: Catalog, candidate: FleetAssessor, reference: FleetAssessor) -> Backtest {
        Backtest {
            catalog,
            candidate,
            reference,
            candidate_label: "candidate".into(),
            reference_label: "reference".into(),
            latency_limit_ms: 15.0,
            throttle_budget: 0.05,
        }
    }

    /// Label the two sides in the report.
    pub fn with_labels(
        mut self,
        candidate: impl Into<String>,
        reference: impl Into<String>,
    ) -> Backtest {
        self.candidate_label = candidate.into();
        self.reference_label = reference.into();
        self
    }

    /// Override the p95-latency fit bound (ms).
    pub fn with_latency_limit(mut self, limit_ms: f64) -> Backtest {
        self.latency_limit_ms = limit_ms;
        self
    }

    /// Override the throttle-fraction fit bound.
    pub fn with_throttle_budget(mut self, budget: f64) -> Backtest {
        self.throttle_budget = budget;
        self
    }

    /// Score a pick by replaying `history` on it. `None` when there is no
    /// pick, the SKU is not in the replay catalog, or the history is
    /// empty.
    fn score(&self, history: &PerfHistory, sku_id: Option<&str>) -> Option<ReplayScore> {
        let sku_id = sku_id?;
        if history.is_empty() {
            return None;
        }
        let sku = self.catalog.get(&SkuId(sku_id.to_string()))?;
        let outcome: ReplayOutcome = replay(history, sku);
        let fits = outcome.meets_latency(self.latency_limit_ms)
            && outcome.throttle_fraction <= self.throttle_budget;
        Some(ReplayScore {
            sku_id: outcome.sku_id,
            monthly_cost: sku.monthly_cost(),
            throttle_fraction: outcome.throttle_fraction,
            mean_latency_ms: outcome.mean_latency_ms,
            p95_latency_ms: outcome.p95_latency_ms,
            fits,
        })
    }

    /// Assess the cohort through both sides and replay every pick.
    ///
    /// The reference pick for a case is its `ground_truth` when present,
    /// else the reference assessor's recommendation — so the same harness
    /// back-tests against labelled cohorts (§5) and against a heuristic
    /// champion (pre-rollout) without reconfiguration.
    pub fn run(&self, cases: &[BacktestCase]) -> BacktestReport {
        let requests: Vec<FleetRequest> = cases
            .iter()
            .map(|case| {
                FleetRequest::new(
                    case.deployment,
                    AssessmentRequest::from_history(
                        case.name.clone(),
                        case.history.clone(),
                        case.file_sizes_gib.clone(),
                        None,
                    ),
                )
            })
            .collect();
        let candidate_run = self.candidate.assess(requests.iter().cloned());
        let reference_run = self.reference.assess(requests);

        let mut rows = Vec::with_capacity(cases.len());
        let mut scored_pairs = 0usize;
        let mut sku_agreements = 0usize;
        let mut candidate_fit = 0usize;
        let mut reference_fit = 0usize;
        let mut candidate_throttle_months = 0usize;
        let mut reference_throttle_months = 0usize;
        let mut candidate_monthly_cost = 0.0f64;
        let mut reference_monthly_cost = 0.0f64;

        for (index, case) in cases.iter().enumerate() {
            let pick_of = |run: &crate::assessor::FleetAssessment| {
                run.results
                    .iter()
                    .find(|r| r.index == index)
                    .and_then(|r| r.outcome.as_ref().ok())
                    .and_then(|a| a.recommendation.sku_id.clone())
            };
            let candidate_pick = pick_of(&candidate_run);
            let reference_pick = case.ground_truth.clone().or_else(|| pick_of(&reference_run));

            let candidate = self.score(&case.history, candidate_pick.as_deref());
            let reference = self.score(&case.history, reference_pick.as_deref());
            let agreed = match (&candidate, &reference) {
                (Some(a), Some(b)) => a.sku_id == b.sku_id,
                _ => false,
            };
            if let (Some(a), Some(b)) = (&candidate, &reference) {
                scored_pairs += 1;
                sku_agreements += usize::from(agreed);
                candidate_fit += usize::from(a.fits);
                reference_fit += usize::from(b.fits);
                candidate_throttle_months +=
                    usize::from(a.throttle_fraction > self.throttle_budget);
                reference_throttle_months +=
                    usize::from(b.throttle_fraction > self.throttle_budget);
                candidate_monthly_cost += a.monthly_cost;
                reference_monthly_cost += b.monthly_cost;
            }
            rows.push(BacktestCaseRow { name: case.name.clone(), candidate, reference, agreed });
        }

        BacktestReport {
            candidate_label: self.candidate_label.clone(),
            reference_label: self.reference_label.clone(),
            latency_limit_ms: self.latency_limit_ms,
            throttle_budget: self.throttle_budget,
            cases: rows,
            scored_pairs,
            sku_agreements,
            candidate_fit,
            reference_fit,
            candidate_throttle_months,
            reference_throttle_months,
            candidate_monthly_cost,
            reference_monthly_cost,
        }
    }
}

fn score_to_json(score: &ReplayScore) -> Json {
    Json::Obj(vec![
        ("sku_id".into(), Json::Str(score.sku_id.clone())),
        ("monthly_cost".into(), Json::Num(score.monthly_cost)),
        ("throttle_fraction".into(), Json::Num(score.throttle_fraction)),
        ("mean_latency_ms".into(), Json::Num(score.mean_latency_ms)),
        ("p95_latency_ms".into(), Json::Num(score.p95_latency_ms)),
        ("fits".into(), Json::Num(f64::from(u8::from(score.fits)))),
    ])
}

fn score_from_json(json: &Json) -> Option<ReplayScore> {
    Some(ReplayScore {
        sku_id: json.get("sku_id")?.as_str()?.to_string(),
        monthly_cost: json.get("monthly_cost")?.as_f64()?,
        throttle_fraction: json.get("throttle_fraction")?.as_f64()?,
        mean_latency_ms: json.get("mean_latency_ms")?.as_f64()?,
        p95_latency_ms: json.get("p95_latency_ms")?.as_f64()?,
        fits: json.get("fits")?.as_f64()? != 0.0,
    })
}

fn side_to_json(side: &Option<ReplayScore>) -> Json {
    match side {
        Some(score) => score_to_json(score),
        None => Json::Null,
    }
}

/// Export a [`BacktestReport`] as a [`doppler_dma::json`] value, losslessly
/// re-parsable with [`backtest_report_from_json`].
pub fn backtest_report_to_json(report: &BacktestReport) -> Json {
    Json::Obj(vec![
        ("candidate_label".into(), Json::Str(report.candidate_label.clone())),
        ("reference_label".into(), Json::Str(report.reference_label.clone())),
        ("latency_limit_ms".into(), Json::Num(report.latency_limit_ms)),
        ("throttle_budget".into(), Json::Num(report.throttle_budget)),
        (
            "cases".into(),
            Json::Arr(
                report
                    .cases
                    .iter()
                    .map(|row| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(row.name.clone())),
                            ("candidate".into(), side_to_json(&row.candidate)),
                            ("reference".into(), side_to_json(&row.reference)),
                            ("agreed".into(), Json::Num(f64::from(u8::from(row.agreed)))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("scored_pairs".into(), Json::Num(report.scored_pairs as f64)),
        ("sku_agreements".into(), Json::Num(report.sku_agreements as f64)),
        ("candidate_fit".into(), Json::Num(report.candidate_fit as f64)),
        ("reference_fit".into(), Json::Num(report.reference_fit as f64)),
        ("candidate_throttle_months".into(), Json::Num(report.candidate_throttle_months as f64)),
        ("reference_throttle_months".into(), Json::Num(report.reference_throttle_months as f64)),
        ("candidate_monthly_cost".into(), Json::Num(report.candidate_monthly_cost)),
        ("reference_monthly_cost".into(), Json::Num(report.reference_monthly_cost)),
    ])
}

/// Re-parse an exported back-test report; `None` on structural mismatch.
pub fn backtest_report_from_json(json: &Json) -> Option<BacktestReport> {
    let cases = json
        .get("cases")?
        .as_arr()?
        .iter()
        .map(|row| {
            Some(BacktestCaseRow {
                name: row.get("name")?.as_str()?.to_string(),
                candidate: match row.get("candidate")?.non_null() {
                    Some(v) => Some(score_from_json(v)?),
                    None => None,
                },
                reference: match row.get("reference")?.non_null() {
                    Some(v) => Some(score_from_json(v)?),
                    None => None,
                },
                agreed: row.get("agreed")?.as_f64()? != 0.0,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(BacktestReport {
        candidate_label: json.get("candidate_label")?.as_str()?.to_string(),
        reference_label: json.get("reference_label")?.as_str()?.to_string(),
        latency_limit_ms: json.get("latency_limit_ms")?.as_f64()?,
        throttle_budget: json.get("throttle_budget")?.as_f64()?,
        cases,
        scored_pairs: json.get("scored_pairs")?.as_f64()? as usize,
        sku_agreements: json.get("sku_agreements")?.as_f64()? as usize,
        candidate_fit: json.get("candidate_fit")?.as_f64()? as usize,
        reference_fit: json.get("reference_fit")?.as_f64()? as usize,
        candidate_throttle_months: json.get("candidate_throttle_months")?.as_f64()? as usize,
        reference_throttle_months: json.get("reference_throttle_months")?.as_f64()? as usize,
        candidate_monthly_cost: json.get("candidate_monthly_cost")?.as_f64()?,
        reference_monthly_cost: json.get("reference_monthly_cost")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessor::FleetConfig;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::{DopplerEngine, EngineConfig};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    fn history(cpu: f64, iops: f64) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 144]))
            .with(PerfDimension::Memory, TimeSeries::ten_minute(vec![2.0; 144]))
            .with(PerfDimension::Iops, TimeSeries::ten_minute(vec![iops; 144]))
            .with(PerfDimension::LogRate, TimeSeries::ten_minute(vec![0.4; 144]))
    }

    fn assessor(workers: usize) -> FleetAssessor {
        FleetAssessor::new(
            DopplerEngine::untrained(
                azure_paas_catalog(&CatalogSpec::default()),
                EngineConfig::production(DeploymentType::SqlDb),
            ),
            FleetConfig::with_workers(workers),
        )
    }

    fn cases(n: usize) -> Vec<BacktestCase> {
        (0..n)
            .map(|i| BacktestCase {
                name: format!("case-{i}"),
                deployment: DeploymentType::SqlDb,
                history: history(0.3 + (i % 5) as f64 * 0.6, 120.0 + (i % 5) as f64 * 300.0),
                file_sizes_gib: vec![],
                ground_truth: None,
            })
            .collect()
    }

    fn harness() -> Backtest {
        Backtest::new(azure_paas_catalog(&CatalogSpec::default()), assessor(2), assessor(2))
            .with_labels("learned", "heuristic")
    }

    #[test]
    fn identical_assessors_agree_everywhere() {
        let report = harness().run(&cases(8));
        assert_eq!(report.scored_pairs, 8);
        assert_eq!(report.agreement_rate(), Some(1.0));
        assert_eq!(report.monthly_cost_delta(), 0.0);
        assert!(report.render().contains("SKU agreement: 100.0%"));
    }

    #[test]
    fn ground_truth_overrides_the_reference_pick() {
        let mut cs = cases(3);
        cs[1].ground_truth = Some("DB_BC_32".into());
        let report = harness().run(&cs);
        assert_eq!(report.cases[1].reference.as_ref().unwrap().sku_id, "DB_BC_32");
        // The overridden case no longer agrees; the others still do.
        assert!(!report.cases[1].agreed);
        assert_eq!(report.sku_agreements, 2);
    }

    #[test]
    fn unknown_sku_and_empty_history_score_as_none() {
        let mut cs = cases(2);
        cs[0].ground_truth = Some("NOT_A_SKU".into());
        cs[1].history = PerfHistory::new();
        let report = harness().run(&cs);
        assert!(report.cases[0].reference.is_none());
        assert!(report.cases[1].candidate.is_none());
        assert!(report.cases[1].reference.is_none());
        // Neither case forms a scored pair.
        assert_eq!(report.scored_pairs, 0);
        assert_eq!(report.agreement_rate(), None);
    }

    #[test]
    fn over_provisioned_reference_is_costlier_but_fits() {
        // Ground truth pins every case on a huge SKU: the candidate should
        // be cheaper while both fit comfortably.
        let mut cs = cases(4);
        for case in &mut cs {
            case.ground_truth = Some("DB_BC_80".into());
        }
        let report = harness().run(&cs);
        assert_eq!(report.scored_pairs, 4);
        assert_eq!(report.reference_fit, 4);
        assert!(report.monthly_cost_delta() < 0.0, "candidate should be cheaper");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut cs = cases(5);
        cs[2].ground_truth = Some("NOT_A_SKU".into());
        let report = harness().run(&cs);
        let json = backtest_report_to_json(&report);
        let reparsed =
            backtest_report_from_json(&Json::parse(&json.render_pretty()).unwrap()).unwrap();
        assert_eq!(reparsed, report);
    }
}
