//! Fleet-wide drift monitoring: continuous re-assessment of deployed
//! customers against their recommended SKUs (§5.2.3 at fleet scale).
//!
//! Doppler validates a recommendation *after* migration by comparing
//! telemetry before and after the SKU change; production SKU advisors must
//! keep doing that for every deployed customer as workloads drift. The
//! [`DriftMonitor`] is that loop:
//!
//! 1. **watch** — register each deployed customer with the telemetry
//!    window its recommendation was made on (directly, or straight from a
//!    fleet run via [`DriftMonitor::watch_assessment`]);
//! 2. **observe** — stage each customer's freshest telemetry window as it
//!    arrives;
//! 3. **tick** — per month (or on demand), stitch every staged window onto
//!    its baseline and run [`detect_drift`] through the shared
//!    [`FleetService`] worker pool, folding the per-customer
//!    [`DriftOutcome`]s — in registration order, so every aggregate is
//!    bit-for-bit identical for any worker count — into a
//!    [`FleetDriftReport`] with per-region and per-deployment roll-ups;
//! 4. **re-queue** — customers whose recommendation moved are re-assessed
//!    immediately through the queue's *priority lane*
//!    ([`FleetRequest::with_priority`]), jumping any normal backlog —
//!    worst drift first (severity-ordered within the lane, Critical ahead
//!    of High, stable within a grade) and through the shard their catalog
//!    key routes to — and their baselines roll forward to the fresh
//!    window.
//!
//! Drift checks ride the same worker pool as assessments but stay out of
//! the service's assessment aggregate — the monitor owns their
//! aggregation, and its [`AdoptionLedger`] gains per-month drift-outcome
//! rows alongside the Table 1 counters.
//!
//! # Example
//!
//! ```
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_fleet::{DriftMonitor, FleetAssessor, FleetConfig, MonitoredCustomer};
//! use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
//!
//! let engine = DopplerEngine::untrained(
//!     azure_paas_catalog(&CatalogSpec::default()),
//!     EngineConfig::production(DeploymentType::SqlDb),
//! );
//! let assessor = FleetAssessor::new(engine, FleetConfig::with_workers(2));
//! let mut monitor = DriftMonitor::new(assessor);
//!
//! let window = |cpu: f64| {
//!     PerfHistory::new()
//!         .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
//!         .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]))
//! };
//! monitor.watch(MonitoredCustomer::new("cust-1", DeploymentType::SqlDb, window(0.5)));
//! monitor.observe("cust-1", window(7.0)); // the workload grew 14×
//! let pass = monitor.tick("Nov-21");
//! assert_eq!(pass.report.drifted, 1);
//! assert_eq!(pass.reassessments.len(), 1, "drifted customers re-assess via the priority lane");
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use doppler_catalog::{CatalogKey, DeploymentType, RefreshableCatalogProvider, Region};
use doppler_core::{detect_drift, ConfidenceConfig, DriftSeverity};
use doppler_dma::{AdoptionLedger, AssessmentRequest};
use doppler_telemetry::PerfHistory;

use crate::assessor::{AssessmentError, EngineSet, FleetAssessor, FleetRequest, FleetResult};
use crate::report::{bar_row, render_attention_list, FleetReport};
use crate::service::{DriftTicket, FleetService};

/// One drift check, shipped to the worker pool: a customer's stitched
/// history (baseline ++ fresh window), the change point between the two,
/// and where to price the verdict.
#[derive(Debug, Clone)]
pub struct DriftProbe {
    /// The customer being checked (labels the outcome).
    pub customer: String,
    pub deployment: DeploymentType,
    /// Price the check against this exact offer catalog; `None` = the
    /// deployment's default route (same resolution as assessment).
    pub catalog_key: Option<CatalogKey>,
    /// Baseline window ++ fresh window.
    pub history: PerfHistory,
    /// First sample of the fresh window.
    pub change_point: usize,
    /// Group tolerance for the curve selections (0.0 = zero-tolerance).
    pub p_g: f64,
}

/// What one drift check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DriftVerdict {
    /// The fresh window selects the same SKU as the baseline window.
    Stable,
    /// The recommendation moved: the workload outgrew (or shrank out of)
    /// its SKU.
    Drifted,
    /// No verdict: one of the windows produced no selection, or the check
    /// itself failed (no route, panic) — see [`DriftOutcome::error`].
    Inconclusive,
}

/// One customer's drift-check result, tagged with its submission index.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftOutcome {
    /// Position of this outcome in its [`DriftPass`] (the monitor
    /// re-indexes on collection). For checks submitted directly via
    /// [`FleetService::submit_drift`](crate::service::FleetService::submit_drift)
    /// this is the service-wide drift-check sequence number instead.
    pub index: usize,
    pub customer: String,
    pub deployment: DeploymentType,
    /// The region the check was priced in ([`Region::global`] when the
    /// customer carries no catalog key).
    pub region: Region,
    pub verdict: DriftVerdict,
    /// Severity grade ([`DriftSeverity::None`] unless drifted).
    pub severity: DriftSeverity,
    /// The baseline window's selection.
    pub before_sku: Option<String>,
    /// The fresh window's selection — the re-recommendation.
    pub after_sku: Option<String>,
    /// Raw throttling probability of keeping the baseline SKU on the
    /// fresh workload.
    pub throttle_if_unchanged: f64,
    /// Monthly cost of acting on the re-recommendation (after − before).
    pub cost_delta: Option<f64>,
    /// Why the check was inconclusive, when it failed outright.
    pub error: Option<String>,
}

/// Run one probe against the service's engine set — the worker-side body
/// of a drift check. Panics and resolution failures become
/// [`DriftVerdict::Inconclusive`] outcomes instead of killing the worker.
pub(crate) fn evaluate_probe(engines: &EngineSet, index: usize, probe: DriftProbe) -> DriftOutcome {
    let DriftProbe { customer, deployment, catalog_key, history, change_point, p_g } = probe;
    let region = catalog_key.as_ref().map(|k| k.region.clone()).unwrap_or_else(Region::global);
    let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engines.resolve(deployment, &catalog_key).map(|pipeline| {
            // The resolved pipeline's catalog is already regional (prices
            // scaled by the provider), so the drift verdict is priced in
            // the customer's own region.
            let catalog = pipeline.backend().catalog();
            let skus = catalog.for_deployment(deployment);
            detect_drift(&history, change_point, &skus, p_g)
        })
    }))
    .unwrap_or_else(|payload| {
        Err(AssessmentError { message: crate::assessor::panic_message(payload) })
    });
    match evaluated {
        Err(e) => DriftOutcome {
            index,
            customer,
            deployment,
            region,
            verdict: DriftVerdict::Inconclusive,
            severity: DriftSeverity::None,
            before_sku: None,
            after_sku: None,
            throttle_if_unchanged: 0.0,
            cost_delta: None,
            error: Some(e.message),
        },
        Ok(report) => {
            let verdict = match (&report.before_sku, &report.after_sku) {
                (Some(_), Some(_)) if report.changed => DriftVerdict::Drifted,
                (Some(_), Some(_)) => DriftVerdict::Stable,
                _ => DriftVerdict::Inconclusive,
            };
            DriftOutcome {
                index,
                customer,
                deployment,
                region,
                verdict,
                severity: report.severity(),
                throttle_if_unchanged: report.throttle_if_unchanged,
                cost_delta: report.cost_delta(),
                before_sku: report.before_sku,
                after_sku: report.after_sku,
                error: None,
            }
        }
    }
}

/// One region's share of a drift pass ([`CatalogKey`] plumbing: the row
/// key is the region the check was priced in).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegionDriftRow {
    pub region: Region,
    pub checked: usize,
    pub drifted: usize,
    pub stable: usize,
    pub inconclusive: usize,
    /// Sum of the drifted customers' re-recommendation cost deltas.
    pub cost_delta: f64,
}

/// One deployment target's share of a drift pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeploymentDriftRow {
    pub deployment: DeploymentType,
    pub checked: usize,
    pub drifted: usize,
    pub stable: usize,
    pub inconclusive: usize,
    pub cost_delta: f64,
}

/// One drifted customer, for the attention list.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftedRow {
    pub customer: String,
    pub region: Region,
    pub from_sku: Option<String>,
    pub to_sku: Option<String>,
    pub severity: DriftSeverity,
    pub throttle_if_unchanged: f64,
    pub cost_delta: Option<f64>,
}

/// The aggregate view of one monitoring pass: verdict counts, the severity
/// histogram, the total re-recommendation cost delta, and per-region /
/// per-deployment roll-up rows that always sum back to the fleet totals.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetDriftReport {
    /// The ledger month this pass was recorded under.
    pub month: String,
    pub checked: usize,
    pub drifted: usize,
    pub stable: usize,
    pub inconclusive: usize,
    /// Severity histogram in [`DriftSeverity::ALL`] order.
    pub severity: [usize; 5],
    /// Catalog version rolls processed since the previous pass
    /// ([`DriftMonitor::on_catalog_roll`]) — a billing change shows up on
    /// the same dashboard as drift.
    pub catalog_rolls: usize,
    /// Sum of the drifted customers' re-recommendation cost deltas
    /// (positive: the fleet grew; negative: right-sizing savings).
    pub total_cost_delta: f64,
    /// Per-region rows, sorted by region label.
    pub regions: Vec<RegionDriftRow>,
    /// Per-deployment rows in `SqlDb`, `SqlMi` order (present targets
    /// only).
    pub deployments: Vec<DeploymentDriftRow>,
    /// The drifted customers, in submission order.
    pub drifted_customers: Vec<DriftedRow>,
}

impl FleetDriftReport {
    /// Fold a pass's outcomes (must be in submission order — summation
    /// follows it, so equal inputs produce bit-for-bit equal reports
    /// regardless of how many workers ran the checks).
    pub fn from_outcomes(month: &str, outcomes: &[DriftOutcome]) -> FleetDriftReport {
        let mut report = FleetDriftReport {
            month: month.to_string(),
            checked: 0,
            drifted: 0,
            stable: 0,
            inconclusive: 0,
            severity: [0; 5],
            catalog_rolls: 0,
            total_cost_delta: 0.0,
            regions: Vec::new(),
            deployments: Vec::new(),
            drifted_customers: Vec::new(),
        };
        for o in outcomes {
            report.checked += 1;
            report.severity[o.severity.bucket()] += 1;
            let drifted_delta = match o.verdict {
                DriftVerdict::Drifted => {
                    report.drifted += 1;
                    report.drifted_customers.push(DriftedRow {
                        customer: o.customer.clone(),
                        region: o.region.clone(),
                        from_sku: o.before_sku.clone(),
                        to_sku: o.after_sku.clone(),
                        severity: o.severity,
                        throttle_if_unchanged: o.throttle_if_unchanged,
                        cost_delta: o.cost_delta,
                    });
                    let delta = o.cost_delta.unwrap_or(0.0);
                    report.total_cost_delta += delta;
                    delta
                }
                DriftVerdict::Stable => {
                    report.stable += 1;
                    0.0
                }
                DriftVerdict::Inconclusive => {
                    report.inconclusive += 1;
                    0.0
                }
            };
            let region_row = match report.regions.iter().position(|r| r.region == o.region) {
                Some(i) => &mut report.regions[i],
                None => {
                    report.regions.push(RegionDriftRow {
                        region: o.region.clone(),
                        checked: 0,
                        drifted: 0,
                        stable: 0,
                        inconclusive: 0,
                        cost_delta: 0.0,
                    });
                    report.regions.last_mut().expect("just pushed")
                }
            };
            region_row.checked += 1;
            region_row.cost_delta += drifted_delta;
            let deployment_row =
                match report.deployments.iter().position(|d| d.deployment == o.deployment) {
                    Some(i) => &mut report.deployments[i],
                    None => {
                        report.deployments.push(DeploymentDriftRow {
                            deployment: o.deployment,
                            checked: 0,
                            drifted: 0,
                            stable: 0,
                            inconclusive: 0,
                            cost_delta: 0.0,
                        });
                        report.deployments.last_mut().expect("just pushed")
                    }
                };
            deployment_row.checked += 1;
            deployment_row.cost_delta += drifted_delta;
            match o.verdict {
                DriftVerdict::Drifted => {
                    region_row.drifted += 1;
                    deployment_row.drifted += 1;
                }
                DriftVerdict::Stable => {
                    region_row.stable += 1;
                    deployment_row.stable += 1;
                }
                DriftVerdict::Inconclusive => {
                    region_row.inconclusive += 1;
                    deployment_row.inconclusive += 1;
                }
            }
        }
        report.regions.sort_by(|a, b| a.region.as_str().cmp(b.region.as_str()));
        report.deployments.sort_by_key(|row| match row.deployment {
            DeploymentType::SqlDb => 0,
            DeploymentType::SqlMi => 1,
        });
        report
    }

    /// Render the drift pass as a terminal dashboard, in the style of
    /// [`FleetReport::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== Fleet Drift Report ({}) ===\n", self.month));
        out.push_str(&format!(
            "checked: {:>7}   drifted: {:>6}   stable: {:>6}   inconclusive: {:>5}\n",
            self.checked, self.drifted, self.stable, self.inconclusive
        ));
        out.push_str(&format!(
            "re-recommendation cost delta: {}${:.2}/mo\n",
            if self.total_cost_delta >= 0.0 { "+" } else { "-" },
            self.total_cost_delta.abs()
        ));
        if self.catalog_rolls > 0 {
            out.push_str(&format!("catalog rolls since last pass: {}\n", self.catalog_rolls));
        }

        if self.checked > 0 {
            out.push_str("\n--- Severity ---\n");
            let max_count = self.severity.iter().copied().max().unwrap_or(1).max(1);
            for (grade, &count) in DriftSeverity::ALL.iter().zip(&self.severity) {
                out.push_str(&bar_row(&format!("{grade:?}"), count, max_count, self.checked, ""));
            }
        }

        if self.regions.len() > 1 {
            out.push_str("\n--- Regions ---\n");
            for r in &self.regions {
                out.push_str(&format!(
                    "{:>14}   checked {:>6}   drifted {:>5}   stable {:>6}   inconclusive {:>4}   {:+.2} $/mo\n",
                    r.region.as_str(), r.checked, r.drifted, r.stable, r.inconclusive, r.cost_delta
                ));
            }
        }

        if self.deployments.len() > 1 {
            out.push_str("\n--- Deployments ---\n");
            for d in &self.deployments {
                out.push_str(&format!(
                    "{:>14}   checked {:>6}   drifted {:>5}   stable {:>6}   inconclusive {:>4}   {:+.2} $/mo\n",
                    format!("{:?}", d.deployment),
                    d.checked,
                    d.drifted,
                    d.stable,
                    d.inconclusive,
                    d.cost_delta
                ));
            }
        }

        let drifted_lines: Vec<String> = self
            .drifted_customers
            .iter()
            .map(|r| {
                format!(
                    "{} [{}] {} -> {} ({:?}, {:.0}% throttled if unchanged{})",
                    r.customer,
                    r.region.as_str(),
                    r.from_sku.as_deref().unwrap_or("?"),
                    r.to_sku.as_deref().unwrap_or("?"),
                    r.severity,
                    r.throttle_if_unchanged * 100.0,
                    match r.cost_delta {
                        Some(d) => format!(", {d:+.2} $/mo"),
                        None => String::new(),
                    }
                )
            })
            .collect();
        render_attention_list(&mut out, "Drifted", &drifted_lines);
        out
    }

    /// [`render`](FleetDriftReport::render) with the ops dashboard from an
    /// [`ObsSnapshot`](doppler_obs::ObsSnapshot) appended, mirroring
    /// [`FleetReport::render_with_ops`](crate::FleetReport::render_with_ops):
    /// the drift verdicts first, then the pass/probe latencies and re-queue
    /// activity behind them. The report itself never reads the snapshot.
    pub fn render_with_ops(&self, snapshot: &doppler_obs::ObsSnapshot) -> String {
        let mut out = self.render();
        out.push('\n');
        out.push_str(&snapshot.render());
        out
    }
}

/// One deployed customer the monitor watches: the telemetry window its
/// standing recommendation was made on, plus enough routing context to
/// re-check (and re-assess) it in its own region.
#[derive(Debug, Clone)]
pub struct MonitoredCustomer {
    pub name: String,
    pub deployment: DeploymentType,
    /// Price drift checks and re-assessments against this exact offer
    /// catalog; `None` = the deployment's default route.
    pub catalog_key: Option<CatalogKey>,
    /// The window the standing recommendation was made on.
    pub baseline: PerfHistory,
    /// The standing recommendation, when known (display only — verdicts
    /// compare the baseline window's own selection against the fresh
    /// window's).
    pub baseline_sku: Option<String>,
    /// The standing recommendation's monthly cost, when known.
    pub baseline_cost: Option<f64>,
    /// MI data-file sizes, carried into re-assessment requests.
    pub file_sizes_gib: Vec<f64>,
    /// Confidence settings the customer was originally assessed with;
    /// carried into priority-lane re-assessments so the re-recommendation
    /// keeps its confidence score.
    pub confidence: Option<ConfidenceConfig>,
}

impl MonitoredCustomer {
    pub fn new(
        name: impl Into<String>,
        deployment: DeploymentType,
        baseline: PerfHistory,
    ) -> MonitoredCustomer {
        MonitoredCustomer {
            name: name.into(),
            deployment,
            catalog_key: None,
            baseline,
            baseline_sku: None,
            baseline_cost: None,
            file_sizes_gib: Vec::new(),
            confidence: None,
        }
    }

    /// Pin the offer catalog; the key's deployment becomes the customer's.
    pub fn with_catalog_key(mut self, key: CatalogKey) -> MonitoredCustomer {
        self.deployment = key.deployment;
        self.catalog_key = Some(key);
        self
    }

    /// Record the standing recommendation.
    pub fn with_recommendation(
        mut self,
        sku: impl Into<String>,
        monthly_cost: Option<f64>,
    ) -> MonitoredCustomer {
        self.baseline_sku = Some(sku.into());
        self.baseline_cost = monthly_cost;
        self
    }

    /// Keep computing the §3.4 confidence score on re-assessments.
    pub fn with_confidence(mut self, confidence: ConfidenceConfig) -> MonitoredCustomer {
        self.confidence = Some(confidence);
        self
    }

    /// The region drift checks are priced in.
    pub fn region(&self) -> Region {
        self.catalog_key.as_ref().map(|k| k.region.clone()).unwrap_or_else(Region::global)
    }

    /// Build a watch entry straight from a fleet run: the request supplies
    /// the baseline window and routing, the result the standing
    /// recommendation. `None` when the assessment failed (there is no
    /// recommendation to monitor).
    pub fn from_assessment(
        request: &FleetRequest,
        result: &FleetResult,
    ) -> Option<MonitoredCustomer> {
        let assessed = result.outcome.as_ref().ok()?;
        let mut customer = MonitoredCustomer::new(
            result.instance_name.as_ref(),
            request.deployment,
            request.request.input.instance.clone(),
        );
        customer.catalog_key = request.catalog_key.clone();
        customer.baseline_sku = assessed.recommendation.sku_id.clone();
        customer.baseline_cost = assessed.recommendation.monthly_cost;
        customer.file_sizes_gib = request.request.input.file_sizes_gib.clone();
        customer.confidence = request.request.confidence;
        Some(customer)
    }
}

struct Watched {
    customer: MonitoredCustomer,
    /// The freshest telemetry window staged by `observe`, if any.
    fresh: Option<PerfHistory>,
}

/// What one processed catalog roll did to the monitored fleet
/// ([`DriftMonitor::on_catalog_roll`]).
#[derive(Debug)]
pub struct CatalogRollOutcome {
    /// The key the roll superseded.
    pub old_key: CatalogKey,
    /// The key pinned customers now resolve.
    pub new_key: CatalogKey,
    /// Engines tombstoned in the shared registry for the old key (0 when
    /// the service resolves through fixed pipelines instead).
    pub retired_engines: usize,
    /// Priority-lane re-assessments of the customers that were pinned to
    /// the old key, in watch order — their standing recommendations
    /// re-priced against the new catalog version. Every pinned customer
    /// appears here exactly once: a re-price that could not run (the
    /// service closed mid-roll) is surfaced as a *failed* result, never
    /// silently dropped.
    pub repriced: Vec<FleetResult>,
    /// How many of [`repriced`](CatalogRollOutcome::repriced) failed —
    /// assessment errors plus re-prices the service refused or dropped.
    pub reprice_failures: usize,
}

/// One completed monitoring pass.
#[derive(Debug)]
pub struct DriftPass {
    /// The aggregate roll-up.
    pub report: FleetDriftReport,
    /// Per-customer outcomes, in registration order.
    pub outcomes: Vec<DriftOutcome>,
    /// Priority-lane re-assessments of the drifted customers, worst drift
    /// first: severity-ordered (Critical → High → …), stably, so equally
    /// graded customers keep the order they appear in
    /// [`FleetDriftReport::drifted_customers`].
    pub reassessments: Vec<FleetResult>,
}

/// The fleet drift-monitoring loop. See the [module docs](crate::drift)
/// for the lifecycle, and
/// [`ROADMAP`](https://github.com/doppler-repro/doppler) for where it sits
/// in the assess → deploy → monitor → re-queue cycle.
pub struct DriftMonitor {
    service: FleetService,
    /// Watch entries in registration order (the pass order).
    watched: Vec<Watched>,
    /// Customer name → slot in `watched`, so registration and observation
    /// stay O(1) over fleet-sized cohorts.
    slots: HashMap<String, usize>,
    p_g: f64,
    ledger: AdoptionLedger,
    /// Catalog rolls processed since the last pass; folded into the next
    /// [`FleetDriftReport::catalog_rolls`].
    rolls_since_tick: usize,
    /// How far into a provider's change log
    /// [`dispatch_rolls`](DriftMonitor::dispatch_rolls) has dispatched —
    /// the last-seen-roll cursor that makes log replay idempotent.
    roll_cursor: usize,
}

impl DriftMonitor {
    /// A monitor owning a fresh service over the assessor's engine set.
    pub fn new(assessor: FleetAssessor) -> DriftMonitor {
        DriftMonitor::over(assessor.into_service())
    }

    /// A monitor over an existing service — the shared-pool deployment:
    /// assessment traffic keeps flowing through
    /// [`service`](DriftMonitor::service) while the monitor's priority
    /// re-assessments jump that backlog.
    pub fn over(service: FleetService) -> DriftMonitor {
        DriftMonitor {
            service,
            watched: Vec::new(),
            slots: HashMap::new(),
            p_g: 0.0,
            ledger: AdoptionLedger::default(),
            rolls_since_tick: 0,
            roll_cursor: 0,
        }
    }

    /// Set the group tolerance the drift checks select SKUs at (default
    /// 0.0 — zero-tolerance, the §5.2.3 study's setting).
    pub fn with_tolerance(mut self, p_g: f64) -> DriftMonitor {
        self.p_g = p_g;
        self
    }

    /// The underlying service (submit ordinary assessment traffic here).
    pub fn service(&self) -> &FleetService {
        &self.service
    }

    /// Register a customer for monitoring. Re-watching a name replaces its
    /// entry (and drops any staged window) in place, keeping its original
    /// position in the pass order.
    pub fn watch(&mut self, customer: MonitoredCustomer) {
        match self.slots.get(&customer.name) {
            Some(&slot) => self.watched[slot] = Watched { customer, fresh: None },
            None => {
                self.slots.insert(customer.name.clone(), self.watched.len());
                self.watched.push(Watched { customer, fresh: None });
            }
        }
    }

    /// Register a customer straight from a fleet run. Returns `false` for
    /// failed assessments (nothing to monitor).
    pub fn watch_assessment(&mut self, request: &FleetRequest, result: &FleetResult) -> bool {
        match MonitoredCustomer::from_assessment(request, result) {
            Some(customer) => {
                self.watch(customer);
                true
            }
            None => false,
        }
    }

    /// Customers currently watched.
    pub fn watched(&self) -> usize {
        self.watched.len()
    }

    /// The watched customer names, in pass (registration) order.
    pub fn watched_names(&self) -> impl Iterator<Item = &str> {
        self.watched.iter().map(|w| w.customer.name.as_str())
    }

    /// The watched customers themselves, in pass (registration) order —
    /// how the scheduler's A/B step rebuilds its monthly cohort.
    pub fn watched_customers(&self) -> impl Iterator<Item = &MonitoredCustomer> {
        self.watched.iter().map(|w| &w.customer)
    }

    /// Stop watching `name`, dropping its entry (and any staged window).
    /// The remaining customers keep their relative pass order. Returns
    /// `false` for unknown names. O(watched) — the name→slot map
    /// re-indexes — so retire in batches (the scheduler's TTL sweep),
    /// not per telemetry sample.
    pub fn unwatch(&mut self, name: &str) -> bool {
        let Some(slot) = self.slots.remove(name) else { return false };
        self.watched.remove(slot);
        for s in self.slots.values_mut() {
            if *s > slot {
                *s -= 1;
            }
        }
        true
    }

    /// Stage `name`'s freshest telemetry window for the next pass
    /// (replacing any previous staging). Returns `false` for unknown
    /// customers.
    pub fn observe(&mut self, name: &str, fresh: PerfHistory) -> bool {
        match self.slots.get(name) {
            Some(&slot) => {
                self.watched[slot].fresh = Some(fresh);
                true
            }
            None => false,
        }
    }

    /// Customers with a staged window awaiting the next pass.
    pub fn observed(&self) -> usize {
        self.watched.iter().filter(|w| w.fresh.is_some()).count()
    }

    /// Per-month drift-outcome rows (checks run, drift detected),
    /// alongside nothing else — the Table 1 ledger extension.
    pub fn ledger(&self) -> &AdoptionLedger {
        &self.ledger
    }

    /// Run one monitoring pass over every customer with a staged window:
    /// fan the drift checks out across the service's workers, fold the
    /// outcomes in registration order, re-queue the drifted customers
    /// through the priority lane, and roll their baselines forward to the
    /// fresh window. Deterministic: the same staged windows produce the
    /// same [`DriftPass`] for any worker count.
    pub fn tick(&mut self, month: &str) -> DriftPass {
        // Write-aside pass instrumentation, through the service's shared
        // registry — all no-ops unless the service was built with
        // `FleetAssessor::with_obs`. The probes themselves are timed by the
        // workers (`fleet.stage.drift_probe`); this layer adds whole-pass
        // latency, verdict/severity tallies, and the priority-lane
        // re-queue depth.
        let obs = self.service.obs().clone();
        let pass_span = obs.histogram("drift.pass_latency").start();
        let requeue_depth = obs.gauge("drift.requeue_depth");

        // Phase 1: submit every staged check, in registration order. The
        // fresh window is kept aside — the drifted subset re-assesses on
        // it and rolls its baseline forward to it. A fresh window whose
        // dimension schema no longer matches the baseline (a collector
        // dropped a counter) cannot be stitched; it becomes an immediate
        // Inconclusive outcome instead of killing the pass for everyone.
        enum Pending {
            InFlight(usize, PerfHistory, DriftTicket),
            Immediate(DriftOutcome),
        }
        let p_g = self.p_g;
        let mut pending = Vec::new();
        for (slot, w) in self.watched.iter_mut().enumerate() {
            let Some(fresh) = w.fresh.take() else { continue };
            let stitched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                doppler_telemetry::concat(&w.customer.baseline, &fresh)
            }));
            let history = match stitched {
                Ok(history) => history,
                Err(payload) => {
                    pending.push(Pending::Immediate(DriftOutcome {
                        index: 0, // re-indexed at collection
                        customer: w.customer.name.clone(),
                        deployment: w.customer.deployment,
                        region: w.customer.region(),
                        verdict: DriftVerdict::Inconclusive,
                        severity: DriftSeverity::None,
                        before_sku: None,
                        after_sku: None,
                        throttle_if_unchanged: 0.0,
                        cost_delta: None,
                        error: Some(crate::assessor::panic_message(payload)),
                    }));
                    continue;
                }
            };
            let probe = DriftProbe {
                customer: w.customer.name.clone(),
                deployment: w.customer.deployment,
                catalog_key: w.customer.catalog_key.clone(),
                history,
                change_point: w.customer.baseline.len(),
                p_g,
            };
            match self.service.submit_drift(probe) {
                Ok(ticket) => pending.push(Pending::InFlight(slot, fresh, ticket)),
                // The service was closed under the monitor: nothing can be
                // checked any more; leave the window staged for a future
                // monitor over a live service.
                Err(_) => {
                    w.fresh = Some(fresh);
                    break;
                }
            }
        }

        // Phase 2: collect outcomes in submission order, re-indexed to
        // their position in this pass, and record them.
        let mut outcomes: Vec<DriftOutcome> = Vec::with_capacity(pending.len());
        let mut requeue = Vec::new();
        for entry in pending {
            let mut outcome = match entry {
                Pending::Immediate(outcome) => outcome,
                Pending::InFlight(slot, fresh, ticket) => {
                    let Some(outcome) = ticket.recv() else { continue };
                    if outcome.verdict == DriftVerdict::Drifted {
                        requeue.push((slot, fresh, outcome.severity));
                    }
                    outcome
                }
            };
            outcome.index = outcomes.len();
            self.ledger.record_drift(month, outcome.verdict == DriftVerdict::Drifted);
            outcomes.push(outcome);
        }
        let mut report = FleetDriftReport::from_outcomes(month, &outcomes);
        report.catalog_rolls = std::mem::take(&mut self.rolls_since_tick);
        if obs.is_enabled() {
            for outcome in &outcomes {
                obs.counter(&format!("drift.verdict.{:?}", outcome.verdict)).incr();
                obs.counter(&format!("drift.severity.{:?}", outcome.severity)).incr();
            }
        }

        // Phase 3: drifted customers jump the queue, worst drift first —
        // within the priority lane the re-queue is severity-ordered
        // (Critical ahead of High ahead of Moderate…), stably, so equally
        // graded customers keep registration order and the pass stays
        // deterministic. Each re-assessment runs the *full* pipeline
        // (profiling, matching, and the original confidence settings) on
        // the fresh window, month-tagged so the service's own adoption
        // ledger records the re-assessment wave.
        requeue.sort_by_key(|&(_, _, severity)| std::cmp::Reverse(severity.bucket()));
        let mut tickets = Vec::new();
        for (slot, fresh, _severity) in requeue {
            let c = &self.watched[slot].customer;
            let request = AssessmentRequest::from_history(
                c.name.clone(),
                fresh.clone(),
                c.file_sizes_gib.clone(),
                c.confidence,
            );
            let mut fleet_request =
                FleetRequest::new(c.deployment, request).with_month(month).with_priority();
            if let Some(key) = &c.catalog_key {
                fleet_request = fleet_request.with_catalog_key(key.clone());
            }
            if let Ok(ticket) = self.service.submit(fleet_request) {
                requeue_depth.add(1);
                tickets.push((slot, fresh, ticket));
            }
        }
        let mut reassessments = Vec::with_capacity(tickets.len());
        for (slot, fresh, ticket) in tickets {
            requeue_depth.add(-1);
            let Some(result) = ticket.recv() else { continue };
            if let Ok(assessed) = &result.outcome {
                let w = &mut self.watched[slot];
                w.customer.baseline = fresh;
                w.customer.baseline_sku = assessed.recommendation.sku_id.clone();
                w.customer.baseline_cost = assessed.recommendation.monthly_cost;
            }
            reassessments.push(result);
        }

        obs.counter("drift.passes").incr();
        obs.counter("drift.reassessments").add(reassessments.len() as u64);
        if obs.is_enabled() {
            obs.event(
                "drift.pass",
                &format!(
                    "month={month} checked={} drifted={} reassessed={}",
                    report.checked,
                    report.drifted,
                    reassessments.len()
                ),
            );
        }
        drop(pass_span);
        DriftPass { report, outcomes, reassessments }
    }

    /// Process one catalog version roll — the lifecycle hook a
    /// [`RefreshableCatalogProvider`]
    /// feed produces a [`CatalogRoll`](doppler_catalog::CatalogRoll) for:
    ///
    /// 1. the old key is **retired** in the shared registry
    ///    ([`EngineRegistry::retire_version`](doppler_core::EngineRegistry::retire_version)),
    ///    so nothing can silently retrain or serve the superseded catalog;
    /// 2. every watched customer pinned to the old key is re-pinned to the
    ///    new key and **re-assessed through the priority lane** on its
    ///    baseline window (the workload did not change — its price did),
    ///    jumping any normal backlog exactly like drifted customers do;
    /// 3. successful re-assessments roll the customer's standing
    ///    recommendation (SKU and monthly cost) forward, and the roll is
    ///    recorded in the ledger's `catalog_rolls` / `customers_repriced`
    ///    columns and surfaced by the next pass's
    ///    [`FleetDriftReport::catalog_rolls`].
    ///
    /// Customers in other regions (or at other versions) are untouched —
    /// their keys still resolve warm. Deterministic: re-assessments are
    /// submitted and collected in watch order, so equal fleets produce
    /// bit-for-bit equal [`CatalogRollOutcome::repriced`] vectors at any
    /// worker count.
    pub fn on_catalog_roll(
        &mut self,
        month: &str,
        old_key: &CatalogKey,
        new_key: &CatalogKey,
    ) -> CatalogRollOutcome {
        let retired_engines =
            self.service.registry().map_or(0, |registry| registry.retire_version(old_key));

        // Re-pin and re-queue, in watch order. The key moves even if the
        // re-assessment later fails: the old key is retired, so leaving a
        // customer pinned to it would strand every future check. A submit
        // the service refuses (closed mid-roll) must still surface — the
        // customer was already re-pinned, so dropping it here would hide
        // an un-re-priced customer from the outcome and the ledger.
        enum Submitted {
            InFlight(crate::service::Ticket),
            Refused,
        }
        let mut pending = Vec::new();
        for (slot, w) in self.watched.iter_mut().enumerate() {
            if w.customer.catalog_key.as_ref() != Some(old_key) {
                continue;
            }
            w.customer.catalog_key = Some(new_key.clone());
            let c = &w.customer;
            let request = AssessmentRequest::from_history(
                c.name.clone(),
                c.baseline.clone(),
                c.file_sizes_gib.clone(),
                c.confidence,
            );
            let fleet_request = FleetRequest::new(c.deployment, request)
                .with_catalog_key(new_key.clone())
                .with_month(month)
                .with_priority();
            let submitted = match self.service.submit(fleet_request) {
                Ok(ticket) => Submitted::InFlight(ticket),
                Err(_) => Submitted::Refused,
            };
            pending.push((slot, submitted));
        }

        let month_label: Arc<str> = Arc::from(month);
        let mut repriced = Vec::with_capacity(pending.len());
        let mut reprice_failures = 0usize;
        for (position, (slot, submitted)) in pending.into_iter().enumerate() {
            // A refused submit — or a ticket the shut-down service never
            // answers — becomes a failed result for the customer, indexed
            // by its position in this roll.
            let failed = |message: &str| FleetResult {
                index: position,
                instance_name: Arc::from(self.watched[slot].customer.name.as_str()),
                deployment: self.watched[slot].customer.deployment,
                month: Some(Arc::clone(&month_label)),
                outcome: Err(AssessmentError { message: message.to_string() }),
            };
            let result = match submitted {
                Submitted::InFlight(ticket) => ticket
                    .recv()
                    .unwrap_or_else(|| failed("re-price dropped: service shut down mid-roll")),
                Submitted::Refused => failed("re-price refused: service closed"),
            };
            match &result.outcome {
                Ok(assessed) => {
                    let w = &mut self.watched[slot];
                    w.customer.baseline_sku = assessed.recommendation.sku_id.clone();
                    w.customer.baseline_cost = assessed.recommendation.monthly_cost;
                }
                Err(_) => reprice_failures += 1,
            }
            repriced.push(result);
        }
        self.ledger.record_roll(month, repriced.iter().filter(|r| r.outcome.is_ok()).count());
        self.rolls_since_tick += 1;
        let obs = self.service.obs();
        obs.counter("drift.catalog_rolls").incr();
        if reprice_failures > 0 {
            obs.counter("drift.reprice_failures").add(reprice_failures as u64);
        }
        if obs.is_enabled() {
            obs.event(
                "catalog.roll",
                &format!(
                    "month={month} {old_key} -> {new_key} retired={retired_engines} repriced={} failed={reprice_failures}",
                    repriced.len()
                ),
            );
        }
        CatalogRollOutcome {
            old_key: old_key.clone(),
            new_key: new_key.clone(),
            retired_engines,
            repriced,
            reprice_failures,
        }
    }

    /// Dispatch every change-log roll this monitor has not yet handled —
    /// oldest first, each through
    /// [`on_catalog_roll`](DriftMonitor::on_catalog_roll) — and advance
    /// the monitor's last-seen-roll cursor past them.
    ///
    /// This is the replay-safe subscription over
    /// [`RefreshableCatalogProvider::change_log_since`]: because the
    /// monitor only ever reads the log *after* its cursor, feeding it the
    /// same provider twice (or re-running a dispatch loop over an
    /// unchanged log) dispatches nothing the second time — each roll
    /// re-prices its pinned customers exactly once. Hand-replaying the
    /// full [`change_log`](RefreshableCatalogProvider::change_log) into
    /// [`on_catalog_roll`](DriftMonitor::on_catalog_roll) has no such
    /// protection and double-dispatches; prefer this entry point.
    pub fn dispatch_rolls(
        &mut self,
        month: &str,
        provider: &RefreshableCatalogProvider,
    ) -> Vec<CatalogRollOutcome> {
        let rolls = provider.change_log_since(self.roll_cursor);
        self.roll_cursor += rolls.len();
        rolls.iter().map(|roll| self.on_catalog_roll(month, &roll.old_key, &roll.new_key)).collect()
    }

    /// How many change-log rolls
    /// [`dispatch_rolls`](DriftMonitor::dispatch_rolls) has dispatched.
    pub fn roll_cursor(&self) -> usize {
        self.roll_cursor
    }

    /// Shut the underlying service down, returning its final assessment
    /// report (which includes the monitor's month-tagged re-assessments).
    pub fn shutdown(self) -> FleetReport {
        self.service.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use doppler_catalog::{
        azure_paas_catalog, CatalogSpec, CatalogVersion, InMemoryCatalogProvider,
    };
    use doppler_core::{DopplerEngine, EngineConfig, EngineRegistry};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    use crate::assessor::{EngineRoute, FleetConfig};

    fn window(cpu: f64, n: usize) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; n]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; n]))
    }

    fn monitor(workers: usize) -> DriftMonitor {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        DriftMonitor::new(FleetAssessor::new(engine, FleetConfig::with_workers(workers)))
    }

    #[test]
    fn grown_customers_drift_and_requeue_while_steady_ones_hold() {
        let mut monitor = monitor(2);
        monitor.watch(
            MonitoredCustomer::new("grower", DeploymentType::SqlDb, window(0.5, 96))
                .with_recommendation("DB_GP_2", Some(100.0)),
        );
        monitor.watch(MonitoredCustomer::new("steady", DeploymentType::SqlDb, window(0.5, 96)));
        assert_eq!(monitor.watched(), 2);
        assert!(monitor.observe("grower", window(7.0, 96)));
        assert!(monitor.observe("steady", window(0.6, 96)));
        assert!(!monitor.observe("stranger", window(1.0, 96)));
        assert_eq!(monitor.observed(), 2);

        let pass = monitor.tick("Nov-21");
        assert_eq!(monitor.observed(), 0, "the pass consumed the staged windows");
        assert_eq!(pass.report.checked, 2);
        assert_eq!(pass.report.drifted, 1);
        assert_eq!(pass.report.stable, 1);
        assert_eq!(pass.report.inconclusive, 0);
        assert_eq!(pass.outcomes.len(), 2);
        assert_eq!(pass.outcomes[0].customer, "grower");
        assert_eq!(pass.outcomes[0].verdict, DriftVerdict::Drifted);
        assert!(pass.outcomes[0].severity >= DriftSeverity::High, "staying put throttles hard");
        assert_eq!(pass.outcomes[1].verdict, DriftVerdict::Stable);
        assert_eq!(pass.outcomes[1].severity, DriftSeverity::None);

        // Only the drifted customer re-assessed, through the priority lane.
        assert_eq!(pass.reassessments.len(), 1);
        assert_eq!(&*pass.reassessments[0].instance_name, "grower");
        let new_sku = pass.reassessments[0]
            .outcome
            .as_ref()
            .unwrap()
            .recommendation
            .sku_id
            .clone()
            .expect("placed");
        assert_ne!(new_sku, "DB_GP_2");

        // The drifted baseline rolled forward: the same fresh window again
        // now reads as stable.
        monitor.observe("grower", window(7.0, 96));
        let second = monitor.tick("Dec-21");
        assert_eq!(second.report.drifted, 0);
        assert_eq!(second.report.stable, 1);

        // Ledger drift rows by month.
        assert_eq!(monitor.ledger().month("Nov-21").unwrap().drift_checks, 2);
        assert_eq!(monitor.ledger().month("Nov-21").unwrap().drift_detected, 1);
        assert_eq!(monitor.ledger().month("Dec-21").unwrap().drift_detected, 0);

        // The service's own report counted the (month-tagged) priority
        // re-assessment.
        let report = monitor.shutdown();
        assert_eq!(report.fleet_size, 1);
        assert_eq!(report.adoption.month("Nov-21").unwrap().unique_instances, 1);
    }

    #[test]
    fn requeue_is_severity_ordered_critical_first() {
        let mut monitor = monitor(2);
        // Registration order: the mild drifter first, the runaway one
        // second — so severity ordering is observably *not* registration
        // order.
        monitor.watch(MonitoredCustomer::new("mild", DeploymentType::SqlDb, window(0.5, 96)));
        monitor.watch(MonitoredCustomer::new("wild", DeploymentType::SqlDb, window(0.5, 96)));
        // Mild: spiky — a handful of samples above the old SKU moves the
        // selection, but the throttle exposure stays a few percent.
        let spiky = PerfHistory::new()
            .with(
                PerfDimension::Cpu,
                TimeSeries::ten_minute([vec![0.5; 90], vec![3.0; 6]].concat()),
            )
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]));
        assert!(monitor.observe("mild", spiky));
        assert!(monitor.observe("wild", window(7.0, 96)));

        let pass = monitor.tick("Nov-21");
        assert_eq!(pass.report.drifted, 2, "{:?}", pass.outcomes);
        // Outcomes stay in registration order…
        assert_eq!(pass.outcomes[0].customer, "mild");
        assert_eq!(pass.outcomes[1].customer, "wild");
        assert!(
            pass.outcomes[1].severity > pass.outcomes[0].severity,
            "the 14x grower must outrank the mild one ({:?} vs {:?})",
            pass.outcomes[1].severity,
            pass.outcomes[0].severity,
        );
        // …but the priority-lane re-queue is severity-ordered: worst first.
        assert_eq!(pass.reassessments.len(), 2);
        assert_eq!(&*pass.reassessments[0].instance_name, "wild");
        assert_eq!(&*pass.reassessments[1].instance_name, "mild");
    }

    #[test]
    fn tick_without_observations_is_empty() {
        let mut monitor = monitor(1);
        monitor.watch(MonitoredCustomer::new("idle", DeploymentType::SqlDb, window(0.5, 48)));
        let pass = monitor.tick("Jan-22");
        assert_eq!(pass.report.checked, 0);
        assert_eq!(pass.report, FleetDriftReport::from_outcomes("Jan-22", &[]));
        assert!(pass.reassessments.is_empty());
        assert_eq!(monitor.ledger().month("Jan-22"), None, "no checks, no row");
    }

    #[test]
    fn rewatching_a_name_replaces_the_entry() {
        let mut monitor = monitor(1);
        monitor.watch(MonitoredCustomer::new("c", DeploymentType::SqlDb, window(0.5, 48)));
        monitor.observe("c", window(0.5, 48));
        monitor.watch(MonitoredCustomer::new("c", DeploymentType::SqlDb, window(1.0, 48)));
        assert_eq!(monitor.watched(), 1);
        assert_eq!(monitor.observed(), 0, "re-watching drops the staged window");
    }

    #[test]
    fn schema_mismatched_fresh_windows_are_inconclusive_not_fatal() {
        use doppler_telemetry::TimeSeries;
        let mut monitor = monitor(2);
        monitor.watch(MonitoredCustomer::new("broken", DeploymentType::SqlDb, window(0.5, 48)));
        monitor.watch(MonitoredCustomer::new("fine", DeploymentType::SqlDb, window(0.5, 48)));
        // The collector stopped reporting IoLatency: the fresh window no
        // longer matches the baseline's schema and cannot be stitched.
        let partial =
            PerfHistory::new().with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![0.5; 48]));
        monitor.observe("broken", partial);
        monitor.observe("fine", window(0.5, 48));
        let pass = monitor.tick("Aug-22");
        assert_eq!(pass.report.checked, 2, "the pass survives the broken window");
        assert_eq!(pass.report.inconclusive, 1);
        assert_eq!(pass.report.stable, 1);
        assert_eq!(pass.outcomes[0].customer, "broken");
        assert_eq!(pass.outcomes[0].verdict, DriftVerdict::Inconclusive);
        assert!(pass.outcomes[0].error.as_ref().unwrap().contains("misaligned"));
        // Outcome indices are pass positions, including across ticks.
        assert_eq!(pass.outcomes[0].index, 0);
        assert_eq!(pass.outcomes[1].index, 1);
        monitor.observe("fine", window(0.5, 48));
        let second = monitor.tick("Sep-22");
        assert_eq!(second.outcomes[0].index, 0);
    }

    #[test]
    fn reassessments_keep_the_customers_confidence_settings() {
        use doppler_core::ConfidenceConfig;
        let mut monitor = monitor(2);
        monitor.watch(
            MonitoredCustomer::new("conf", DeploymentType::SqlDb, window(0.5, 96))
                .with_confidence(ConfidenceConfig { replicates: 8, window_samples: 48, seed: 7 }),
        );
        monitor.observe("conf", window(7.0, 96));
        let pass = monitor.tick("Oct-22");
        assert_eq!(pass.reassessments.len(), 1);
        let rec = &pass.reassessments[0].outcome.as_ref().unwrap().recommendation;
        assert!(rec.confidence.is_some(), "re-assessment keeps computing confidence");
    }

    #[test]
    fn unroutable_customers_are_inconclusive_not_fatal() {
        let mut monitor = monitor(1);
        monitor.watch(MonitoredCustomer::new("mi", DeploymentType::SqlMi, window(0.5, 48)));
        monitor.observe("mi", window(0.5, 48));
        let pass = monitor.tick("Feb-22");
        assert_eq!(pass.report.inconclusive, 1);
        assert_eq!(pass.outcomes[0].verdict, DriftVerdict::Inconclusive);
        assert!(pass.outcomes[0].error.as_ref().unwrap().contains("SqlMi"));
        assert!(pass.reassessments.is_empty());
    }

    #[test]
    fn keyed_customers_attribute_to_their_region() {
        use doppler_catalog::Region;
        let provider = InMemoryCatalogProvider::production().with_region(
            Region::new("westeurope"),
            CatalogVersion::INITIAL,
            &CatalogSpec::default(),
            1.08,
        );
        let registry = Arc::new(EngineRegistry::new(Arc::new(provider)));
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(2))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let mut monitor = DriftMonitor::new(assessor);
        let west =
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("westeurope"));
        monitor.watch(
            MonitoredCustomer::new("west-grower", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(west),
        );
        monitor.watch(MonitoredCustomer::new(
            "global-steady",
            DeploymentType::SqlDb,
            window(0.5, 48),
        ));
        monitor.observe("west-grower", window(7.0, 48));
        monitor.observe("global-steady", window(0.5, 48));
        let pass = monitor.tick("Mar-22");
        assert_eq!(pass.report.drifted, 1);
        assert_eq!(pass.report.regions.len(), 2);
        let west_row =
            pass.report.regions.iter().find(|r| r.region == Region::new("westeurope")).unwrap();
        assert_eq!((west_row.checked, west_row.drifted), (1, 1));
        let global_row = pass.report.regions.iter().find(|r| r.region == Region::global()).unwrap();
        assert_eq!((global_row.checked, global_row.stable), (1, 1));
        // The drifted West Europe customer re-assessed against its own
        // (8 % dearer) catalog.
        assert_eq!(pass.reassessments.len(), 1);
        let rec = &pass.reassessments[0].outcome.as_ref().unwrap().recommendation;
        assert!(rec.monthly_cost.unwrap() > 0.0);
        // And the report's cost delta is priced in-region too.
        assert!(west_row.cost_delta > 0.0);
        assert!((pass.report.total_cost_delta - west_row.cost_delta).abs() < 1e-9);
    }

    #[test]
    fn sharded_monitor_pass_matches_the_unsharded_pass() {
        use doppler_catalog::Region;
        // Re-queues route through `FleetService::submit`, so a sharded
        // monitor sends each drifted customer to its region's own shard —
        // and the pass (report, outcomes, re-assessments) must still be
        // bit-for-bit what a single-shard monitor produces.
        let run = |shards: usize| {
            let provider = (0..3).fold(InMemoryCatalogProvider::production(), |p, i| {
                p.with_region(
                    Region::new(format!("region-{i}")),
                    CatalogVersion::INITIAL,
                    &CatalogSpec::default(),
                    1.0,
                )
            });
            let registry = Arc::new(EngineRegistry::new(Arc::new(provider)));
            let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(2))
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
                .with_shard_plan(crate::shard::ShardPlan::by_region(shards));
            let mut monitor = DriftMonitor::new(assessor);
            for i in 0..6 {
                let key = CatalogKey::production(DeploymentType::SqlDb)
                    .in_region(Region::new(format!("region-{}", i % 3)));
                monitor.watch(
                    MonitoredCustomer::new(format!("c{i}"), DeploymentType::SqlDb, window(0.5, 96))
                        .with_catalog_key(key),
                );
                monitor.observe(&format!("c{i}"), window(if i % 2 == 0 { 7.0 } else { 0.5 }, 96));
            }
            monitor.tick("Jun-22")
        };
        let unsharded = run(1);
        assert_eq!(unsharded.report.drifted, 3);
        assert_eq!(unsharded.reassessments.len(), 3);
        for shards in [2, 3] {
            let sharded = run(shards);
            assert_eq!(sharded.report, unsharded.report, "report at {shards} shards");
            assert_eq!(sharded.outcomes, unsharded.outcomes, "outcomes at {shards} shards");
            assert_eq!(sharded.reassessments.len(), unsharded.reassessments.len());
            for (s, u) in sharded.reassessments.iter().zip(&unsharded.reassessments) {
                assert_eq!(s.instance_name, u.instance_name, "{shards} shards");
                let (sr, ur) = (s.outcome.as_ref().unwrap(), u.outcome.as_ref().unwrap());
                assert_eq!(sr.recommendation.sku_id, ur.recommendation.sku_id);
                assert_eq!(sr.recommendation.monthly_cost, ur.recommendation.monthly_cost);
            }
        }
    }

    #[test]
    fn watch_assessment_seeds_the_monitor_from_a_fleet_run() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let assessor = FleetAssessor::new(engine, FleetConfig::with_workers(2));
        let fleet: Vec<FleetRequest> = (0..4)
            .map(|i| {
                FleetRequest::new(
                    DeploymentType::SqlDb,
                    AssessmentRequest::from_history(format!("c{i}"), window(0.5, 48), vec![], None),
                )
            })
            .collect();
        let out = assessor.assess(fleet.clone());
        let mut monitor = DriftMonitor::new(FleetAssessor::new(
            DopplerEngine::untrained(
                azure_paas_catalog(&CatalogSpec::default()),
                EngineConfig::production(DeploymentType::SqlDb),
            ),
            FleetConfig::with_workers(2),
        ));
        for (request, result) in fleet.iter().zip(&out.results) {
            assert!(monitor.watch_assessment(request, result));
        }
        assert_eq!(monitor.watched(), 4);
        // The registered baseline carries the standing recommendation.
        monitor.observe("c0", window(7.0, 48));
        let pass = monitor.tick("Apr-22");
        assert_eq!(pass.report.drifted, 1);
        assert_eq!(pass.outcomes[0].before_sku.as_deref(), Some("DB_GP_2"));
    }

    #[test]
    fn report_rows_sum_to_totals_and_render_mentions_sections() {
        let mut monitor = monitor(4);
        for i in 0..6 {
            monitor.watch(MonitoredCustomer::new(
                format!("c{i}"),
                DeploymentType::SqlDb,
                window(0.5, 48),
            ));
            monitor.observe(&format!("c{i}"), window(if i % 3 == 0 { 7.0 } else { 0.5 }, 48));
        }
        let pass = monitor.tick("May-22");
        let report = &pass.report;
        assert_eq!(report.checked, 6);
        assert_eq!(report.drifted + report.stable + report.inconclusive, report.checked);
        assert_eq!(report.severity.iter().sum::<usize>(), report.checked);
        let region_checked: usize = report.regions.iter().map(|r| r.checked).sum();
        assert_eq!(region_checked, report.checked);
        let deployment_drifted: usize = report.deployments.iter().map(|d| d.drifted).sum();
        assert_eq!(deployment_drifted, report.drifted);
        assert_eq!(report.drifted_customers.len(), report.drifted);
        let text = report.render();
        assert!(text.contains("Fleet Drift Report (May-22)"), "{text}");
        assert!(text.contains("Severity"), "{text}");
        assert!(text.contains("Drifted"), "{text}");
        assert!(text.contains("re-recommendation cost delta"), "{text}");
    }

    #[test]
    fn catalog_roll_reprices_pinned_customers_and_retires_the_old_engine() {
        use doppler_catalog::{PriceFeed, RefreshableCatalogProvider, Region};
        let provider = Arc::new(RefreshableCatalogProvider::new(Arc::new(
            InMemoryCatalogProvider::production().with_region(
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.08,
            ),
        )));
        let registry = Arc::new(EngineRegistry::new(
            Arc::clone(&provider) as Arc<dyn doppler_catalog::CatalogProvider>
        ));
        let assessor =
            FleetAssessor::over_registry(Arc::clone(&registry), FleetConfig::with_workers(2))
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let mut monitor = DriftMonitor::new(assessor);

        let west = Region::new("westeurope");
        let old_key = CatalogKey::production(DeploymentType::SqlDb).in_region(west.clone());
        monitor.watch(
            MonitoredCustomer::new("west-a", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(old_key.clone())
                .with_recommendation("DB_GP_2", Some(100.0)),
        );
        monitor.watch(MonitoredCustomer::new("global-b", DeploymentType::SqlDb, window(0.5, 48)));
        monitor.watch(
            MonitoredCustomer::new("west-c", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(old_key.clone()),
        );
        // Train the old key's engine so there is something to retire.
        monitor.observe("west-a", window(0.5, 48));
        let pass = monitor.tick("Oct-22");
        assert_eq!(pass.report.stable, 1);
        assert_eq!(pass.report.catalog_rolls, 0);
        let priced_at_v1 = registry
            .get_or_train(
                &old_key,
                &doppler_core::EngineTemplate::production(),
                &doppler_core::TrainingSet::empty(),
            )
            .unwrap()
            .recommend(&window(0.5, 48), None)
            .monthly_cost
            .unwrap();

        // A 10 % price cut lands in West Europe and the region rolls.
        let rolls = provider.apply_feed(&west, PriceFeed::Multiplier(0.9)).unwrap();
        let roll = rolls.iter().find(|r| r.old_key == old_key).expect("DB key rolled");
        let outcome = monitor.on_catalog_roll("Nov-22", &roll.old_key, &roll.new_key);

        assert_eq!(outcome.retired_engines, 1, "the v1 engine was tombstoned");
        assert_eq!(outcome.repriced.len(), 2, "both pinned customers re-priced, watch order");
        assert_eq!(&*outcome.repriced[0].instance_name, "west-a");
        assert_eq!(&*outcome.repriced[1].instance_name, "west-c");
        for result in &outcome.repriced {
            let rec = &result.outcome.as_ref().unwrap().recommendation;
            assert_eq!(rec.sku_id.as_deref(), Some("DB_GP_2"), "same workload, same shape");
            let cost = rec.monthly_cost.unwrap();
            assert!((cost - priced_at_v1 * 0.9).abs() < 1e-6, "{cost} vs {priced_at_v1}");
        }

        // The registry refused to retrain the old key and trained the new
        // one exactly once.
        let stats = registry.stats();
        assert_eq!(stats.retirements, 1);
        assert!(matches!(
            registry.get_or_train(
                &old_key,
                &doppler_core::EngineTemplate::production(),
                &doppler_core::TrainingSet::empty(),
            ),
            Err(doppler_core::RegistryError::Retired(_))
        ));

        // The ledger and the next pass's report surface the roll.
        assert_eq!(monitor.ledger().month("Nov-22").unwrap().catalog_rolls, 1);
        assert_eq!(monitor.ledger().month("Nov-22").unwrap().customers_repriced, 2);
        monitor.observe("global-b", window(0.5, 48));
        let pass = monitor.tick("Nov-22");
        assert_eq!(pass.report.catalog_rolls, 1);
        assert!(pass.report.render().contains("catalog rolls since last pass: 1"));
        let next = monitor.tick("Dec-22");
        assert_eq!(next.report.catalog_rolls, 0, "rolls are per-pass, not cumulative");

        // The service's own assessment report counted the month-tagged
        // priority re-assessments.
        let report = monitor.shutdown();
        let nov = report.adoption.month("Nov-22").unwrap();
        assert_eq!(nov.unique_instances, 2, "the two priority re-assessments");
    }

    #[test]
    fn catalog_roll_with_no_pinned_customers_still_logs() {
        let mut monitor = monitor(1);
        let old = CatalogKey::production(DeploymentType::SqlDb);
        let new = old.clone().at_version(CatalogVersion(2));
        let outcome = monitor.on_catalog_roll("Jan-23", &old, &new);
        assert_eq!(outcome.retired_engines, 0, "no registry behind fixed pipelines");
        assert!(outcome.repriced.is_empty());
        assert_eq!(monitor.ledger().month("Jan-23").unwrap().catalog_rolls, 1);
        assert_eq!(monitor.ledger().month("Jan-23").unwrap().customers_repriced, 0);
    }

    /// A monitor over a registry-backed service with `pinned` customers
    /// pinned to the initial West Europe DB key, for the roll-dispatch
    /// tests. Returns the monitor, the provider, and the pinned key.
    fn pinned_monitor(
        pinned: usize,
    ) -> (DriftMonitor, Arc<doppler_catalog::RefreshableCatalogProvider>, CatalogKey) {
        use doppler_catalog::{RefreshableCatalogProvider, Region};
        let provider = Arc::new(RefreshableCatalogProvider::new(Arc::new(
            InMemoryCatalogProvider::production().with_region(
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.08,
            ),
        )));
        let registry = Arc::new(EngineRegistry::new(
            Arc::clone(&provider) as Arc<dyn doppler_catalog::CatalogProvider>
        ));
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(2))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let mut monitor = DriftMonitor::new(assessor);
        let key =
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("westeurope"));
        for i in 0..pinned {
            monitor.watch(
                MonitoredCustomer::new(format!("pin-{i}"), DeploymentType::SqlDb, window(0.5, 48))
                    .with_catalog_key(key.clone()),
            );
        }
        (monitor, provider, key)
    }

    #[test]
    fn twice_replayed_change_log_reprices_each_customer_exactly_once() {
        use doppler_catalog::{PriceFeed, Region};
        let (mut monitor, provider, key) = pinned_monitor(2);
        let west = Region::new("westeurope");

        // Nothing in the log yet: dispatch is a no-op.
        assert!(monitor.dispatch_rolls("Oct-22", &provider).is_empty());
        assert_eq!(monitor.roll_cursor(), 0);

        // A price cut rolls the region (both deployments). The first
        // dispatch re-prices each pinned customer exactly once.
        provider.apply_feed(&west, PriceFeed::Multiplier(0.9)).unwrap();
        let outcomes = monitor.dispatch_rolls("Nov-22", &provider);
        assert_eq!(outcomes.len(), 2, "DB and MI keys of the region rolled together");
        assert_eq!(monitor.roll_cursor(), provider.rolls());
        let db_roll = outcomes.iter().find(|o| o.old_key == key).expect("DB key rolled");
        assert_eq!(db_roll.repriced.len(), 2);
        assert_eq!(db_roll.reprice_failures, 0);
        assert_eq!(monitor.ledger().month("Nov-22").unwrap().customers_repriced, 2);

        // The regression: replaying the (unchanged) log again — the exact
        // call pattern that used to double-dispatch when operators fed
        // `change_log()` back into `on_catalog_roll` — dispatches nothing.
        assert!(monitor.dispatch_rolls("Nov-22", &provider).is_empty());
        assert!(monitor.dispatch_rolls("Nov-22", &provider).is_empty());
        assert_eq!(
            monitor.ledger().month("Nov-22").unwrap().customers_repriced,
            2,
            "a twice-replayed log re-prices each customer exactly once"
        );
        assert_eq!(monitor.ledger().month("Nov-22").unwrap().catalog_rolls, 2);

        // A *new* roll after the cursor still dispatches (exactly once).
        provider.apply_feed(&west, PriceFeed::Multiplier(0.8)).unwrap();
        let outcomes = monitor.dispatch_rolls("Dec-22", &provider);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(monitor.ledger().month("Dec-22").unwrap().customers_repriced, 2);
        assert!(monitor.dispatch_rolls("Dec-22", &provider).is_empty());
        assert_eq!(monitor.ledger().month("Dec-22").unwrap().customers_repriced, 2);
    }

    #[test]
    fn refused_reprices_surface_as_failed_results_not_silent_drops() {
        use doppler_catalog::PriceFeed;
        let (mut monitor, provider, key) = pinned_monitor(2);
        provider
            .apply_feed(&doppler_catalog::Region::new("westeurope"), PriceFeed::Multiplier(0.9))
            .unwrap();
        let roll = provider.change_log().into_iter().find(|r| r.old_key == key).unwrap();

        // The service closes under the monitor (operator shutdown racing a
        // feed). Every pinned customer's re-price submit is refused — the
        // old behavior dropped them from the outcome entirely.
        monitor.service().close();
        let outcome = monitor.on_catalog_roll("Jan-23", &roll.old_key, &roll.new_key);
        assert_eq!(outcome.repriced.len(), 2, "refused re-prices still surface, in watch order");
        assert_eq!(outcome.reprice_failures, 2);
        for (i, result) in outcome.repriced.iter().enumerate() {
            assert_eq!(&*result.instance_name, &format!("pin-{i}"));
            assert_eq!(result.month.as_deref(), Some("Jan-23"));
            let err = result.outcome.as_ref().unwrap_err();
            assert!(err.message.contains("re-price refused"), "{}", err.message);
        }
        // The ledger only counts *successful* re-prices, but the roll is
        // recorded (the failure count rides the outcome).
        assert_eq!(monitor.ledger().month("Jan-23").unwrap().catalog_rolls, 1);
        assert_eq!(monitor.ledger().month("Jan-23").unwrap().customers_repriced, 0);
    }

    #[test]
    fn rewatching_replaces_the_baseline_and_keeps_pass_order() {
        let mut monitor = monitor(2);
        monitor.watch(
            MonitoredCustomer::new("a", DeploymentType::SqlDb, window(0.5, 96))
                .with_recommendation("DB_GP_2", Some(100.0)),
        );
        monitor.watch(MonitoredCustomer::new("b", DeploymentType::SqlDb, window(0.5, 96)));

        // Re-watch "a" with a *grown* baseline: the slot must be replaced
        // in place — same pass order, no stale duplicate left behind.
        monitor.watch(MonitoredCustomer::new("a", DeploymentType::SqlDb, window(7.0, 96)));
        assert_eq!(monitor.watched(), 2, "no duplicate entry");
        assert_eq!(monitor.watched_names().collect::<Vec<_>>(), ["a", "b"]);

        // Drift verdicts prove the *new* baseline is in force: the same
        // 7.0-CPU window that would read as drifted against the old
        // baseline is stable against the replacement.
        monitor.observe("a", window(7.0, 96));
        monitor.observe("b", window(0.5, 96));
        let pass = monitor.tick("Feb-23");
        assert_eq!(pass.outcomes[0].customer, "a", "pass order is registration order");
        assert_eq!(pass.outcomes[0].verdict, DriftVerdict::Stable, "new baseline in force");
        assert_eq!(pass.outcomes[1].customer, "b");
    }

    #[test]
    fn unwatch_retires_the_entry_and_keeps_the_remaining_order() {
        let mut monitor = monitor(2);
        for name in ["a", "b", "c"] {
            monitor.watch(MonitoredCustomer::new(name, DeploymentType::SqlDb, window(0.5, 48)));
        }
        monitor.observe("b", window(0.5, 48));
        assert!(monitor.unwatch("b"));
        assert!(!monitor.unwatch("b"), "already gone");
        assert!(!monitor.unwatch("stranger"));
        assert_eq!(monitor.watched(), 2);
        assert_eq!(monitor.watched_names().collect::<Vec<_>>(), ["a", "c"]);
        assert_eq!(monitor.observed(), 0, "the retired entry took its staged window with it");
        assert!(!monitor.observe("b", window(0.5, 48)), "retired names are unknown");

        // The survivors' slots re-indexed: both still observable, pass
        // order preserved.
        monitor.observe("a", window(0.5, 48));
        monitor.observe("c", window(0.5, 48));
        let pass = monitor.tick("Mar-23");
        assert_eq!(pass.outcomes.len(), 2);
        assert_eq!(pass.outcomes[0].customer, "a");
        assert_eq!(pass.outcomes[1].customer, "c");

        // Re-watching a retired name registers fresh, at the end.
        monitor.watch(MonitoredCustomer::new("b", DeploymentType::SqlDb, window(0.5, 48)));
        assert_eq!(monitor.watched_names().collect::<Vec<_>>(), ["a", "c", "b"]);
    }

    #[test]
    fn monitor_pass_is_worker_count_invariant() {
        let run = |workers: usize| {
            let mut m = monitor(workers);
            for i in 0..12 {
                m.watch(MonitoredCustomer::new(
                    format!("c{i}"),
                    DeploymentType::SqlDb,
                    window(0.4 + 0.05 * i as f64, 48),
                ));
                m.observe(&format!("c{i}"), window(if i % 4 == 0 { 6.5 } else { 0.5 }, 48));
            }
            let pass = m.tick("Jun-22");
            (pass.report, pass.outcomes)
        };
        let baseline = run(1);
        assert_eq!(run(4), baseline);
        assert_eq!(run(8), baseline);
    }
}
