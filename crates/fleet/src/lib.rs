//! # doppler-fleet — concurrent fleet-scale batch assessment
//!
//! Doppler shipped as a production service: DMA alone submitted hundreds
//! of assessment requests daily, and across Azure migration tooling the
//! engine issued 774K+ SKU recommendations (§4, Table 1). The per-instance
//! library in `doppler-dma` assesses one instance at a time; this crate is
//! the serving skeleton above it:
//!
//! * [`queue`] — a bounded, closable MPMC work queue, so fleets described
//!   by lazy iterators (streamed synthetic populations, §5-scale cohorts)
//!   are assessed in O(queue depth) request memory;
//! * [`assessor`] — the [`FleetAssessor`]: the one-shot batch entry point,
//!   sharing trained engines immutably via `Arc`, routing each request to
//!   its deployment's pipeline, catching per-instance panics into a
//!   failure bucket, and collecting results order-stably so output is
//!   bit-for-bit identical for any worker count;
//! * [`service`] — the [`FleetService`] streaming front-end: a long-lived
//!   worker pool accepting [`submit`](FleetService::submit)ted requests
//!   continuously, resolving them through [`Ticket`] handles, and
//!   publishing incremental [`FleetReport`] snapshots mid-run; also home to
//!   the DMA-facing [`AssessmentService`] batch wrapper;
//! * [`report`] — the [`FleetReport`] aggregation layer: total monthly
//!   cost, SKU-mix histogram, curve-shape and confidence distributions,
//!   per-deployment breakdown, and the unplaceable/failure buckets, with a
//!   terminal rendering in the style of the bench crate's ASCII figures;
//! * [`ab`] — the [`AbFleet`] champion/challenger harness: the same
//!   cohort assessed through two recommendation backends, paired by
//!   submission index into side-by-side cost / confidence /
//!   SKU-agreement columns and an adoption row on the [`FleetReport`];
//! * [`backtest`] — the [`Backtest`] replay harness: a held-out cohort
//!   assessed through a candidate and a reference assessor, every pick
//!   replayed on the customer's own history through the `doppler-replay`
//!   queueing machine, scored into fit rates, throttle months, and a
//!   cost delta ([`BacktestReport`]);
//! * [`drift`] — the [`DriftMonitor`] continuous re-assessment loop
//!   (assess → deploy → monitor → re-queue): fleet-wide §5.2.3 drift
//!   checks over the same worker pool, [`FleetDriftReport`] roll-ups per
//!   region and deployment, priority-lane re-queueing of drifted
//!   customers, and the catalog-lifecycle hook
//!   ([`DriftMonitor::on_catalog_roll`]) that retires a rolled key's
//!   engines and re-prices its pinned customers through the same lane;
//! * [`scheduler`] — the [`FleetScheduler`] autonomous lifecycle loop: a
//!   virtual [`SimClock`] drives telemetry arrival, monthly drift ticks,
//!   price-feed application, cursor-based catalog-roll dispatch, and
//!   TTL-based retirement — years of fleet life simulated in seconds,
//!   bit-for-bit equal to the operator-cranked sequence;
//! * [`source`] — conversions from `doppler-workload` populations
//!   (cloud cohorts, on-prem candidates) into fleet request streams.
//!
//! ## Example
//!
//! ```
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_fleet::{cloud_fleet, FleetAssessor, FleetConfig};
//! use doppler_workload::PopulationSpec;
//!
//! let catalog = azure_paas_catalog(&CatalogSpec::default());
//! let engine = DopplerEngine::untrained(
//!     catalog.clone(),
//!     EngineConfig::production(DeploymentType::SqlDb),
//! );
//! let assessor = FleetAssessor::new(engine, FleetConfig::with_workers(4));
//!
//! let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(50, 42) };
//! let assessment = assessor.assess(cloud_fleet(&spec, &catalog, None));
//!
//! assert_eq!(assessment.report.fleet_size, 50);
//! println!("{}", assessment.report.render());
//! ```
//!
//! ## Streaming
//!
//! For continuous operation, convert the assessor into a [`FleetService`]
//! and submit requests as they arrive:
//!
//! ```
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_fleet::{cloud_fleet, FleetAssessor, FleetConfig};
//! use doppler_workload::PopulationSpec;
//!
//! let catalog = azure_paas_catalog(&CatalogSpec::default());
//! let engine = DopplerEngine::untrained(
//!     catalog.clone(),
//!     EngineConfig::production(DeploymentType::SqlDb),
//! );
//! let service =
//!     FleetAssessor::new(engine, FleetConfig::with_workers(2)).into_service();
//!
//! let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(10, 42) };
//! let tickets = service.submit_all(cloud_fleet(&spec, &catalog, None)).unwrap();
//! for ticket in tickets {
//!     let result = ticket.recv().expect("assessed");
//!     assert!(result.outcome.is_ok());
//! }
//! // `report_snapshot()` would render the same numbers mid-run.
//! let report = service.shutdown();
//! assert_eq!(report.fleet_size, 10);
//! ```

pub mod ab;
pub mod assessor;
pub mod backtest;
pub mod drift;
pub mod queue;
pub mod report;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod source;

pub use ab::{
    ab_summary_from_json, ab_summary_to_json, AbAdoption, AbAssessment, AbFleet, AbSideSummary,
    AbSummary, PromotionPolicy, RolloutEvent, RolloutStage, RolloutTracker,
};
pub use assessor::{
    AssessmentError, EngineRoute, FleetAssessment, FleetAssessor, FleetConfig, FleetRequest,
    FleetResult,
};
pub use backtest::{
    backtest_report_from_json, backtest_report_to_json, Backtest, BacktestCase, BacktestCaseRow,
    BacktestReport, ReplayScore,
};
pub use drift::{
    CatalogRollOutcome, DeploymentDriftRow, DriftMonitor, DriftOutcome, DriftPass, DriftProbe,
    DriftVerdict, DriftedRow, FleetDriftReport, MonitoredCustomer, RegionDriftRow,
};
pub use queue::BoundedQueue;
pub use report::{
    eligible_recommendations, ConfidenceSummary, DeploymentMixRow, DigestOutcome, FailureRow,
    FleetAggregator, FleetReport, ResultDigest, ShapeMixRow, SkuMixRow,
};
pub use scheduler::{
    schedule_summary_from_json, schedule_summary_to_json, FleetScheduler, ScheduleMonthRow,
    ScheduleSummary, SimClock, SimMonth,
};
pub use service::{
    AssessmentService, DriftTicket, FleetService, ServiceProgress, Ticket, TicketQueue,
};
pub use shard::ShardPlan;
pub use source::{cloud_fleet, customer_request, onprem_fleet, onprem_request};
