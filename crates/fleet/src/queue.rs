//! A bounded, closable, two-lane MPMC work queue built on `Mutex` +
//! `Condvar`.
//!
//! The fleet assessor feeds instance-assessment tasks through this queue so
//! that a fleet described by a lazy iterator (e.g. a streamed synthetic
//! population) is never fully materialized: the feeder blocks once
//! `capacity` tasks are in flight and resumes as workers drain them.
//!
//! The queue carries two lanes. [`push`](BoundedQueue::push) enqueues into
//! the *normal* lane; [`push_priority`](BoundedQueue::push_priority) into
//! the *priority* lane, which [`pop`](BoundedQueue::pop) serves first —
//! migration-deadline and drifted-customer work jumps the backlog without
//! jumping the memory bound (both lanes share one capacity). Within each
//! lane order is FIFO, and an anti-starvation valve guarantees the normal
//! lane keeps draining under sustained priority load: after
//! [`FAIRNESS`](BoundedQueue::FAIRNESS) consecutive priority pops with
//! normal work waiting, one normal item is served before the priority lane
//! resumes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use doppler_obs::{Counter, Gauge, Histogram, ObsRegistry};

/// Write-aside instrumentation for one queue: per-lane depth gauges, wait
/// histograms, and the valve-trip counter. All handles are no-ops when the
/// queue was built with [`BoundedQueue::new`] or a disabled registry, and
/// `enabled` gates the `Instant::now` reads so the no-op mode never touches
/// the clock.
struct QueueObs {
    enabled: bool,
    normal_depth: Gauge,
    priority_depth: Gauge,
    enqueue_wait: Histogram,
    pop_wait: Histogram,
    valve_trips: Counter,
}

impl QueueObs {
    fn disabled() -> QueueObs {
        QueueObs {
            enabled: false,
            normal_depth: Gauge::default(),
            priority_depth: Gauge::default(),
            enqueue_wait: Histogram::default(),
            pop_wait: Histogram::default(),
            valve_trips: Counter::default(),
        }
    }

    fn registered(obs: &ObsRegistry, prefix: &str) -> QueueObs {
        QueueObs {
            enabled: obs.is_enabled(),
            normal_depth: obs.gauge(&format!("{prefix}.depth.normal")),
            priority_depth: obs.gauge(&format!("{prefix}.depth.priority")),
            enqueue_wait: obs.histogram(&format!("{prefix}.enqueue_wait")),
            pop_wait: obs.histogram(&format!("{prefix}.pop_wait")),
            valve_trips: obs.counter(&format!("{prefix}.valve_trips")),
        }
    }
}

struct State<T> {
    priority: VecDeque<T>,
    items: VecDeque<T>,
    closed: bool,
    /// Consecutive pops served from the priority lane while the normal
    /// lane had work waiting — the anti-starvation valve's memory.
    priority_streak: usize,
}

impl<T> State<T> {
    fn len(&self) -> usize {
        self.priority.len() + self.items.len()
    }
}

/// A fixed-capacity two-lane queue: `push`/`push_priority` block while
/// full, `pop` blocks while empty and serves the priority lane first, and
/// `close` wakes everyone so the pipeline can drain and stop.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    obs: QueueObs,
}

impl<T> BoundedQueue<T> {
    /// After this many consecutive priority pops with normal work waiting,
    /// one normal item is served — the deterministic anti-starvation
    /// valve. (7 priority : 1 normal under sustained pressure on both
    /// lanes.)
    pub const FAIRNESS: usize = 7;

    /// A queue admitting at most `capacity` queued items across both lanes
    /// (min 1), with observability disabled.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                priority: VecDeque::new(),
                items: VecDeque::new(),
                closed: false,
                priority_streak: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            obs: QueueObs::disabled(),
        }
    }

    /// Like [`new`](BoundedQueue::new), but registering per-lane depth
    /// gauges (`{prefix}.depth.normal` / `.priority`), enqueue- and
    /// pop-wait histograms (`{prefix}.enqueue_wait` / `.pop_wait`), and the
    /// anti-starvation valve-trip counter (`{prefix}.valve_trips`) with
    /// `obs`. Instrumentation is write-aside: queue behavior is identical
    /// to an uninstrumented queue, and a disabled registry degrades to
    /// exactly [`new`](BoundedQueue::new).
    pub fn instrumented(capacity: usize, obs: &ObsRegistry, prefix: &str) -> BoundedQueue<T> {
        let mut queue = BoundedQueue::new(capacity);
        queue.obs = QueueObs::registered(obs, prefix);
        queue
    }

    /// Enqueue `item` on the normal lane, blocking while the queue is at
    /// capacity. Returns the item back as `Err` if the queue was closed in
    /// the meantime.
    pub fn push(&self, item: T) -> Result<(), T> {
        self.push_lane(item, false)
    }

    /// Enqueue `item` on the priority lane: same capacity bound and close
    /// semantics as [`push`](BoundedQueue::push), but workers pop it ahead
    /// of everything already waiting in the normal lane.
    pub fn push_priority(&self, item: T) -> Result<(), T> {
        self.push_lane(item, true)
    }

    fn push_lane(&self, item: T, priority: bool) -> Result<(), T> {
        let entered = self.obs.enabled.then(Instant::now);
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.len() < self.capacity {
                if priority {
                    state.priority.push_back(item);
                    self.obs.priority_depth.add(1);
                } else {
                    state.items.push_back(item);
                    self.obs.normal_depth.add(1);
                }
                if let Some(entered) = entered {
                    self.obs.enqueue_wait.record(entered.elapsed());
                }
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// One lane-ordered dequeue under an already-held lock: priority lane
    /// first, unless the anti-starvation valve forces a normal item
    /// through. Maintains the streak counter and the per-lane depth
    /// gauges / valve-trip counter; waiting, wait histograms, and
    /// `not_full` wakeups stay with the callers ([`pop`](BoundedQueue::pop)
    /// and [`pop_many`](BoundedQueue::pop_many)) so batch draining can
    /// amortize them.
    fn pop_one_locked(&self, state: &mut State<T>) -> Option<T> {
        let normal_waiting = !state.items.is_empty();
        let valve_open = state.priority_streak >= Self::FAIRNESS && normal_waiting;
        let serve_priority = !state.priority.is_empty() && !valve_open;
        let item =
            if serve_priority { state.priority.pop_front() } else { state.items.pop_front() }?;
        // A priority pop only *starves* anyone while normal work is
        // actually waiting; any normal pop (or an uncontended priority
        // pop) resets the streak.
        state.priority_streak =
            if serve_priority && normal_waiting { state.priority_streak + 1 } else { 0 };
        if serve_priority {
            self.obs.priority_depth.add(-1);
        } else {
            self.obs.normal_depth.add(-1);
            // A normal pop forced through while priority work was
            // waiting is the valve doing its job — count the trip.
            if valve_open && !state.priority.is_empty() {
                self.obs.valve_trips.incr();
            }
        }
        Some(item)
    }

    /// Dequeue one item, blocking while the queue is empty: priority lane
    /// first (modulo the anti-starvation valve), each lane FIFO. Returns
    /// `None` once the queue is closed *and* both lanes have drained — the
    /// worker shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let entered = self.obs.enabled.then(Instant::now);
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = self.pop_one_locked(&mut state) {
                if let Some(entered) = entered {
                    self.obs.pop_wait.record(entered.elapsed());
                }
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeue up to `max` items (min 1) into `out` in pop order, blocking
    /// only while the queue is *empty* — a batch never waits to fill, it
    /// takes whatever is there, so latency matches [`pop`](BoundedQueue::pop).
    /// Returns the number appended; `0` only once the queue is closed and
    /// drained.
    ///
    /// Each item is chosen by the same lane/valve rules as `pop` and each
    /// records one `pop_wait` observation (span conservation: one span per
    /// item, batched or not), but lock/condvar traffic is amortized:
    /// one lock acquisition and one `not_full` wakeup per batch instead of
    /// per item. Under a deep backlog that cuts the producer/consumer
    /// signalling by the batch factor.
    pub fn pop_many(&self, max: usize, out: &mut Vec<T>) -> usize {
        let entered = self.obs.enabled.then(Instant::now);
        let mut state = self.state.lock().expect("queue lock");
        loop {
            let mut popped = 0;
            while popped < max.max(1) {
                match self.pop_one_locked(&mut state) {
                    Some(item) => {
                        out.push(item);
                        popped += 1;
                    }
                    None => break,
                }
            }
            if popped > 0 {
                if let Some(entered) = entered {
                    let wait = entered.elapsed();
                    for _ in 0..popped {
                        self.obs.pop_wait.record(wait);
                    }
                }
                // One batched wakeup: up to `popped` slots freed at once.
                self.not_full.notify_all();
                return popped;
            }
            if state.closed {
                return 0;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Close the queue: queued items remain poppable, new pushes fail, and
    /// blocked workers wake up to observe the drain.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued across both lanes (racy by nature; for
    /// diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").len()
    }

    /// Items currently waiting in the priority lane.
    pub fn priority_len(&self) -> usize {
        self.state.lock().expect("queue lock").priority.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](BoundedQueue::close) has been called. Queued items
    /// may still be poppable; new pushes are already rejected.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        assert!(!q.is_closed());
        assert_eq!(q.capacity(), 4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_lane_jumps_the_normal_backlog() {
        let q = BoundedQueue::new(8);
        q.push("n1").unwrap();
        q.push("n2").unwrap();
        q.push_priority("p1").unwrap();
        q.push_priority("p2").unwrap();
        q.push("n3").unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.priority_len(), 2);
        // Priority first (FIFO within the lane), then the normal backlog.
        assert_eq!(q.pop(), Some("p1"));
        assert_eq!(q.pop(), Some("p2"));
        assert_eq!(q.pop(), Some("n1"));
        // Late priority work still jumps what remains.
        q.push_priority("p3").unwrap();
        assert_eq!(q.pop(), Some("p3"));
        assert_eq!(q.pop(), Some("n2"));
        assert_eq!(q.pop(), Some("n3"));
    }

    #[test]
    fn priority_push_respects_close_and_capacity() {
        let q = BoundedQueue::new(2);
        q.push_priority(1).unwrap();
        q.push(2).unwrap();
        // Both lanes share one capacity: a priority push blocks while the
        // queue is full, and resumes after a pop frees a slot.
        std::thread::scope(|scope| {
            scope.spawn(|| q.push_priority(3).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1));
        });
        // 3 went to the priority lane, 2 is still the normal backlog.
        assert_eq!(q.pop(), Some(3));
        q.close();
        assert_eq!(q.push_priority(4), Err(4));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fairness_valve_serves_normal_under_sustained_priority_load() {
        let q = BoundedQueue::new(64);
        q.push("normal").unwrap();
        for i in 0..BoundedQueue::<&str>::FAIRNESS + 3 {
            q.push_priority(if i == 0 { "first" } else { "later" }).unwrap();
        }
        // FAIRNESS consecutive priority pops, then the valve forces the
        // starving normal item through, then priority resumes.
        for _ in 0..BoundedQueue::<&str>::FAIRNESS {
            assert_ne!(q.pop(), Some("normal"));
        }
        assert_eq!(q.pop(), Some("normal"));
        assert_eq!(q.pop(), Some("later"));
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = BoundedQueue::new(1);
        q.push(10).unwrap();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Blocks until the main thread pops 10.
                q.push(20).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            popped.store(q.pop().unwrap(), Ordering::SeqCst);
            assert_eq!(q.pop(), Some(20));
        });
        assert_eq!(popped.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pop_many_takes_what_is_there_without_waiting_to_fill() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        // max=8 but only 5 queued: the batch returns immediately with 5.
        assert_eq!(q.pop_many(8, &mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        // max caps a deep backlog.
        for i in 0..5 {
            q.push(10 + i).unwrap();
        }
        out.clear();
        assert_eq!(q.pop_many(3, &mut out), 3);
        assert_eq!(out, vec![10, 11, 12]);
        assert_eq!(q.len(), 2);
        q.close();
        out.clear();
        assert_eq!(q.pop_many(8, &mut out), 2);
        // Closed and drained: the worker shutdown signal.
        assert_eq!(q.pop_many(8, &mut out), 0);
        assert_eq!(out, vec![13, 14]);
    }

    #[test]
    fn pop_many_preserves_lane_order_and_the_fairness_valve() {
        let q = BoundedQueue::new(64);
        q.push("normal").unwrap();
        for _ in 0..BoundedQueue::<&str>::FAIRNESS + 1 {
            q.push_priority("prio").unwrap();
        }
        // One batch spanning the valve trip: FAIRNESS priority items, then
        // the starving normal item, then priority resumes — identical to
        // the same sequence of single pops.
        let mut out = Vec::new();
        assert_eq!(q.pop_many(BoundedQueue::<&str>::FAIRNESS + 2, &mut out), 9);
        let mut expected = vec!["prio"; BoundedQueue::<&str>::FAIRNESS];
        expected.push("normal");
        expected.push("prio");
        assert_eq!(out, expected);
    }

    #[test]
    fn pop_many_blocks_while_empty_then_drains_a_batch() {
        let q = BoundedQueue::new(8);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                for i in 0..3 {
                    q.push(i).unwrap();
                }
                q.close();
            });
            let mut out = Vec::new();
            let mut total = 0;
            loop {
                let n = q.pop_many(8, &mut out);
                if n == 0 {
                    break;
                }
                total += n;
            }
            assert_eq!(total, 3);
            assert_eq!(out, vec![0, 1, 2]);
        });
    }

    #[test]
    fn instrumented_pop_many_records_one_wait_span_per_item() {
        let obs = ObsRegistry::enabled();
        let q = BoundedQueue::instrumented(64, &obs, "q");
        q.push(1).unwrap();
        q.push_priority(2).unwrap();
        q.push(3).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop_many(8, &mut out), 3);
        assert_eq!(out, vec![2, 1, 3]);
        let s = obs.snapshot();
        // Span conservation: batching never loses per-item observations,
        // and the depth gauges return to zero.
        assert_eq!(s.histogram("q.pop_wait").unwrap().count, 3);
        assert_eq!(s.gauge("q.depth.normal"), Some(0));
        assert_eq!(s.gauge("q.depth.priority"), Some(0));
    }

    #[test]
    fn instrumented_queue_tracks_depths_and_waits() {
        let obs = ObsRegistry::enabled();
        let q = BoundedQueue::instrumented(64, &obs, "q");
        q.push(1).unwrap();
        q.push_priority(2).unwrap();
        let s = obs.snapshot();
        assert_eq!(s.gauge("q.depth.normal"), Some(1));
        assert_eq!(s.gauge("q.depth.priority"), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        let s = obs.snapshot();
        assert_eq!(s.gauge("q.depth.normal"), Some(0));
        assert_eq!(s.gauge("q.depth.priority"), Some(0));
        assert_eq!(s.histogram("q.enqueue_wait").unwrap().count, 2);
        assert_eq!(s.histogram("q.pop_wait").unwrap().count, 2);
    }

    #[test]
    fn instrumented_queue_counts_valve_trips() {
        let obs = ObsRegistry::enabled();
        let q = BoundedQueue::instrumented(64, &obs, "q");
        q.push("normal").unwrap();
        for _ in 0..BoundedQueue::<&str>::FAIRNESS + 1 {
            q.push_priority("prio").unwrap();
        }
        for _ in 0..BoundedQueue::<&str>::FAIRNESS {
            assert_eq!(q.pop(), Some("prio"));
        }
        // The valve forces the starving normal item through while priority
        // work is still waiting — exactly one trip.
        assert_eq!(q.pop(), Some("normal"));
        assert_eq!(q.pop(), Some("prio"));
        assert_eq!(obs.snapshot().counter("q.valve_trips"), Some(1));
    }

    #[test]
    fn disabled_registry_degrades_to_uninstrumented() {
        let obs = ObsRegistry::disabled();
        let q = BoundedQueue::instrumented(4, &obs, "q");
        q.push(1).unwrap();
        q.push_priority(2).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        let s = obs.snapshot();
        assert!(!s.enabled);
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = BoundedQueue::new(8);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..100 {
                        // Odd producers feed the priority lane so both
                        // lanes see concurrent traffic.
                        if p % 2 == 0 {
                            q.push(p * 100 + i).unwrap();
                        } else {
                            q.push_priority(p * 100 + i).unwrap();
                        }
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    while q.pop().is_some() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            scope.spawn(|| {
                // Close once all 400 have been delivered.
                while seen.load(Ordering::SeqCst) < 400 {
                    std::thread::yield_now();
                }
                q.close();
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 400);
    }
}
