//! A bounded, closable MPMC work queue built on `Mutex` + `Condvar`.
//!
//! The fleet assessor feeds instance-assessment tasks through this queue so
//! that a fleet described by a lazy iterator (e.g. a streamed synthetic
//! population) is never fully materialized: the feeder blocks once
//! `capacity` tasks are in flight and resumes as workers drain them.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity queue: `push` blocks while full, `pop` blocks while
/// empty, and `close` wakes everyone so the pipeline can drain and stop.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, blocking while the queue is at capacity. Returns the
    /// item back as `Err` if the queue was closed in the meantime.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Dequeue one item, blocking while the queue is empty. Returns `None`
    /// once the queue is closed *and* drained — the worker shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Close the queue: queued items remain poppable, new pushes fail, and
    /// blocked workers wake up to observe the drain.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy by nature; for diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](BoundedQueue::close) has been called. Queued items
    /// may still be poppable; new pushes are already rejected.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        assert!(!q.is_closed());
        assert_eq!(q.capacity(), 4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = BoundedQueue::new(1);
        q.push(10).unwrap();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Blocks until the main thread pops 10.
                q.push(20).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            popped.store(q.pop().unwrap(), Ordering::SeqCst);
            assert_eq!(q.pop(), Some(20));
        });
        assert_eq!(popped.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = BoundedQueue::new(8);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    while q.pop().is_some() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            scope.spawn(|| {
                // Close once all 400 have been delivered.
                while seen.load(Ordering::SeqCst) < 400 {
                    std::thread::yield_now();
                }
                q.close();
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 400);
    }
}
