//! Fleet-level aggregation: what a migration programme manager looks at
//! after assessing thousands of instances — the total bill, the SKU mix,
//! how confident the engine was, and which instances need human attention.
//!
//! Everything here is computed from the order-stable result vector, so a
//! report is bit-for-bit identical for any worker count, and
//! `FleetReport: PartialEq` makes that property directly testable.

use std::sync::Arc;

use doppler_catalog::DeploymentType;
use doppler_core::{CurveShape, Recommendation};
use doppler_dma::{AdoptionLedger, MonthlyAdoption};
use doppler_obs::ObsSnapshot;
use doppler_stats::ExactSum;

use crate::assessor::FleetResult;

/// Recommendation variants DMA would surface for one assessed instance:
/// one per curve point at full score, at least one — the unit the paper's
/// Table 1 counts as "recommendations generated". The single counting
/// rule behind both the fleet report's adoption ledger and
/// `AssessmentService::assess_and_record`.
pub fn eligible_recommendations(recommendation: &Recommendation) -> usize {
    recommendation.curve.points().iter().filter(|p| p.score >= 1.0 - 1e-9).count().max(1)
}

/// One SKU's share of the fleet.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SkuMixRow {
    pub sku_id: String,
    pub count: usize,
    /// Sum of the monthly cost over instances recommended this SKU.
    pub total_monthly_cost: f64,
}

/// One curve shape's share of the fleet (§5.1's Figure 9 breakdown, now
/// observable over any assessed fleet).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShapeMixRow {
    pub shape: CurveShape,
    pub count: usize,
}

/// Confidence-score distribution over the instances that carried one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceSummary {
    pub scored: usize,
    pub mean: f64,
    pub min: f64,
    /// Counts in `[0, .5)`, `[.5, .75)`, `[.75, .9)`, `[.9, 1)`, `[1]`.
    pub buckets: [usize; 5],
}

/// Per-deployment-target breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeploymentMixRow {
    pub deployment: DeploymentType,
    pub fleet: usize,
    pub recommended: usize,
    pub unplaceable: usize,
    pub failed: usize,
    pub total_monthly_cost: f64,
}

/// One failed instance: name plus the error that stopped it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailureRow {
    pub instance_name: String,
    pub message: String,
}

/// The slice of a [`FleetResult`] the aggregator actually reads — a few
/// scalars and short strings, not the per-instance resource-use report and
/// price-performance curve the full result carries. Reorder buffers hold
/// digests so an out-of-order completion never deep-clones its result (the
/// ticket keeps the full result for the submitter).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDigest {
    /// Global submission index. The merge path sorts attention lists and
    /// adoption months by it, so merged per-shard aggregates reproduce the
    /// sequential submission order bit for bit.
    pub index: usize,
    pub instance_name: Arc<str>,
    pub deployment: DeploymentType,
    /// The adoption-ledger month the request carried, if any.
    pub month: Option<Arc<str>>,
    pub outcome: DigestOutcome,
}

/// Outcome projection inside a [`ResultDigest`].
#[derive(Debug, Clone, PartialEq)]
pub enum DigestOutcome {
    /// Assessment errored or panicked.
    Failed { message: String },
    /// Assessed; `sku` is `Some((sku_id, monthly_cost))` when placed.
    Assessed {
        databases_assessed: usize,
        shape: CurveShape,
        confidence: Option<f64>,
        sku: Option<(Arc<str>, f64)>,
        /// Recommendation variants DMA would surface for this instance:
        /// one per curve point at full score, at least one — the unit the
        /// paper's Table 1 counts as "recommendations generated".
        eligible_recommendations: usize,
    },
}

impl ResultDigest {
    pub fn of(result: &FleetResult) -> ResultDigest {
        let outcome = match &result.outcome {
            Err(e) => DigestOutcome::Failed { message: e.message.clone() },
            Ok(r) => {
                let eligible = eligible_recommendations(&r.recommendation);
                DigestOutcome::Assessed {
                    databases_assessed: r.databases_assessed,
                    shape: r.recommendation.shape,
                    confidence: r.recommendation.confidence,
                    sku: r.recommendation.sku_id.as_deref().map(|sku_id| {
                        (Arc::from(sku_id), r.recommendation.monthly_cost.unwrap_or(0.0))
                    }),
                    eligible_recommendations: eligible,
                }
            }
        };
        ResultDigest {
            index: result.index,
            // `FleetResult` already holds interned `Arc<str>` strings, so a
            // digest costs refcount bumps, not fresh heap strings.
            instance_name: result.instance_name.clone(),
            deployment: result.deployment,
            month: result.month.clone(),
            outcome,
        }
    }
}

/// Append-only list stored as shared 1024-element chunks plus a mutable
/// tail. `Clone` bumps the chunk refcounts and copies only the tail, so a
/// snapshot of a 100k-row attention list costs O(tail + chunk count) — the
/// fix for `report_snapshot()` deep-cloning O(fleet) state under the
/// progress lock.
#[derive(Debug, Clone)]
struct ChunkedList<T> {
    full: Vec<Arc<Vec<T>>>,
    tail: Vec<T>,
}

const CHUNK: usize = 1024;

impl<T: Clone> ChunkedList<T> {
    fn new() -> ChunkedList<T> {
        ChunkedList { full: Vec::new(), tail: Vec::new() }
    }

    fn len(&self) -> usize {
        self.full.len() * CHUNK + self.tail.len()
    }

    fn push(&mut self, item: T) {
        self.tail.push(item);
        if self.tail.len() == CHUNK {
            self.full.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }

    fn extend_from(&mut self, other: &ChunkedList<T>) {
        if self.tail.is_empty() {
            // Sealed chunks are always exactly CHUNK long, so sharing them
            // wholesale keeps the layout invariant.
            self.full.extend(other.full.iter().cloned());
            self.tail.extend_from_slice(&other.tail);
        } else {
            for item in other.iter() {
                self.push(item.clone());
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        self.full.iter().flat_map(|chunk| chunk.iter()).chain(self.tail.iter())
    }
}

/// The aggregate view of one fleet assessment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    pub fleet_size: usize,
    /// Instances with a concrete SKU recommendation.
    pub recommended: usize,
    /// Instances assessed successfully but with no feasible SKU (e.g. an
    /// MI data file larger than any placement).
    pub unplaceable: usize,
    /// Instances whose assessment errored or panicked.
    pub failed: usize,
    /// Databases covered across all successfully assessed instances.
    pub databases_assessed: usize,
    /// Total monthly bill over all recommended instances.
    pub total_monthly_cost: f64,
    /// Mean monthly cost per recommended instance.
    pub mean_monthly_cost: Option<f64>,
    /// SKU histogram, descending by count then ascending by SKU id.
    pub sku_mix: Vec<SkuMixRow>,
    /// Curve-shape histogram in `Flat`, `Simple`, `Complex` order.
    pub shape_mix: Vec<ShapeMixRow>,
    /// Present when at least one instance carried a confidence score.
    pub confidence: Option<ConfidenceSummary>,
    /// Per-deployment rows in `SqlDb`, `SqlMi` order (present targets only).
    pub deployments: Vec<DeploymentMixRow>,
    /// Names of the unplaceable instances, in submission order.
    pub unplaceable_instances: Vec<String>,
    /// Failure bucket, in submission order.
    pub failures: Vec<FailureRow>,
    /// Table 1 adoption counters by month, over the requests that carried
    /// a [`FleetRequest::with_month`](crate::FleetRequest::with_month)
    /// label. Empty when the fleet was untagged.
    pub adoption: AdoptionLedger,
    /// Champion/challenger comparison, present when the report came out of
    /// an [`AbFleet`](crate::AbFleet) run. Plain assessments leave it
    /// `None`.
    pub ab: Option<crate::ab::AbSummary>,
    /// Per-month simulation trace, present when the report came out of a
    /// [`FleetScheduler`](crate::FleetScheduler) run
    /// ([`FleetScheduler::shutdown`](crate::FleetScheduler::shutdown)).
    /// Operator-cranked runs leave it `None`.
    pub schedule: Option<crate::scheduler::ScheduleSummary>,
}

/// One SKU's accumulating share (internal: exact cost sum + interned id).
#[derive(Debug, Clone)]
struct SkuAgg {
    sku_id: Arc<str>,
    count: usize,
    total_monthly_cost: ExactSum,
}

/// One deployment target's accumulating row (internal: exact cost sum).
#[derive(Debug, Clone)]
struct DeploymentAgg {
    deployment: DeploymentType,
    fleet: usize,
    recommended: usize,
    unplaceable: usize,
    failed: usize,
    total_monthly_cost: ExactSum,
}

/// One adoption month's accumulating row. `first_index` is the smallest
/// global submission index that recorded into the month, so merged shards
/// can reconstruct the sequential first-seen month order.
#[derive(Debug, Clone)]
struct MonthAgg {
    label: Arc<str>,
    first_index: usize,
    row: MonthlyAdoption,
}

fn fold_month(dst: &mut MonthlyAdoption, src: &MonthlyAdoption) {
    dst.unique_instances += src.unique_instances;
    dst.unique_databases += src.unique_databases;
    dst.recommendations_generated += src.recommendations_generated;
    dst.drift_checks += src.drift_checks;
    dst.drift_detected += src.drift_detected;
    dst.catalog_rolls += src.catalog_rolls;
    dst.customers_repriced += src.customers_repriced;
}

/// Streaming accumulator behind [`FleetReport`]: accepts results one at a
/// time (in submission order) so the assessor can aggregate on the fly
/// without buffering the whole fleet. State is O(distinct SKUs + attention
/// buckets), not O(fleet).
///
/// Cost and confidence totals accumulate in
/// [`ExactSum`] superaccumulators, so sums are exactly rounded and
/// independent of fold order — the property that makes
/// [`merge`](FleetAggregator::merge)d per-shard aggregates bit-for-bit
/// equal to a sequential fold.
///
/// `Clone` exists so a long-lived service can publish point-in-time
/// [`snapshot`](FleetAggregator::snapshot)s while results keep streaming
/// in; attention lists are chunk-shared, so a clone is cheap even at 100k
/// accepted results.
#[derive(Debug, Clone)]
pub struct FleetAggregator {
    fleet_size: usize,
    recommended: usize,
    databases_assessed: usize,
    total_monthly_cost: ExactSum,
    sku_mix: Vec<SkuAgg>,
    shape_counts: [usize; 3],
    confidence_scored: usize,
    confidence_sum: ExactSum,
    confidence_min: f64,
    confidence_buckets: [usize; 5],
    deployments: Vec<DeploymentAgg>,
    unplaceable_instances: ChunkedList<(usize, Arc<str>)>,
    failures: ChunkedList<(usize, Arc<str>, String)>,
    adoption: Vec<MonthAgg>,
}

impl Default for FleetAggregator {
    fn default() -> FleetAggregator {
        FleetAggregator::new()
    }
}

impl FleetAggregator {
    pub fn new() -> FleetAggregator {
        FleetAggregator {
            fleet_size: 0,
            recommended: 0,
            databases_assessed: 0,
            total_monthly_cost: ExactSum::new(),
            sku_mix: Vec::new(),
            shape_counts: [0; 3],
            confidence_scored: 0,
            confidence_sum: ExactSum::new(),
            confidence_min: f64::INFINITY,
            confidence_buckets: [0; 5],
            deployments: Vec::new(),
            unplaceable_instances: ChunkedList::new(),
            failures: ChunkedList::new(),
            adoption: Vec::new(),
        }
    }

    /// Fold one result in. Feed order no longer affects the finished
    /// report — sums are exact and order-invariant, and attention lists and
    /// adoption months are keyed by the result's global submission index —
    /// but the in-flight [`snapshot`](FleetAggregator::snapshot) contract
    /// (a snapshot is the report of an exact submission prefix) still
    /// assumes the service feeds results in submission order.
    pub fn accept(&mut self, r: &FleetResult) {
        // One fold implementation: the by-result and by-digest entry points
        // route through the same arithmetic so they cannot drift apart.
        self.accept_digest(&ResultDigest::of(r));
    }

    /// Fold one digested result in; same ordering contract as
    /// [`accept`](FleetAggregator::accept).
    pub fn accept_digest(&mut self, r: &ResultDigest) {
        self.fleet_size += 1;
        let deployment_row = {
            let d = r.deployment;
            match self.deployments.iter().position(|row| row.deployment == d) {
                Some(i) => &mut self.deployments[i],
                None => {
                    self.deployments.push(DeploymentAgg {
                        deployment: d,
                        fleet: 0,
                        recommended: 0,
                        unplaceable: 0,
                        failed: 0,
                        total_monthly_cost: ExactSum::new(),
                    });
                    self.deployments.last_mut().expect("just pushed")
                }
            }
        };
        deployment_row.fleet += 1;
        match &r.outcome {
            DigestOutcome::Failed { message } => {
                deployment_row.failed += 1;
                self.failures.push((r.index, r.instance_name.clone(), message.clone()));
            }
            DigestOutcome::Assessed {
                databases_assessed,
                shape,
                confidence,
                sku,
                eligible_recommendations,
            } => {
                if let Some(month) = &r.month {
                    let row = match self.adoption.iter_mut().find(|m| *m.label == **month) {
                        Some(m) => {
                            m.first_index = m.first_index.min(r.index);
                            &mut m.row
                        }
                        None => {
                            self.adoption.push(MonthAgg {
                                label: month.clone(),
                                first_index: r.index,
                                row: MonthlyAdoption::default(),
                            });
                            &mut self.adoption.last_mut().expect("just pushed").row
                        }
                    };
                    row.unique_instances += 1;
                    row.unique_databases += databases_assessed;
                    row.recommendations_generated += eligible_recommendations;
                }
                self.databases_assessed += databases_assessed;
                self.shape_counts[match shape {
                    CurveShape::Flat => 0,
                    CurveShape::Simple => 1,
                    CurveShape::Complex => 2,
                }] += 1;
                if let Some(c) = *confidence {
                    self.confidence_scored += 1;
                    self.confidence_sum.add(c);
                    self.confidence_min = self.confidence_min.min(c);
                    self.confidence_buckets[if c >= 1.0 {
                        4
                    } else if c >= 0.9 {
                        3
                    } else if c >= 0.75 {
                        2
                    } else if c >= 0.5 {
                        1
                    } else {
                        0
                    }] += 1;
                }
                match sku {
                    Some((sku_id, cost)) => {
                        self.recommended += 1;
                        deployment_row.recommended += 1;
                        let cost = *cost;
                        self.total_monthly_cost.add(cost);
                        deployment_row.total_monthly_cost.add(cost);
                        match self.sku_mix.iter_mut().find(|row| row.sku_id == *sku_id) {
                            Some(row) => {
                                row.count += 1;
                                row.total_monthly_cost.add(cost);
                            }
                            None => {
                                let mut sum = ExactSum::new();
                                sum.add(cost);
                                self.sku_mix.push(SkuAgg {
                                    sku_id: sku_id.clone(),
                                    count: 1,
                                    total_monthly_cost: sum,
                                });
                            }
                        }
                    }
                    None => {
                        deployment_row.unplaceable += 1;
                        self.unplaceable_instances.push((r.index, r.instance_name.clone()));
                    }
                }
            }
        }
    }

    /// Fold another aggregator's accumulated state into this one — the
    /// sharded-fleet reporting primitive. Merging the per-shard aggregates
    /// of any partition of a cohort (in any merge grouping) produces the
    /// same finished report, bit for bit, as accepting every digest
    /// sequentially: counts and [`ExactSum`] totals are exactly
    /// associative, and order-sensitive output (attention lists, adoption
    /// month order) is reconstructed from global submission indices at
    /// [`finish_ref`](FleetAggregator::finish_ref) time.
    pub fn merge(&mut self, other: &FleetAggregator) {
        self.fleet_size += other.fleet_size;
        self.recommended += other.recommended;
        self.databases_assessed += other.databases_assessed;
        self.total_monthly_cost.merge(&other.total_monthly_cost);
        for sku in &other.sku_mix {
            match self.sku_mix.iter_mut().find(|row| row.sku_id == sku.sku_id) {
                Some(row) => {
                    row.count += sku.count;
                    row.total_monthly_cost.merge(&sku.total_monthly_cost);
                }
                None => self.sku_mix.push(sku.clone()),
            }
        }
        for (dst, src) in self.shape_counts.iter_mut().zip(&other.shape_counts) {
            *dst += *src;
        }
        self.confidence_scored += other.confidence_scored;
        self.confidence_sum.merge(&other.confidence_sum);
        self.confidence_min = self.confidence_min.min(other.confidence_min);
        for (dst, src) in self.confidence_buckets.iter_mut().zip(&other.confidence_buckets) {
            *dst += *src;
        }
        for dep in &other.deployments {
            match self.deployments.iter_mut().find(|row| row.deployment == dep.deployment) {
                Some(row) => {
                    row.fleet += dep.fleet;
                    row.recommended += dep.recommended;
                    row.unplaceable += dep.unplaceable;
                    row.failed += dep.failed;
                    row.total_monthly_cost.merge(&dep.total_monthly_cost);
                }
                None => self.deployments.push(dep.clone()),
            }
        }
        self.unplaceable_instances.extend_from(&other.unplaceable_instances);
        self.failures.extend_from(&other.failures);
        for month in &other.adoption {
            match self.adoption.iter_mut().find(|m| m.label == month.label) {
                Some(m) => {
                    m.first_index = m.first_index.min(month.first_index);
                    fold_month(&mut m.row, &month.row);
                }
                None => self.adoption.push(month.clone()),
            }
        }
    }

    /// Results folded in so far.
    pub fn accepted(&self) -> usize {
        self.fleet_size
    }

    /// A point-in-time [`FleetReport`] over the results accepted so far,
    /// without consuming the accumulator — the incremental view a dashboard
    /// polls while a fleet run is still in flight. Because acceptance is in
    /// submission order, a snapshot is always the report of an exact prefix
    /// of the fleet, so two snapshots at the same prefix length are
    /// bit-for-bit equal regardless of worker count or timing.
    pub fn snapshot(&self) -> FleetReport {
        self.finish_ref()
    }

    /// Finalize into the report; equivalent to
    /// [`finish_ref`](FleetAggregator::finish_ref) for callers that own the
    /// accumulator.
    pub fn finish(self) -> FleetReport {
        self.finish_ref()
    }

    /// Build the finished [`FleetReport`] by reference, without cloning the
    /// accumulated maps first: histograms sort into their canonical orders,
    /// attention lists into global submission order, and the exact sums
    /// round once, here. Strings are materialized only for the report rows
    /// actually emitted.
    pub fn finish_ref(&self) -> FleetReport {
        let mut sku_mix: Vec<SkuMixRow> = self
            .sku_mix
            .iter()
            .map(|row| SkuMixRow {
                sku_id: row.sku_id.to_string(),
                count: row.count,
                total_monthly_cost: row.total_monthly_cost.value(),
            })
            .collect();
        sku_mix.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.sku_id.cmp(&b.sku_id)));
        let mut deployments: Vec<DeploymentMixRow> = self
            .deployments
            .iter()
            .map(|row| DeploymentMixRow {
                deployment: row.deployment,
                fleet: row.fleet,
                recommended: row.recommended,
                unplaceable: row.unplaceable,
                failed: row.failed,
                total_monthly_cost: row.total_monthly_cost.value(),
            })
            .collect();
        deployments.sort_by_key(|row| match row.deployment {
            DeploymentType::SqlDb => 0,
            DeploymentType::SqlMi => 1,
        });
        let shape_mix = [CurveShape::Flat, CurveShape::Simple, CurveShape::Complex]
            .into_iter()
            .zip(self.shape_counts)
            .map(|(shape, count)| ShapeMixRow { shape, count })
            .collect();
        let confidence = (self.confidence_scored > 0).then(|| ConfidenceSummary {
            scored: self.confidence_scored,
            mean: self.confidence_sum.value() / self.confidence_scored as f64,
            min: self.confidence_min,
            buckets: self.confidence_buckets,
        });
        let mut unplaceable: Vec<&(usize, Arc<str>)> = self.unplaceable_instances.iter().collect();
        unplaceable.sort_by_key(|(index, _)| *index);
        let unplaceable_instances: Vec<String> =
            unplaceable.into_iter().map(|(_, name)| name.to_string()).collect();
        let mut failed: Vec<&(usize, Arc<str>, String)> = self.failures.iter().collect();
        failed.sort_by_key(|(index, _, _)| *index);
        let failures: Vec<FailureRow> = failed
            .into_iter()
            .map(|(_, name, message)| FailureRow {
                instance_name: name.to_string(),
                message: message.clone(),
            })
            .collect();
        let mut months: Vec<&MonthAgg> = self.adoption.iter().collect();
        months.sort_by_key(|m| m.first_index);
        let mut adoption = AdoptionLedger::default();
        for m in months {
            adoption.add_row(&m.label, &m.row);
        }
        let total_monthly_cost = self.total_monthly_cost.value();
        FleetReport {
            fleet_size: self.fleet_size,
            recommended: self.recommended,
            unplaceable: self.unplaceable_instances.len(),
            failed: self.failures.len(),
            databases_assessed: self.databases_assessed,
            total_monthly_cost,
            mean_monthly_cost: (self.recommended > 0)
                .then(|| total_monthly_cost / self.recommended as f64),
            sku_mix,
            shape_mix,
            confidence,
            deployments,
            unplaceable_instances,
            failures,
            adoption,
            ab: None,
            schedule: None,
        }
    }
}

impl FleetReport {
    /// Aggregate a result vector (must already be in submission order —
    /// [`FleetAssessor::assess`](crate::FleetAssessor::assess) guarantees
    /// it). Summation follows that order, so equal inputs produce
    /// bit-for-bit equal reports regardless of how many workers ran.
    pub fn from_results(results: &[FleetResult]) -> FleetReport {
        let mut agg = FleetAggregator::new();
        for r in results {
            agg.accept(r);
        }
        agg.finish()
    }

    /// Render the report as a terminal dashboard (the fleet-scale analogue
    /// of the per-instance Resource Use report).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Fleet Assessment Report ===\n");
        out.push_str(&format!(
            "instances: {:>7}   recommended: {:>7}   unplaceable: {:>5}   failed: {:>5}\n",
            self.fleet_size, self.recommended, self.unplaceable, self.failed
        ));
        out.push_str(&format!("databases assessed: {}\n", self.databases_assessed));
        out.push_str(&format!(
            "total monthly cost: ${:.2}{}\n",
            self.total_monthly_cost,
            match self.mean_monthly_cost {
                Some(mean) => format!("   (mean ${mean:.2}/instance)"),
                None => String::new(),
            }
        ));

        if !self.sku_mix.is_empty() {
            out.push_str("\n--- SKU mix ---\n");
            let max_count = self.sku_mix.iter().map(|r| r.count).max().unwrap_or(1).max(1);
            for row in &self.sku_mix {
                out.push_str(&bar_row(
                    &row.sku_id,
                    row.count,
                    max_count,
                    self.recommended,
                    &format!("${:.2}/mo", row.total_monthly_cost),
                ));
            }
        }

        let assessed: usize = self.shape_mix.iter().map(|r| r.count).sum();
        if assessed > 0 {
            out.push_str("\n--- Curve shapes ---\n");
            let max_count = self.shape_mix.iter().map(|r| r.count).max().unwrap_or(1).max(1);
            for row in &self.shape_mix {
                out.push_str(&bar_row(
                    &format!("{:?}", row.shape),
                    row.count,
                    max_count,
                    assessed,
                    "",
                ));
            }
        }

        if let Some(c) = &self.confidence {
            out.push_str("\n--- Confidence ---\n");
            out.push_str(&format!(
                "scored: {}   mean: {:.3}   min: {:.3}\n",
                c.scored, c.mean, c.min
            ));
            let labels = ["[0, .5)", "[.5, .75)", "[.75, .9)", "[.9, 1)", "[1]"];
            let max_count = c.buckets.iter().copied().max().unwrap_or(1).max(1);
            for (label, &count) in labels.iter().zip(&c.buckets) {
                out.push_str(&bar_row(label, count, max_count, c.scored, ""));
            }
        }

        if self.adoption.rows().count() > 0 {
            // Drift and catalog-roll columns appear once any month carries
            // such rows (a ledger fed by the drift monitor / roll hook).
            let monitored = self.adoption.rows().any(|(_, row)| row.drift_checks > 0);
            let rolled = self.adoption.rows().any(|(_, row)| row.catalog_rolls > 0);
            out.push_str("\n--- Adoption (Table 1) ---\n");
            out.push_str(&format!(
                "{:>8} {:>10} {:>10} {:>16}",
                "month", "instances", "databases", "recommendations"
            ));
            if monitored {
                out.push_str(&format!(" {:>12} {:>8}", "drift-checks", "drifted"));
            }
            if rolled {
                out.push_str(&format!(" {:>13} {:>9}", "catalog-rolls", "re-priced"));
            }
            out.push('\n');
            for (month, row) in self.adoption.rows() {
                out.push_str(&format!(
                    "{:>8} {:>10} {:>10} {:>16}",
                    month,
                    row.unique_instances,
                    row.unique_databases,
                    row.recommendations_generated
                ));
                if monitored {
                    out.push_str(&format!(" {:>12} {:>8}", row.drift_checks, row.drift_detected));
                }
                if rolled {
                    out.push_str(&format!(
                        " {:>13} {:>9}",
                        row.catalog_rolls, row.customers_repriced
                    ));
                }
                out.push('\n');
            }
        }

        if let Some(ab) = &self.ab {
            out.push_str("\n--- Champion/challenger ---\n");
            out.push_str(&format!(
                "{:>12} {:>12} {:>16} {:>12} {:>12}\n",
                "side", "recommended", "total $/mo", "mean $/mo", "confidence"
            ));
            for side in [&ab.champion, &ab.challenger] {
                out.push_str(&format!(
                    "{:>12} {:>12} {:>16} {:>12} {:>12}\n",
                    side.backend,
                    side.recommended,
                    format!("${:.2}", side.total_monthly_cost),
                    side.mean_monthly_cost.map_or_else(|| "-".into(), |m| format!("${m:.2}")),
                    side.mean_confidence.map_or_else(|| "-".into(), |c| format!("{c:.3}")),
                ));
            }
            out.push_str(&format!(
                "SKU agreement: {}/{} pairs{}\n",
                ab.sku_agreements,
                ab.both_recommended,
                ab.agreement_rate().map_or_else(String::new, |r| format!(" ({:.1}%)", r * 100.0)),
            ));
            out.push_str(&format!(
                "adopt challenger on {} cheaper pair(s): ${:.2}/mo projected savings\n",
                ab.adoption.challenger_cheaper, ab.adoption.projected_monthly_savings
            ));
        }

        if let Some(schedule) = &self.schedule {
            out.push_str("\n--- Simulation schedule ---\n");
            out.push_str(&format!(
                "{} simulated month(s) from {}: {} telemetry window(s), {} feed(s), {} roll(s), \
                 {} re-priced ({} failed), {} drift check(s) ({} drifted, {} re-assessed), \
                 {} customer(s) and {} engine(s) retired\n",
                schedule.sim_months(),
                schedule.start,
                schedule.telemetry_windows,
                schedule.feeds_applied,
                schedule.rolls_dispatched,
                schedule.customers_repriced,
                schedule.reprice_failures,
                schedule.drift_checks,
                schedule.drift_detected,
                schedule.reassessments,
                schedule.customers_retired,
                schedule.engines_retired,
            ));
            out.push_str(&format!(
                "{:>8} {:>8} {:>6} {:>6} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                "month",
                "telem",
                "feeds",
                "rolls",
                "repriced",
                "checked",
                "drifted",
                "reassess",
                "retired",
                "watched"
            ));
            for row in &schedule.months {
                out.push_str(&format!(
                    "{:>8} {:>8} {:>6} {:>6} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                    row.month,
                    row.telemetry,
                    row.feeds,
                    row.rolls,
                    row.repriced,
                    row.checked,
                    row.drifted,
                    row.reassessed,
                    row.retired_customers,
                    row.watched,
                ));
            }
            if schedule.ab_months > 0 {
                out.push_str(&format!(
                    "staged rollout: {} A/B month(s), {} promotion(s), {} demotion(s){}\n",
                    schedule.ab_months,
                    schedule.promotions,
                    schedule.demotions,
                    match &schedule.promoted_month {
                        Some(month) => format!("   challenger promoted in {month}"),
                        None => String::new(),
                    }
                ));
            }
        }

        if self.deployments.len() > 1 {
            out.push_str("\n--- Deployments ---\n");
            for d in &self.deployments {
                out.push_str(&format!(
                    "{:>12}   fleet {:>6}   recommended {:>6}   unplaceable {:>5}   failed {:>5}   ${:.2}/mo\n",
                    format!("{:?}", d.deployment),
                    d.fleet,
                    d.recommended,
                    d.unplaceable,
                    d.failed,
                    d.total_monthly_cost
                ));
            }
        }

        render_attention_list(&mut out, "Unplaceable", &self.unplaceable_instances);
        let failure_lines: Vec<String> =
            self.failures.iter().map(|f| format!("{}: {}", f.instance_name, f.message)).collect();
        render_attention_list(&mut out, "Failures", &failure_lines);
        out
    }

    /// [`render`](FleetReport::render) with the ops dashboard from an
    /// [`ObsSnapshot`] appended — what an operator tails after a fleet run:
    /// the business numbers first, then where the time went. The report
    /// itself never depends on the snapshot, so determinism suites keep
    /// comparing [`render`](FleetReport::render) output byte-for-byte while
    /// ops tooling layers the (timing-dependent) dashboard on top.
    pub fn render_with_ops(&self, snapshot: &ObsSnapshot) -> String {
        let mut out = self.render();
        out.push('\n');
        out.push_str(&snapshot.render());
        out
    }
}

/// A `label  count |#####     | share%  suffix` row, the idiom the bench
/// crate's `ascii::curve_table` uses for score bars. Shared with the drift
/// report's dashboard.
pub(crate) fn bar_row(
    label: &str,
    count: usize,
    max_count: usize,
    total: usize,
    suffix: &str,
) -> String {
    const WIDTH: usize = 32;
    let bar = (count * WIDTH).div_ceil(max_count).min(WIDTH);
    let share = if total > 0 { 100.0 * count as f64 / total as f64 } else { 0.0 };
    let mut row = format!(
        "{label:>12} {count:>7} |{}{}| {share:>5.1}%",
        "#".repeat(bar),
        " ".repeat(WIDTH - bar),
    );
    if !suffix.is_empty() {
        row.push_str("  ");
        row.push_str(suffix);
    }
    row.push('\n');
    row
}

/// List the first few instances needing attention, with an elision count.
pub(crate) fn render_attention_list(out: &mut String, title: &str, lines: &[String]) {
    const SHOWN: usize = 10;
    if lines.is_empty() {
        return;
    }
    out.push_str(&format!("\n--- {title} ({}) ---\n", lines.len()));
    for line in lines.iter().take(SHOWN) {
        out.push_str(&format!("  {line}\n"));
    }
    if lines.len() > SHOWN {
        out.push_str(&format!("  … and {} more\n", lines.len() - SHOWN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessor::{AssessmentError, FleetResult};
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::{DopplerEngine, EngineConfig};
    use doppler_dma::{AssessmentRequest, SkuRecommendationPipeline};
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn result(index: usize, name: &str, cpu: f64) -> FleetResult {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let pipeline = SkuRecommendationPipeline::new(engine);
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 64]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 64]));
        FleetResult {
            index,
            instance_name: name.into(),
            deployment: DeploymentType::SqlDb,
            month: None,
            outcome: Ok(pipeline.assess(&AssessmentRequest::from_history(
                name,
                history,
                vec![],
                None,
            ))),
        }
    }

    fn failed(index: usize, name: &str) -> FleetResult {
        FleetResult {
            index,
            instance_name: name.into(),
            deployment: DeploymentType::SqlMi,
            month: None,
            outcome: Err(AssessmentError { message: "boom".into() }),
        }
    }

    #[test]
    fn counts_and_costs_add_up() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 6.0), failed(2, "c")];
        let report = FleetReport::from_results(&results);
        assert_eq!(report.fleet_size, 3);
        assert_eq!(report.recommended, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.unplaceable, 0);
        let mix_total: usize = report.sku_mix.iter().map(|r| r.count).sum();
        assert_eq!(mix_total, 2);
        let mix_cost: f64 = report.sku_mix.iter().map(|r| r.total_monthly_cost).sum();
        assert!((mix_cost - report.total_monthly_cost).abs() < 1e-9);
        assert_eq!(
            report.failures,
            vec![FailureRow { instance_name: "c".into(), message: "boom".into() }]
        );
    }

    #[test]
    fn digest_fold_matches_full_fold() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 6.0), failed(2, "c")];
        let mut by_result = FleetAggregator::new();
        let mut by_digest = FleetAggregator::new();
        for r in &results {
            by_result.accept(r);
            by_digest.accept_digest(&ResultDigest::of(r));
        }
        assert_eq!(by_result.finish(), by_digest.finish());
    }

    #[test]
    fn sku_mix_sorts_by_count_then_id() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 0.5), result(2, "c", 24.0)];
        let report = FleetReport::from_results(&results);
        assert!(report.sku_mix[0].count >= report.sku_mix[1].count);
        assert_eq!(report.sku_mix[0].count, 2);
    }

    #[test]
    fn per_deployment_rows_split_the_fleet() {
        let results = vec![result(0, "a", 0.5), failed(1, "mi")];
        let report = FleetReport::from_results(&results);
        assert_eq!(report.deployments.len(), 2);
        assert_eq!(report.deployments[0].deployment, DeploymentType::SqlDb);
        assert_eq!(report.deployments[0].recommended, 1);
        assert_eq!(report.deployments[1].deployment, DeploymentType::SqlMi);
        assert_eq!(report.deployments[1].failed, 1);
    }

    #[test]
    fn render_mentions_the_key_sections() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 8.0), failed(2, "c")];
        let report = FleetReport::from_results(&results);
        let text = report.render();
        assert!(text.contains("Fleet Assessment Report"));
        assert!(text.contains("SKU mix"));
        assert!(text.contains("Curve shapes"));
        assert!(text.contains("Failures"));
        assert!(text.contains("DB_GP_2"), "{text}");
    }

    #[test]
    fn empty_fleet_renders_without_sections() {
        let report = FleetReport::from_results(&[]);
        let text = report.render();
        assert!(text.contains("instances:       0"));
        assert!(!text.contains("SKU mix"));
        assert!(!text.contains("Adoption"));
        assert_eq!(report.mean_monthly_cost, None);
        assert_eq!(report.confidence, None);
    }

    #[test]
    fn month_tags_fold_into_the_adoption_ledger() {
        let mut results =
            vec![result(0, "a", 0.5), result(1, "b", 0.5), result(2, "c", 6.0), failed(3, "d")];
        results[0].month = Some("Oct-21".into());
        results[1].month = Some("Oct-21".into());
        results[2].month = Some("Nov-21".into());
        results[3].month = Some("Nov-21".into()); // failed: not assessed, not counted
        let report = FleetReport::from_results(&results);
        let oct = report.adoption.month("Oct-21").unwrap();
        assert_eq!(oct.unique_instances, 2);
        assert_eq!(oct.unique_databases, 2);
        // Tiny workloads: every curve point scores 1.0, so DMA surfaces
        // one recommendation per eligible SKU — the Table 1 pattern of
        // recommendations far exceeding instances.
        assert!(oct.recommendations_generated > oct.unique_instances);
        assert_eq!(report.adoption.month("Nov-21").unwrap().unique_instances, 1);
        let text = report.render();
        assert!(text.contains("Adoption (Table 1)"), "{text}");
        assert!(text.contains("Oct-21"));
    }

    #[test]
    fn roll_columns_render_when_the_ledger_carries_rolls() {
        let mut results = vec![result(0, "a", 0.5)];
        results[0].month = Some("Oct-21".into());
        let mut report = FleetReport::from_results(&results);
        assert!(!report.render().contains("catalog-rolls"), "no rolls, no columns");
        // A merged lifecycle ledger (the drift monitor's) brings the
        // catalog-roll columns into the Table 1 section.
        let mut lifecycle = AdoptionLedger::default();
        lifecycle.record_roll("Oct-21", 7);
        report.adoption.merge(&lifecycle);
        let text = report.render();
        assert!(text.contains("catalog-rolls"), "{text}");
        assert!(text.contains("re-priced"), "{text}");
        assert_eq!(report.adoption.month("Oct-21").unwrap().customers_repriced, 7);
    }

    #[test]
    fn untagged_results_leave_the_ledger_empty() {
        let report = FleetReport::from_results(&[result(0, "a", 0.5)]);
        assert_eq!(report.adoption.rows().count(), 0);
    }

    /// Synthetic digests covering every fold branch: failures, unplaceable,
    /// month tags, confidence buckets, repeated SKUs.
    fn synthetic_digests(n: usize) -> Vec<ResultDigest> {
        (0..n)
            .map(|i| {
                let outcome = match i % 5 {
                    0 => DigestOutcome::Failed { message: format!("err-{i}") },
                    1 => DigestOutcome::Assessed {
                        databases_assessed: 2,
                        shape: CurveShape::Flat,
                        confidence: Some(0.3 + (i % 7) as f64 * 0.1),
                        sku: None, // unplaceable
                        eligible_recommendations: 1,
                    },
                    _ => DigestOutcome::Assessed {
                        databases_assessed: 1 + i % 3,
                        shape: if i % 2 == 0 { CurveShape::Simple } else { CurveShape::Complex },
                        confidence: (i % 4 != 0).then(|| (i % 11) as f64 / 10.0),
                        sku: Some((
                            Arc::from(format!("SKU_{}", i % 4).as_str()),
                            17.25 + i as f64 * 0.125,
                        )),
                        eligible_recommendations: 1 + i % 2,
                    },
                };
                ResultDigest {
                    index: i,
                    instance_name: Arc::from(format!("inst-{i}").as_str()),
                    deployment: if i % 3 == 0 {
                        DeploymentType::SqlMi
                    } else {
                        DeploymentType::SqlDb
                    },
                    month: (i % 2 == 0).then(|| Arc::from(["Oct-21", "Nov-21", "Dec-21"][i % 3])),
                    outcome,
                }
            })
            .collect()
    }

    #[test]
    fn merged_shard_aggregates_match_the_sequential_fold() {
        let digests = synthetic_digests(4000); // > CHUNK so sealed chunks merge
        let mut sequential = FleetAggregator::new();
        for d in &digests {
            sequential.accept_digest(d);
        }
        for shards in [2, 3, 4] {
            let mut parts: Vec<FleetAggregator> =
                (0..shards).map(|_| FleetAggregator::new()).collect();
            for d in &digests {
                parts[d.index % shards].accept_digest(d);
            }
            let mut merged = FleetAggregator::new();
            for part in &parts {
                merged.merge(part);
            }
            assert_eq!(merged.finish_ref(), sequential.finish_ref(), "shards={shards}");
        }
    }

    #[test]
    fn merge_grouping_does_not_change_the_report() {
        let digests = synthetic_digests(300);
        let mut parts: Vec<FleetAggregator> = (0..3).map(|_| FleetAggregator::new()).collect();
        for d in &digests {
            parts[d.index % 3].accept_digest(d);
        }
        // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c)).
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left.finish_ref(), right.finish_ref());
    }

    #[test]
    fn snapshot_matches_finish_and_leaves_the_aggregator_usable() {
        let digests = synthetic_digests(50);
        let mut agg = FleetAggregator::new();
        for d in &digests[..30] {
            agg.accept_digest(d);
        }
        let snap = agg.snapshot();
        assert_eq!(snap.fleet_size, 30);
        for d in &digests[30..] {
            agg.accept_digest(d);
        }
        assert_eq!(agg.accepted(), 50);
        assert_eq!(snap, {
            let mut prefix = FleetAggregator::new();
            for d in &digests[..30] {
                prefix.accept_digest(d);
            }
            prefix.finish()
        });
    }
}
