//! Fleet-level aggregation: what a migration programme manager looks at
//! after assessing thousands of instances — the total bill, the SKU mix,
//! how confident the engine was, and which instances need human attention.
//!
//! Everything here is computed from the order-stable result vector, so a
//! report is bit-for-bit identical for any worker count, and
//! `FleetReport: PartialEq` makes that property directly testable.

use doppler_catalog::DeploymentType;
use doppler_core::{CurveShape, Recommendation};
use doppler_dma::AdoptionLedger;
use doppler_obs::ObsSnapshot;

use crate::assessor::FleetResult;

/// Recommendation variants DMA would surface for one assessed instance:
/// one per curve point at full score, at least one — the unit the paper's
/// Table 1 counts as "recommendations generated". The single counting
/// rule behind both the fleet report's adoption ledger and
/// `AssessmentService::assess_and_record`.
pub fn eligible_recommendations(recommendation: &Recommendation) -> usize {
    recommendation.curve.points().iter().filter(|p| p.score >= 1.0 - 1e-9).count().max(1)
}

/// One SKU's share of the fleet.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SkuMixRow {
    pub sku_id: String,
    pub count: usize,
    /// Sum of the monthly cost over instances recommended this SKU.
    pub total_monthly_cost: f64,
}

/// One curve shape's share of the fleet (§5.1's Figure 9 breakdown, now
/// observable over any assessed fleet).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShapeMixRow {
    pub shape: CurveShape,
    pub count: usize,
}

/// Confidence-score distribution over the instances that carried one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceSummary {
    pub scored: usize,
    pub mean: f64,
    pub min: f64,
    /// Counts in `[0, .5)`, `[.5, .75)`, `[.75, .9)`, `[.9, 1)`, `[1]`.
    pub buckets: [usize; 5],
}

/// Per-deployment-target breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeploymentMixRow {
    pub deployment: DeploymentType,
    pub fleet: usize,
    pub recommended: usize,
    pub unplaceable: usize,
    pub failed: usize,
    pub total_monthly_cost: f64,
}

/// One failed instance: name plus the error that stopped it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailureRow {
    pub instance_name: String,
    pub message: String,
}

/// The slice of a [`FleetResult`] the aggregator actually reads — a few
/// scalars and short strings, not the per-instance resource-use report and
/// price-performance curve the full result carries. Reorder buffers hold
/// digests so an out-of-order completion never deep-clones its result (the
/// ticket keeps the full result for the submitter).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDigest {
    pub instance_name: String,
    pub deployment: DeploymentType,
    /// The adoption-ledger month the request carried, if any.
    pub month: Option<String>,
    pub outcome: DigestOutcome,
}

/// Outcome projection inside a [`ResultDigest`].
#[derive(Debug, Clone, PartialEq)]
pub enum DigestOutcome {
    /// Assessment errored or panicked.
    Failed { message: String },
    /// Assessed; `sku` is `Some((sku_id, monthly_cost))` when placed.
    Assessed {
        databases_assessed: usize,
        shape: CurveShape,
        confidence: Option<f64>,
        sku: Option<(String, f64)>,
        /// Recommendation variants DMA would surface for this instance:
        /// one per curve point at full score, at least one — the unit the
        /// paper's Table 1 counts as "recommendations generated".
        eligible_recommendations: usize,
    },
}

impl ResultDigest {
    pub fn of(result: &FleetResult) -> ResultDigest {
        let outcome = match &result.outcome {
            Err(e) => DigestOutcome::Failed { message: e.message.clone() },
            Ok(r) => {
                let eligible = eligible_recommendations(&r.recommendation);
                DigestOutcome::Assessed {
                    databases_assessed: r.databases_assessed,
                    shape: r.recommendation.shape,
                    confidence: r.recommendation.confidence,
                    sku: r
                        .recommendation
                        .sku_id
                        .clone()
                        .map(|sku_id| (sku_id, r.recommendation.monthly_cost.unwrap_or(0.0))),
                    eligible_recommendations: eligible,
                }
            }
        };
        ResultDigest {
            instance_name: result.instance_name.clone(),
            deployment: result.deployment,
            month: result.month.clone(),
            outcome,
        }
    }
}

/// The aggregate view of one fleet assessment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    pub fleet_size: usize,
    /// Instances with a concrete SKU recommendation.
    pub recommended: usize,
    /// Instances assessed successfully but with no feasible SKU (e.g. an
    /// MI data file larger than any placement).
    pub unplaceable: usize,
    /// Instances whose assessment errored or panicked.
    pub failed: usize,
    /// Databases covered across all successfully assessed instances.
    pub databases_assessed: usize,
    /// Total monthly bill over all recommended instances.
    pub total_monthly_cost: f64,
    /// Mean monthly cost per recommended instance.
    pub mean_monthly_cost: Option<f64>,
    /// SKU histogram, descending by count then ascending by SKU id.
    pub sku_mix: Vec<SkuMixRow>,
    /// Curve-shape histogram in `Flat`, `Simple`, `Complex` order.
    pub shape_mix: Vec<ShapeMixRow>,
    /// Present when at least one instance carried a confidence score.
    pub confidence: Option<ConfidenceSummary>,
    /// Per-deployment rows in `SqlDb`, `SqlMi` order (present targets only).
    pub deployments: Vec<DeploymentMixRow>,
    /// Names of the unplaceable instances, in submission order.
    pub unplaceable_instances: Vec<String>,
    /// Failure bucket, in submission order.
    pub failures: Vec<FailureRow>,
    /// Table 1 adoption counters by month, over the requests that carried
    /// a [`FleetRequest::with_month`](crate::FleetRequest::with_month)
    /// label. Empty when the fleet was untagged.
    pub adoption: AdoptionLedger,
    /// Champion/challenger comparison, present when the report came out of
    /// an [`AbFleet`](crate::AbFleet) run. Plain assessments leave it
    /// `None`.
    pub ab: Option<crate::ab::AbSummary>,
}

/// Streaming accumulator behind [`FleetReport`]: accepts results one at a
/// time (in submission order) so the assessor can aggregate on the fly
/// without buffering the whole fleet. State is O(distinct SKUs + attention
/// buckets), not O(fleet).
///
/// `Clone` exists so a long-lived service can publish point-in-time
/// [`snapshot`](FleetAggregator::snapshot)s while results keep streaming in.
#[derive(Debug, Clone)]
pub struct FleetAggregator {
    fleet_size: usize,
    recommended: usize,
    databases_assessed: usize,
    total_monthly_cost: f64,
    sku_mix: Vec<SkuMixRow>,
    shape_counts: [usize; 3],
    confidence_scored: usize,
    confidence_sum: f64,
    confidence_min: f64,
    confidence_buckets: [usize; 5],
    deployments: Vec<DeploymentMixRow>,
    unplaceable_instances: Vec<String>,
    failures: Vec<FailureRow>,
    adoption: AdoptionLedger,
}

impl Default for FleetAggregator {
    fn default() -> FleetAggregator {
        FleetAggregator::new()
    }
}

impl FleetAggregator {
    pub fn new() -> FleetAggregator {
        FleetAggregator {
            fleet_size: 0,
            recommended: 0,
            databases_assessed: 0,
            total_monthly_cost: 0.0,
            sku_mix: Vec::new(),
            shape_counts: [0; 3],
            confidence_scored: 0,
            confidence_sum: 0.0,
            confidence_min: f64::INFINITY,
            confidence_buckets: [0; 5],
            deployments: Vec::new(),
            unplaceable_instances: Vec::new(),
            failures: Vec::new(),
            adoption: AdoptionLedger::default(),
        }
    }

    /// Fold one result in. Callers must feed results in submission order —
    /// floating-point sums follow feed order, and bit-for-bit report
    /// equality across worker counts depends on it.
    pub fn accept(&mut self, r: &FleetResult) {
        // One fold implementation: the by-result and by-digest entry points
        // route through the same arithmetic so they cannot drift apart.
        self.accept_digest(&ResultDigest::of(r));
    }

    /// Fold one digested result in; same ordering contract as
    /// [`accept`](FleetAggregator::accept).
    pub fn accept_digest(&mut self, r: &ResultDigest) {
        self.fleet_size += 1;
        let deployment_row = {
            let d = r.deployment;
            match self.deployments.iter().position(|row| row.deployment == d) {
                Some(i) => &mut self.deployments[i],
                None => {
                    self.deployments.push(DeploymentMixRow {
                        deployment: d,
                        fleet: 0,
                        recommended: 0,
                        unplaceable: 0,
                        failed: 0,
                        total_monthly_cost: 0.0,
                    });
                    self.deployments.last_mut().expect("just pushed")
                }
            }
        };
        deployment_row.fleet += 1;
        match &r.outcome {
            DigestOutcome::Failed { message } => {
                deployment_row.failed += 1;
                self.failures.push(FailureRow {
                    instance_name: r.instance_name.clone(),
                    message: message.clone(),
                });
            }
            DigestOutcome::Assessed {
                databases_assessed,
                shape,
                confidence,
                sku,
                eligible_recommendations,
            } => {
                if let Some(month) = &r.month {
                    self.adoption.record(month, *databases_assessed, *eligible_recommendations);
                }
                self.databases_assessed += databases_assessed;
                self.shape_counts[match shape {
                    CurveShape::Flat => 0,
                    CurveShape::Simple => 1,
                    CurveShape::Complex => 2,
                }] += 1;
                if let Some(c) = *confidence {
                    self.confidence_scored += 1;
                    self.confidence_sum += c;
                    self.confidence_min = self.confidence_min.min(c);
                    self.confidence_buckets[if c >= 1.0 {
                        4
                    } else if c >= 0.9 {
                        3
                    } else if c >= 0.75 {
                        2
                    } else if c >= 0.5 {
                        1
                    } else {
                        0
                    }] += 1;
                }
                match sku {
                    Some((sku_id, cost)) => {
                        self.recommended += 1;
                        deployment_row.recommended += 1;
                        let cost = *cost;
                        self.total_monthly_cost += cost;
                        deployment_row.total_monthly_cost += cost;
                        match self.sku_mix.iter_mut().find(|row| &row.sku_id == sku_id) {
                            Some(row) => {
                                row.count += 1;
                                row.total_monthly_cost += cost;
                            }
                            None => self.sku_mix.push(SkuMixRow {
                                sku_id: sku_id.clone(),
                                count: 1,
                                total_monthly_cost: cost,
                            }),
                        }
                    }
                    None => {
                        deployment_row.unplaceable += 1;
                        self.unplaceable_instances.push(r.instance_name.clone());
                    }
                }
            }
        }
    }

    /// Results folded in so far.
    pub fn accepted(&self) -> usize {
        self.fleet_size
    }

    /// A point-in-time [`FleetReport`] over the results accepted so far,
    /// without consuming the accumulator — the incremental view a dashboard
    /// polls while a fleet run is still in flight. Because acceptance is in
    /// submission order, a snapshot is always the report of an exact prefix
    /// of the fleet, so two snapshots at the same prefix length are
    /// bit-for-bit equal regardless of worker count or timing.
    pub fn snapshot(&self) -> FleetReport {
        self.clone().finish()
    }

    /// Finalize into the report: sort the histograms into their canonical
    /// orders and close out the summary statistics.
    pub fn finish(self) -> FleetReport {
        let FleetAggregator {
            fleet_size,
            recommended,
            databases_assessed,
            total_monthly_cost,
            mut sku_mix,
            shape_counts,
            confidence_scored,
            confidence_sum,
            confidence_min,
            confidence_buckets,
            mut deployments,
            unplaceable_instances,
            failures,
            adoption,
        } = self;
        sku_mix.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.sku_id.cmp(&b.sku_id)));
        deployments.sort_by_key(|row| match row.deployment {
            DeploymentType::SqlDb => 0,
            DeploymentType::SqlMi => 1,
        });
        let shape_mix = [CurveShape::Flat, CurveShape::Simple, CurveShape::Complex]
            .into_iter()
            .zip(shape_counts)
            .map(|(shape, count)| ShapeMixRow { shape, count })
            .collect();
        let confidence = (confidence_scored > 0).then(|| ConfidenceSummary {
            scored: confidence_scored,
            mean: confidence_sum / confidence_scored as f64,
            min: confidence_min,
            buckets: confidence_buckets,
        });
        FleetReport {
            fleet_size,
            recommended,
            unplaceable: unplaceable_instances.len(),
            failed: failures.len(),
            databases_assessed,
            total_monthly_cost,
            mean_monthly_cost: (recommended > 0).then(|| total_monthly_cost / recommended as f64),
            sku_mix,
            shape_mix,
            confidence,
            deployments,
            unplaceable_instances,
            failures,
            adoption,
            ab: None,
        }
    }
}

impl FleetReport {
    /// Aggregate a result vector (must already be in submission order —
    /// [`FleetAssessor::assess`](crate::FleetAssessor::assess) guarantees
    /// it). Summation follows that order, so equal inputs produce
    /// bit-for-bit equal reports regardless of how many workers ran.
    pub fn from_results(results: &[FleetResult]) -> FleetReport {
        let mut agg = FleetAggregator::new();
        for r in results {
            agg.accept(r);
        }
        agg.finish()
    }

    /// Render the report as a terminal dashboard (the fleet-scale analogue
    /// of the per-instance Resource Use report).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Fleet Assessment Report ===\n");
        out.push_str(&format!(
            "instances: {:>7}   recommended: {:>7}   unplaceable: {:>5}   failed: {:>5}\n",
            self.fleet_size, self.recommended, self.unplaceable, self.failed
        ));
        out.push_str(&format!("databases assessed: {}\n", self.databases_assessed));
        out.push_str(&format!(
            "total monthly cost: ${:.2}{}\n",
            self.total_monthly_cost,
            match self.mean_monthly_cost {
                Some(mean) => format!("   (mean ${mean:.2}/instance)"),
                None => String::new(),
            }
        ));

        if !self.sku_mix.is_empty() {
            out.push_str("\n--- SKU mix ---\n");
            let max_count = self.sku_mix.iter().map(|r| r.count).max().unwrap_or(1).max(1);
            for row in &self.sku_mix {
                out.push_str(&bar_row(
                    &row.sku_id,
                    row.count,
                    max_count,
                    self.recommended,
                    &format!("${:.2}/mo", row.total_monthly_cost),
                ));
            }
        }

        let assessed: usize = self.shape_mix.iter().map(|r| r.count).sum();
        if assessed > 0 {
            out.push_str("\n--- Curve shapes ---\n");
            let max_count = self.shape_mix.iter().map(|r| r.count).max().unwrap_or(1).max(1);
            for row in &self.shape_mix {
                out.push_str(&bar_row(
                    &format!("{:?}", row.shape),
                    row.count,
                    max_count,
                    assessed,
                    "",
                ));
            }
        }

        if let Some(c) = &self.confidence {
            out.push_str("\n--- Confidence ---\n");
            out.push_str(&format!(
                "scored: {}   mean: {:.3}   min: {:.3}\n",
                c.scored, c.mean, c.min
            ));
            let labels = ["[0, .5)", "[.5, .75)", "[.75, .9)", "[.9, 1)", "[1]"];
            let max_count = c.buckets.iter().copied().max().unwrap_or(1).max(1);
            for (label, &count) in labels.iter().zip(&c.buckets) {
                out.push_str(&bar_row(label, count, max_count, c.scored, ""));
            }
        }

        if self.adoption.rows().count() > 0 {
            // Drift and catalog-roll columns appear once any month carries
            // such rows (a ledger fed by the drift monitor / roll hook).
            let monitored = self.adoption.rows().any(|(_, row)| row.drift_checks > 0);
            let rolled = self.adoption.rows().any(|(_, row)| row.catalog_rolls > 0);
            out.push_str("\n--- Adoption (Table 1) ---\n");
            out.push_str(&format!(
                "{:>8} {:>10} {:>10} {:>16}",
                "month", "instances", "databases", "recommendations"
            ));
            if monitored {
                out.push_str(&format!(" {:>12} {:>8}", "drift-checks", "drifted"));
            }
            if rolled {
                out.push_str(&format!(" {:>13} {:>9}", "catalog-rolls", "re-priced"));
            }
            out.push('\n');
            for (month, row) in self.adoption.rows() {
                out.push_str(&format!(
                    "{:>8} {:>10} {:>10} {:>16}",
                    month,
                    row.unique_instances,
                    row.unique_databases,
                    row.recommendations_generated
                ));
                if monitored {
                    out.push_str(&format!(" {:>12} {:>8}", row.drift_checks, row.drift_detected));
                }
                if rolled {
                    out.push_str(&format!(
                        " {:>13} {:>9}",
                        row.catalog_rolls, row.customers_repriced
                    ));
                }
                out.push('\n');
            }
        }

        if let Some(ab) = &self.ab {
            out.push_str("\n--- Champion/challenger ---\n");
            out.push_str(&format!(
                "{:>12} {:>12} {:>16} {:>12} {:>12}\n",
                "side", "recommended", "total $/mo", "mean $/mo", "confidence"
            ));
            for side in [&ab.champion, &ab.challenger] {
                out.push_str(&format!(
                    "{:>12} {:>12} {:>16} {:>12} {:>12}\n",
                    side.backend,
                    side.recommended,
                    format!("${:.2}", side.total_monthly_cost),
                    side.mean_monthly_cost.map_or_else(|| "-".into(), |m| format!("${m:.2}")),
                    side.mean_confidence.map_or_else(|| "-".into(), |c| format!("{c:.3}")),
                ));
            }
            out.push_str(&format!(
                "SKU agreement: {}/{} pairs{}\n",
                ab.sku_agreements,
                ab.both_recommended,
                ab.agreement_rate().map_or_else(String::new, |r| format!(" ({:.1}%)", r * 100.0)),
            ));
            out.push_str(&format!(
                "adopt challenger on {} cheaper pair(s): ${:.2}/mo projected savings\n",
                ab.adoption.challenger_cheaper, ab.adoption.projected_monthly_savings
            ));
        }

        if self.deployments.len() > 1 {
            out.push_str("\n--- Deployments ---\n");
            for d in &self.deployments {
                out.push_str(&format!(
                    "{:>12}   fleet {:>6}   recommended {:>6}   unplaceable {:>5}   failed {:>5}   ${:.2}/mo\n",
                    format!("{:?}", d.deployment),
                    d.fleet,
                    d.recommended,
                    d.unplaceable,
                    d.failed,
                    d.total_monthly_cost
                ));
            }
        }

        render_attention_list(&mut out, "Unplaceable", &self.unplaceable_instances);
        let failure_lines: Vec<String> =
            self.failures.iter().map(|f| format!("{}: {}", f.instance_name, f.message)).collect();
        render_attention_list(&mut out, "Failures", &failure_lines);
        out
    }

    /// [`render`](FleetReport::render) with the ops dashboard from an
    /// [`ObsSnapshot`] appended — what an operator tails after a fleet run:
    /// the business numbers first, then where the time went. The report
    /// itself never depends on the snapshot, so determinism suites keep
    /// comparing [`render`](FleetReport::render) output byte-for-byte while
    /// ops tooling layers the (timing-dependent) dashboard on top.
    pub fn render_with_ops(&self, snapshot: &ObsSnapshot) -> String {
        let mut out = self.render();
        out.push('\n');
        out.push_str(&snapshot.render());
        out
    }
}

/// A `label  count |#####     | share%  suffix` row, the idiom the bench
/// crate's `ascii::curve_table` uses for score bars. Shared with the drift
/// report's dashboard.
pub(crate) fn bar_row(
    label: &str,
    count: usize,
    max_count: usize,
    total: usize,
    suffix: &str,
) -> String {
    const WIDTH: usize = 32;
    let bar = (count * WIDTH).div_ceil(max_count).min(WIDTH);
    let share = if total > 0 { 100.0 * count as f64 / total as f64 } else { 0.0 };
    let mut row = format!(
        "{label:>12} {count:>7} |{}{}| {share:>5.1}%",
        "#".repeat(bar),
        " ".repeat(WIDTH - bar),
    );
    if !suffix.is_empty() {
        row.push_str("  ");
        row.push_str(suffix);
    }
    row.push('\n');
    row
}

/// List the first few instances needing attention, with an elision count.
pub(crate) fn render_attention_list(out: &mut String, title: &str, lines: &[String]) {
    const SHOWN: usize = 10;
    if lines.is_empty() {
        return;
    }
    out.push_str(&format!("\n--- {title} ({}) ---\n", lines.len()));
    for line in lines.iter().take(SHOWN) {
        out.push_str(&format!("  {line}\n"));
    }
    if lines.len() > SHOWN {
        out.push_str(&format!("  … and {} more\n", lines.len() - SHOWN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessor::{AssessmentError, FleetResult};
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::{DopplerEngine, EngineConfig};
    use doppler_dma::{AssessmentRequest, SkuRecommendationPipeline};
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn result(index: usize, name: &str, cpu: f64) -> FleetResult {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let pipeline = SkuRecommendationPipeline::new(engine);
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 64]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 64]));
        FleetResult {
            index,
            instance_name: name.into(),
            deployment: DeploymentType::SqlDb,
            month: None,
            outcome: Ok(pipeline.assess(&AssessmentRequest::from_history(
                name,
                history,
                vec![],
                None,
            ))),
        }
    }

    fn failed(index: usize, name: &str) -> FleetResult {
        FleetResult {
            index,
            instance_name: name.into(),
            deployment: DeploymentType::SqlMi,
            month: None,
            outcome: Err(AssessmentError { message: "boom".into() }),
        }
    }

    #[test]
    fn counts_and_costs_add_up() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 6.0), failed(2, "c")];
        let report = FleetReport::from_results(&results);
        assert_eq!(report.fleet_size, 3);
        assert_eq!(report.recommended, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.unplaceable, 0);
        let mix_total: usize = report.sku_mix.iter().map(|r| r.count).sum();
        assert_eq!(mix_total, 2);
        let mix_cost: f64 = report.sku_mix.iter().map(|r| r.total_monthly_cost).sum();
        assert!((mix_cost - report.total_monthly_cost).abs() < 1e-9);
        assert_eq!(
            report.failures,
            vec![FailureRow { instance_name: "c".into(), message: "boom".into() }]
        );
    }

    #[test]
    fn digest_fold_matches_full_fold() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 6.0), failed(2, "c")];
        let mut by_result = FleetAggregator::new();
        let mut by_digest = FleetAggregator::new();
        for r in &results {
            by_result.accept(r);
            by_digest.accept_digest(&ResultDigest::of(r));
        }
        assert_eq!(by_result.finish(), by_digest.finish());
    }

    #[test]
    fn sku_mix_sorts_by_count_then_id() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 0.5), result(2, "c", 24.0)];
        let report = FleetReport::from_results(&results);
        assert!(report.sku_mix[0].count >= report.sku_mix[1].count);
        assert_eq!(report.sku_mix[0].count, 2);
    }

    #[test]
    fn per_deployment_rows_split_the_fleet() {
        let results = vec![result(0, "a", 0.5), failed(1, "mi")];
        let report = FleetReport::from_results(&results);
        assert_eq!(report.deployments.len(), 2);
        assert_eq!(report.deployments[0].deployment, DeploymentType::SqlDb);
        assert_eq!(report.deployments[0].recommended, 1);
        assert_eq!(report.deployments[1].deployment, DeploymentType::SqlMi);
        assert_eq!(report.deployments[1].failed, 1);
    }

    #[test]
    fn render_mentions_the_key_sections() {
        let results = vec![result(0, "a", 0.5), result(1, "b", 8.0), failed(2, "c")];
        let report = FleetReport::from_results(&results);
        let text = report.render();
        assert!(text.contains("Fleet Assessment Report"));
        assert!(text.contains("SKU mix"));
        assert!(text.contains("Curve shapes"));
        assert!(text.contains("Failures"));
        assert!(text.contains("DB_GP_2"), "{text}");
    }

    #[test]
    fn empty_fleet_renders_without_sections() {
        let report = FleetReport::from_results(&[]);
        let text = report.render();
        assert!(text.contains("instances:       0"));
        assert!(!text.contains("SKU mix"));
        assert!(!text.contains("Adoption"));
        assert_eq!(report.mean_monthly_cost, None);
        assert_eq!(report.confidence, None);
    }

    #[test]
    fn month_tags_fold_into_the_adoption_ledger() {
        let mut results =
            vec![result(0, "a", 0.5), result(1, "b", 0.5), result(2, "c", 6.0), failed(3, "d")];
        results[0].month = Some("Oct-21".into());
        results[1].month = Some("Oct-21".into());
        results[2].month = Some("Nov-21".into());
        results[3].month = Some("Nov-21".into()); // failed: not assessed, not counted
        let report = FleetReport::from_results(&results);
        let oct = report.adoption.month("Oct-21").unwrap();
        assert_eq!(oct.unique_instances, 2);
        assert_eq!(oct.unique_databases, 2);
        // Tiny workloads: every curve point scores 1.0, so DMA surfaces
        // one recommendation per eligible SKU — the Table 1 pattern of
        // recommendations far exceeding instances.
        assert!(oct.recommendations_generated > oct.unique_instances);
        assert_eq!(report.adoption.month("Nov-21").unwrap().unique_instances, 1);
        let text = report.render();
        assert!(text.contains("Adoption (Table 1)"), "{text}");
        assert!(text.contains("Oct-21"));
    }

    #[test]
    fn roll_columns_render_when_the_ledger_carries_rolls() {
        let mut results = vec![result(0, "a", 0.5)];
        results[0].month = Some("Oct-21".into());
        let mut report = FleetReport::from_results(&results);
        assert!(!report.render().contains("catalog-rolls"), "no rolls, no columns");
        // A merged lifecycle ledger (the drift monitor's) brings the
        // catalog-roll columns into the Table 1 section.
        let mut lifecycle = AdoptionLedger::default();
        lifecycle.record_roll("Oct-21", 7);
        report.adoption.merge(&lifecycle);
        let text = report.render();
        assert!(text.contains("catalog-rolls"), "{text}");
        assert!(text.contains("re-priced"), "{text}");
        assert_eq!(report.adoption.month("Oct-21").unwrap().customers_repriced, 7);
    }

    #[test]
    fn untagged_results_leave_the_ledger_empty() {
        let report = FleetReport::from_results(&[result(0, "a", 0.5)]);
        assert_eq!(report.adoption.rows().count(), 0);
    }
}
