//! The autonomous fleet lifecycle: a [`FleetScheduler`] that owns the
//! §5.2.3 loop end to end — assess → deploy → watch → re-assess on drift
//! or re-price → retire — driven by a virtual [`SimClock`] instead of an
//! operator's hand.
//!
//! Everything the operator used to crank by hand is an *event* on the
//! scheduler's calendar, processed once per simulated month in one fixed
//! order:
//!
//! ```text
//!             ┌──────────────── one SimClock month ────────────────┐
//!             │                                                    │
//!  onboard ──►│ 1. watch scheduled customers   (watch order)       │
//!  telemetry ►│ 2. observe scheduled windows   (arrival order)     │
//!  pricing ──►│ 3. apply scheduled price feeds (provider rolls)    │
//!             │ 4. dispatch new catalog rolls  (change-log cursor) │──► re-price
//!             │ 5. DriftMonitor::tick          (severity re-queue) │──► re-assess
//!             │ 6. TTL retirement              (idle customers,    │
//!             │                                 stale engines)     │
//!             └────────────────────────────────────────────────────┘
//! ```
//!
//! Step 4 is the cursor-based change-log subscription
//! ([`RefreshableCatalogProvider::change_log_since`] via
//! [`DriftMonitor::dispatch_rolls`]): each published roll is dispatched
//! exactly once, no matter how often the scheduler looks at the log.
//! Step 5 rides the PR-8 per-shard priority lanes — drifted customers
//! re-assess Critical-first. Step 6 is age-based lifecycle hygiene:
//! customers idle past the TTL are unwatched, and engines pinned to
//! catalog versions older than the version window are tombstoned in the
//! shared registry.
//!
//! Because every step is an ordinary public `DriftMonitor` /
//! `RefreshableCatalogProvider` call and the order is fixed, a scheduled
//! run is **bit-for-bit equal** to the same sequence cranked by hand —
//! at any worker count — which is what `tests/scheduler_equivalence.rs`
//! locks. The virtual clock makes the simulator: multiple years of fleet
//! life run in seconds, deterministically, with the per-month trace
//! recorded as a [`ScheduleSummary`] on the final
//! [`FleetReport`].
//!
//! # Example
//!
//! ```
//! use doppler_catalog::{azure_paas_catalog, CatalogSpec, DeploymentType};
//! use doppler_core::{DopplerEngine, EngineConfig};
//! use doppler_fleet::{
//!     DriftMonitor, FleetAssessor, FleetConfig, FleetScheduler, MonitoredCustomer, SimClock,
//! };
//! use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};
//!
//! let engine = DopplerEngine::untrained(
//!     azure_paas_catalog(&CatalogSpec::default()),
//!     EngineConfig::production(DeploymentType::SqlDb),
//! );
//! let monitor = DriftMonitor::new(FleetAssessor::new(engine, FleetConfig::with_workers(2)));
//! let mut sim = FleetScheduler::new(monitor, SimClock::starting(2022, 1));
//!
//! let window = |cpu: f64| {
//!     PerfHistory::new()
//!         .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
//!         .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]))
//! };
//! sim.onboard_at(0, MonitoredCustomer::new("cust-1", DeploymentType::SqlDb, window(0.5)));
//! sim.telemetry_at(1, "cust-1", window(7.0)); // the workload grows 14×
//!
//! let months = sim.run(2);
//! assert_eq!(months[0].label, "Jan-22");
//! assert_eq!(months[1].pass.report.drifted, 1, "month 2 caught the drift");
//! let report = sim.shutdown();
//! assert_eq!(report.schedule.unwrap().drift_detected, 1);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use doppler_catalog::{CatalogVersion, PriceFeed, RefreshableCatalogProvider, Region};
use doppler_dma::json::Json;
use doppler_telemetry::PerfHistory;

use doppler_dma::AssessmentRequest;

use crate::ab::{AbFleet, AbSummary, PromotionPolicy, RolloutEvent, RolloutStage, RolloutTracker};
use crate::assessor::FleetRequest;
use crate::drift::{CatalogRollOutcome, DriftMonitor, DriftPass, MonitoredCustomer};
use crate::report::FleetReport;

/// A virtual month counter — the simulation's only notion of time. No
/// wall clock is ever read: the same schedule always produces the same
/// labels, which is half of what makes scheduled runs reproducible.
///
/// Labels render in the repo's ledger convention (`"Jan-22"`), so
/// scheduler months line up with hand-written
/// [`DriftMonitor::tick`] months in reports and ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    /// Absolute month index: `year * 12 + (month - 1)`.
    months: usize,
}

const MONTH_NAMES: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

impl SimClock {
    /// A clock reading `month` (1–12, clamped) of `year`.
    pub fn starting(year: usize, month: usize) -> SimClock {
        SimClock { months: year * 12 + month.clamp(1, 12) - 1 }
    }

    /// The current month's ledger label, e.g. `"Jan-22"`.
    pub fn label(&self) -> String {
        format!("{}-{:02}", MONTH_NAMES[self.months % 12], (self.months / 12) % 100)
    }

    /// The calendar year the clock currently reads.
    pub fn year(&self) -> usize {
        self.months / 12
    }

    /// Advance one month.
    pub fn advance(&mut self) {
        self.months += 1;
    }
}

/// What one simulated month did ([`FleetScheduler::step`]).
#[derive(Debug)]
pub struct SimMonth {
    /// The month's [`SimClock`] label.
    pub label: String,
    /// Customers onboarded (newly watched) this month.
    pub onboarded: usize,
    /// Telemetry windows that arrived and were staged.
    pub telemetry: usize,
    /// Price feeds applied to the provider.
    pub feeds: usize,
    /// Catalog rolls dispatched through the change-log cursor, in
    /// publication order — one outcome per roll.
    pub rolls: Vec<CatalogRollOutcome>,
    /// The month's drift pass (checks, verdicts, priority re-assessments).
    pub pass: DriftPass,
    /// Customers unwatched by the idle TTL, in watch order.
    pub retired_customers: Vec<String>,
    /// Engines tombstoned by the version window.
    pub retired_engines: usize,
    /// The month's champion/challenger comparison, when a challenger is
    /// attached and the watch list was non-empty.
    pub ab: Option<AbSummary>,
    /// What the month did to the rollout state machine.
    pub rollout: RolloutEvent,
}

/// One simulated month's row in the [`ScheduleSummary`] — the schedule
/// trace that rides the final report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScheduleMonthRow {
    pub month: String,
    pub onboarded: usize,
    pub telemetry: usize,
    pub feeds: usize,
    /// Catalog rolls dispatched.
    pub rolls: usize,
    /// Customers re-priced by those rolls (successes only, matching the
    /// ledger's `customers_repriced`).
    pub repriced: usize,
    /// Re-prices surfaced as failures
    /// ([`CatalogRollOutcome::reprice_failures`]).
    pub reprice_failures: usize,
    /// Drift checks run by the month's pass.
    pub checked: usize,
    pub drifted: usize,
    /// Priority-lane re-assessments of drifted customers.
    pub reassessed: usize,
    pub retired_customers: usize,
    pub retired_engines: usize,
    /// Customers still watched at month end.
    pub watched: usize,
    /// Cohort size of the month's A/B pass (0 = no pass ran).
    pub ab_cohort: usize,
    /// SKU-agreement rate of the month's A/B pass.
    pub ab_agreement: Option<f64>,
    /// Projected monthly savings of adopting the challenger.
    pub ab_savings: Option<f64>,
    /// What the month did to the rollout state machine.
    pub rollout: RolloutEvent,
}

/// The simulation's schedule trace: one row per simulated month plus
/// whole-run totals, attached to the final report by
/// [`FleetScheduler::shutdown`] (mirroring how A/B runs attach their
/// [`AbSummary`]).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ScheduleSummary {
    /// The first simulated month's label.
    pub start: String,
    /// Per-month rows, in simulation order.
    pub months: Vec<ScheduleMonthRow>,
    pub customers_onboarded: usize,
    pub telemetry_windows: usize,
    pub feeds_applied: usize,
    pub rolls_dispatched: usize,
    pub customers_repriced: usize,
    pub reprice_failures: usize,
    pub drift_checks: usize,
    pub drift_detected: usize,
    pub reassessments: usize,
    pub customers_retired: usize,
    pub engines_retired: usize,
    /// Months where an A/B pass ran (challenger attached, cohort
    /// non-empty).
    pub ab_months: usize,
    /// Challenger promotions over the run.
    pub promotions: usize,
    /// Challenger demotions over the run.
    pub demotions: usize,
    /// The first month a promotion fired, if any.
    pub promoted_month: Option<String>,
}

impl ScheduleSummary {
    /// Simulated months so far.
    pub fn sim_months(&self) -> usize {
        self.months.len()
    }

    fn record(&mut self, row: ScheduleMonthRow) {
        if self.months.is_empty() {
            self.start = row.month.clone();
        }
        self.customers_onboarded += row.onboarded;
        self.telemetry_windows += row.telemetry;
        self.feeds_applied += row.feeds;
        self.rolls_dispatched += row.rolls;
        self.customers_repriced += row.repriced;
        self.reprice_failures += row.reprice_failures;
        self.drift_checks += row.checked;
        self.drift_detected += row.drifted;
        self.reassessments += row.reassessed;
        self.customers_retired += row.retired_customers;
        self.engines_retired += row.retired_engines;
        self.ab_months += usize::from(row.ab_cohort > 0);
        match row.rollout {
            RolloutEvent::Promoted => {
                self.promotions += 1;
                if self.promoted_month.is_none() {
                    self.promoted_month = Some(row.month.clone());
                }
            }
            RolloutEvent::Demoted => self.demotions += 1,
            RolloutEvent::None => {}
        }
        self.months.push(row);
    }
}

/// The event-driven lifecycle loop over a [`DriftMonitor`]: schedule
/// onboarding waves, telemetry arrivals, and price feeds on a virtual
/// calendar, then [`step`](FleetScheduler::step) (or
/// [`run`](FleetScheduler::run)) through simulated months. See the
/// [module docs](self) for the per-month event order and the determinism
/// contract.
pub struct FleetScheduler {
    monitor: DriftMonitor,
    clock: SimClock,
    /// Months stepped so far — the key space of the schedule maps.
    step: usize,
    /// The price-feed source (and change-log publisher). `None` = a
    /// fixed-catalog simulation: steps 3–4 are no-ops.
    provider: Option<Arc<RefreshableCatalogProvider>>,
    onboardings: BTreeMap<usize, Vec<MonitoredCustomer>>,
    telemetry: BTreeMap<usize, Vec<(String, PerfHistory)>>,
    feeds: BTreeMap<usize, Vec<(Region, PriceFeed)>>,
    /// Unwatch customers that have gone this many months without
    /// telemetry. `None` = never retire.
    idle_ttl: Option<usize>,
    /// Keep engines for the newest N catalog versions; retire older.
    /// `None` = never retire.
    version_window: Option<u32>,
    /// Highest catalog version seen in dispatched rolls — the frontier
    /// the version window trails.
    version_frontier: u32,
    /// Customer → month index of its latest telemetry (or onboarding).
    last_seen: HashMap<String, usize>,
    /// The staged-rollout harness: an A/B fleet assessed against the
    /// watched cohort every month, feeding the promotion tracker.
    challenger: Option<(AbFleet, RolloutTracker)>,
    summary: ScheduleSummary,
}

impl FleetScheduler {
    /// A scheduler over `monitor`, starting at `clock`'s month.
    pub fn new(monitor: DriftMonitor, clock: SimClock) -> FleetScheduler {
        FleetScheduler {
            monitor,
            clock,
            step: 0,
            provider: None,
            onboardings: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            feeds: BTreeMap::new(),
            idle_ttl: None,
            version_window: None,
            version_frontier: 0,
            last_seen: HashMap::new(),
            challenger: None,
            summary: ScheduleSummary::default(),
        }
    }

    /// Attach the catalog provider: scheduled price feeds apply to it,
    /// and every roll it publishes is dispatched through the monitor's
    /// change-log cursor (step 4) — including rolls applied *outside*
    /// the schedule, e.g. by an operator between steps.
    pub fn with_provider(mut self, provider: Arc<RefreshableCatalogProvider>) -> FleetScheduler {
        self.provider = Some(provider);
        self
    }

    /// Unwatch customers that have gone `months` simulated months without
    /// a telemetry arrival (step 6). Onboarding counts as an arrival.
    pub fn with_idle_ttl(mut self, months: usize) -> FleetScheduler {
        self.idle_ttl = Some(months.max(1));
        self
    }

    /// After each month's roll dispatch, tombstone registry engines whose
    /// catalog version trails the newest rolled version by `versions` or
    /// more (step 6) — bounded memory over years of monthly re-pricing.
    /// No-op for services without a shared registry.
    pub fn with_version_window(mut self, versions: u32) -> FleetScheduler {
        self.version_window = Some(versions.max(1));
        self
    }

    /// Attach a staged rollout (step 7): every month, the watched cohort
    /// is re-assessed through `ab`'s champion and challenger sides, the
    /// resulting [`AbSummary`] feeds a [`RolloutTracker`] under `policy`,
    /// and promotions/demotions surface on the [`ScheduleSummary`]. The
    /// A/B pass reads the watch list but never mutates it, so attaching a
    /// challenger changes nothing about steps 1–6.
    pub fn with_challenger(mut self, ab: AbFleet, policy: PromotionPolicy) -> FleetScheduler {
        self.challenger = Some((ab, RolloutTracker::new(policy)));
        self
    }

    /// The staged rollout's tracker, when a challenger is attached.
    pub fn rollout(&self) -> Option<&RolloutTracker> {
        self.challenger.as_ref().map(|(_, tracker)| tracker)
    }

    /// The staged rollout's current stage, when a challenger is attached.
    pub fn rollout_stage(&self) -> Option<RolloutStage> {
        self.rollout().map(RolloutTracker::stage)
    }

    /// Schedule a customer to be watched in simulated month `month`
    /// (0-based offset from the clock's start).
    pub fn onboard_at(&mut self, month: usize, customer: MonitoredCustomer) {
        self.onboardings.entry(month).or_default().push(customer);
    }

    /// Schedule a telemetry window to arrive for `name` in month `month`.
    /// Windows for one customer in one month overwrite
    /// ([`DriftMonitor::observe`] semantics: freshest wins).
    pub fn telemetry_at(&mut self, month: usize, name: impl Into<String>, window: PerfHistory) {
        self.telemetry.entry(month).or_default().push((name.into(), window));
    }

    /// Schedule a price feed against `region` in month `month` (applied
    /// before that month's roll dispatch, so its rolls re-price the fleet
    /// in the same month). Ignored without a
    /// [`provider`](FleetScheduler::with_provider).
    pub fn feed_at(&mut self, month: usize, region: Region, feed: PriceFeed) {
        self.feeds.entry(month).or_default().push((region, feed));
    }

    /// The monitor under the scheduler (its ledger, watch list, service).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// The clock, positioned at the *next* month to simulate.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated months stepped so far.
    pub fn months_run(&self) -> usize {
        self.step
    }

    /// The schedule trace accumulated so far.
    pub fn summary(&self) -> &ScheduleSummary {
        &self.summary
    }

    /// Simulate one month: the six lifecycle steps in the fixed order the
    /// [module docs](self) diagram shows. Deterministic: the same
    /// schedule produces a bit-for-bit identical [`SimMonth`] (and
    /// downstream report) at any worker count, and an interrupted run
    /// resumed later is indistinguishable from an uninterrupted one —
    /// all state lives in the scheduler, none in the clock.
    pub fn step(&mut self) -> SimMonth {
        let obs = self.monitor.service().obs().clone();
        let step_span = obs.histogram("sim.step_latency").start();
        let label = self.clock.label();
        let m = self.step;

        // 1. Onboarding — watch order is schedule order.
        let onboard = self.onboardings.remove(&m).unwrap_or_default();
        let onboarded = onboard.len();
        for customer in onboard {
            self.last_seen.insert(customer.name.clone(), m);
            self.monitor.watch(customer);
        }

        // 2. Telemetry arrival — staged windows feed this month's pass.
        let mut telemetry = 0usize;
        for (name, window) in self.telemetry.remove(&m).unwrap_or_default() {
            if self.monitor.observe(&name, window) {
                self.last_seen.insert(name, m);
                telemetry += 1;
            }
        }

        // 3. Price feeds — applied before roll dispatch so a feed's rolls
        // re-price the fleet in the month the feed lands.
        let mut feeds = 0usize;
        if let Some(provider) = &self.provider {
            for (region, feed) in self.feeds.remove(&m).unwrap_or_default() {
                if provider.apply_feed(&region, feed).is_ok() {
                    feeds += 1;
                }
            }
        }

        // 4. Roll dispatch via the change-log cursor: each published roll
        // retires the old key's engines and re-prices its pinned
        // customers exactly once, ever.
        let rolls = match &self.provider {
            Some(provider) => self.monitor.dispatch_rolls(&label, provider),
            None => Vec::new(),
        };
        for roll in &rolls {
            self.version_frontier = self.version_frontier.max(roll.new_key.version.0);
        }

        // 5. The drift pass — severity-ordered priority re-queue inside.
        let pass = self.monitor.tick(&label);

        // 6. TTL retirement: idle customers leave the watch list; engines
        // behind the version window leave the registry.
        let mut retired_customers = Vec::new();
        if let Some(ttl) = self.idle_ttl {
            let idle: Vec<String> = self
                .monitor
                .watched_names()
                .filter(|name| {
                    let seen = self.last_seen.get(*name).copied().unwrap_or(m);
                    m - seen >= ttl
                })
                .map(str::to_string)
                .collect();
            for name in idle {
                if self.monitor.unwatch(&name) {
                    self.last_seen.remove(&name);
                    retired_customers.push(name);
                }
            }
        }
        let mut retired_engines = 0usize;
        if let (Some(window), Some(registry)) =
            (self.version_window, self.monitor.service().registry())
        {
            if self.version_frontier > window {
                retired_engines =
                    registry.retire_older_than(CatalogVersion(self.version_frontier - window));
            }
        }

        // 7. Staged rollout: re-assess the surviving watch list through
        // the A/B harness and feed the month into the promotion tracker.
        // Read-only with respect to steps 1–6 — the cohort is the same
        // list the TTL sweep just settled.
        let mut ab_summary: Option<AbSummary> = None;
        let mut rollout = RolloutEvent::None;
        if let Some((ab, tracker)) = self.challenger.as_mut() {
            let cohort: Vec<FleetRequest> = self
                .monitor
                .watched_customers()
                .map(|customer| {
                    let request = FleetRequest::new(
                        customer.deployment,
                        AssessmentRequest::from_history(
                            customer.name.clone(),
                            customer.baseline.clone(),
                            customer.file_sizes_gib.clone(),
                            customer.confidence,
                        ),
                    );
                    match &customer.catalog_key {
                        Some(key) => request.with_catalog_key(key.clone()),
                        None => request,
                    }
                })
                .collect();
            if !cohort.is_empty() {
                let outcome = ab.assess(cohort);
                let summary = outcome.report.ab.expect("A/B assess always attaches a summary");
                rollout = tracker.observe(&label, &summary);
                ab_summary = Some(summary);
            }
        }

        let row = ScheduleMonthRow {
            month: label.clone(),
            onboarded,
            telemetry,
            feeds,
            rolls: rolls.len(),
            repriced: rolls
                .iter()
                .map(|r| r.repriced.iter().filter(|x| x.outcome.is_ok()).count())
                .sum(),
            reprice_failures: rolls.iter().map(|r| r.reprice_failures).sum(),
            checked: pass.report.checked,
            drifted: pass.report.drifted,
            reassessed: pass.reassessments.len(),
            retired_customers: retired_customers.len(),
            retired_engines,
            watched: self.monitor.watched(),
            ab_cohort: ab_summary.as_ref().map_or(0, |s| s.paired),
            ab_agreement: ab_summary.as_ref().and_then(AbSummary::agreement_rate),
            ab_savings: ab_summary.as_ref().map(|s| s.adoption.projected_monthly_savings),
            rollout,
        };
        obs.counter("sim.months").incr();
        obs.counter("sim.telemetry").add(telemetry as u64);
        obs.counter("sim.feeds").add(feeds as u64);
        obs.counter("sim.rolls_dispatched").add(rolls.len() as u64);
        obs.counter("sim.customers_retired").add(retired_customers.len() as u64);
        obs.counter("sim.engines_retired").add(retired_engines as u64);
        obs.counter("sim.ab_passes").add(u64::from(row.ab_cohort > 0));
        if rollout == RolloutEvent::Promoted {
            obs.counter("sim.promotions").incr();
        }
        if obs.is_enabled() {
            obs.event(
                "sim.step",
                &format!(
                    "month={label} onboarded={onboarded} telemetry={telemetry} feeds={feeds} \
                     rolls={} checked={} drifted={} retired={}",
                    row.rolls, row.checked, row.drifted, row.retired_customers
                ),
            );
        }
        self.summary.record(row);
        self.step += 1;
        self.clock.advance();
        drop(step_span);

        SimMonth {
            label,
            onboarded,
            telemetry,
            feeds,
            rolls,
            pass,
            retired_customers,
            retired_engines,
            ab: ab_summary,
            rollout,
        }
    }

    /// Simulate `months` consecutive months. `run(a)` then `run(b)` is
    /// exactly `run(a + b)` — pausing a simulation costs nothing and
    /// changes nothing.
    pub fn run(&mut self, months: usize) -> Vec<SimMonth> {
        (0..months).map(|_| self.step()).collect()
    }

    /// Shut the service down and return its final assessment report with
    /// the schedule trace attached
    /// ([`FleetReport::schedule`](crate::FleetReport::schedule)).
    pub fn shutdown(self) -> FleetReport {
        let mut report = self.monitor.shutdown();
        report.schedule = Some(self.summary);
        report
    }
}

fn row_to_json(row: &ScheduleMonthRow) -> Json {
    Json::Obj(vec![
        ("month".into(), Json::Str(row.month.clone())),
        ("onboarded".into(), Json::Num(row.onboarded as f64)),
        ("telemetry".into(), Json::Num(row.telemetry as f64)),
        ("feeds".into(), Json::Num(row.feeds as f64)),
        ("rolls".into(), Json::Num(row.rolls as f64)),
        ("repriced".into(), Json::Num(row.repriced as f64)),
        ("reprice_failures".into(), Json::Num(row.reprice_failures as f64)),
        ("checked".into(), Json::Num(row.checked as f64)),
        ("drifted".into(), Json::Num(row.drifted as f64)),
        ("reassessed".into(), Json::Num(row.reassessed as f64)),
        ("retired_customers".into(), Json::Num(row.retired_customers as f64)),
        ("retired_engines".into(), Json::Num(row.retired_engines as f64)),
        ("watched".into(), Json::Num(row.watched as f64)),
        ("ab_cohort".into(), Json::Num(row.ab_cohort as f64)),
        ("ab_agreement".into(), row.ab_agreement.map_or(Json::Null, Json::Num)),
        ("ab_savings".into(), row.ab_savings.map_or(Json::Null, Json::Num)),
        ("rollout".into(), Json::Str(rollout_event_str(row.rollout).into())),
    ])
}

fn rollout_event_str(event: RolloutEvent) -> &'static str {
    match event {
        RolloutEvent::None => "none",
        RolloutEvent::Promoted => "promoted",
        RolloutEvent::Demoted => "demoted",
    }
}

fn rollout_event_from_str(s: &str) -> Option<RolloutEvent> {
    match s {
        "none" => Some(RolloutEvent::None),
        "promoted" => Some(RolloutEvent::Promoted),
        "demoted" => Some(RolloutEvent::Demoted),
        _ => None,
    }
}

fn row_from_json(json: &Json) -> Option<ScheduleMonthRow> {
    let num = |key: &str| json.get(key).and_then(Json::as_f64).map(|v| v as usize);
    Some(ScheduleMonthRow {
        month: json.get("month")?.as_str()?.to_string(),
        onboarded: num("onboarded")?,
        telemetry: num("telemetry")?,
        feeds: num("feeds")?,
        rolls: num("rolls")?,
        repriced: num("repriced")?,
        reprice_failures: num("reprice_failures")?,
        checked: num("checked")?,
        drifted: num("drifted")?,
        reassessed: num("reassessed")?,
        retired_customers: num("retired_customers")?,
        retired_engines: num("retired_engines")?,
        watched: num("watched")?,
        ab_cohort: num("ab_cohort")?,
        ab_agreement: json.get("ab_agreement")?.non_null().and_then(Json::as_f64),
        ab_savings: json.get("ab_savings")?.non_null().and_then(Json::as_f64),
        rollout: rollout_event_from_str(json.get("rollout")?.as_str()?)?,
    })
}

/// Export a schedule trace as a self-contained JSON value (the
/// `doppler_dma::json` dialect every other report export uses) — months
/// array first, totals after, so dashboards can stream the rows.
pub fn schedule_summary_to_json(summary: &ScheduleSummary) -> Json {
    Json::Obj(vec![
        ("start".into(), Json::Str(summary.start.clone())),
        ("sim_months".into(), Json::Num(summary.sim_months() as f64)),
        ("months".into(), Json::Arr(summary.months.iter().map(row_to_json).collect())),
        ("customers_onboarded".into(), Json::Num(summary.customers_onboarded as f64)),
        ("telemetry_windows".into(), Json::Num(summary.telemetry_windows as f64)),
        ("feeds_applied".into(), Json::Num(summary.feeds_applied as f64)),
        ("rolls_dispatched".into(), Json::Num(summary.rolls_dispatched as f64)),
        ("customers_repriced".into(), Json::Num(summary.customers_repriced as f64)),
        ("reprice_failures".into(), Json::Num(summary.reprice_failures as f64)),
        ("drift_checks".into(), Json::Num(summary.drift_checks as f64)),
        ("drift_detected".into(), Json::Num(summary.drift_detected as f64)),
        ("reassessments".into(), Json::Num(summary.reassessments as f64)),
        ("customers_retired".into(), Json::Num(summary.customers_retired as f64)),
        ("engines_retired".into(), Json::Num(summary.engines_retired as f64)),
        ("ab_months".into(), Json::Num(summary.ab_months as f64)),
        ("promotions".into(), Json::Num(summary.promotions as f64)),
        ("demotions".into(), Json::Num(summary.demotions as f64)),
        (
            "promoted_month".into(),
            summary.promoted_month.as_ref().map_or(Json::Null, |m| Json::Str(m.clone())),
        ),
    ])
}

/// Re-parse an exported schedule trace; `None` on any structural
/// mismatch. Round-trips [`schedule_summary_to_json`] losslessly.
pub fn schedule_summary_from_json(json: &Json) -> Option<ScheduleSummary> {
    let num = |key: &str| json.get(key).and_then(Json::as_f64).map(|v| v as usize);
    Some(ScheduleSummary {
        start: json.get("start")?.as_str()?.to_string(),
        months: json.get("months")?.as_arr()?.iter().map(row_from_json).collect::<Option<_>>()?,
        customers_onboarded: num("customers_onboarded")?,
        telemetry_windows: num("telemetry_windows")?,
        feeds_applied: num("feeds_applied")?,
        rolls_dispatched: num("rolls_dispatched")?,
        customers_repriced: num("customers_repriced")?,
        reprice_failures: num("reprice_failures")?,
        drift_checks: num("drift_checks")?,
        drift_detected: num("drift_detected")?,
        reassessments: num("reassessments")?,
        customers_retired: num("customers_retired")?,
        engines_retired: num("engines_retired")?,
        ab_months: num("ab_months")?,
        promotions: num("promotions")?,
        demotions: num("demotions")?,
        promoted_month: json
            .get("promoted_month")?
            .non_null()
            .and_then(Json::as_str)
            .map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use doppler_catalog::{
        azure_paas_catalog, CatalogKey, CatalogSpec, CatalogVersion, DeploymentType,
        InMemoryCatalogProvider,
    };
    use doppler_core::{DopplerEngine, EngineConfig, EngineRegistry};
    use doppler_telemetry::{PerfDimension, TimeSeries};

    use crate::assessor::{EngineRoute, FleetAssessor, FleetConfig};

    fn window(cpu: f64, n: usize) -> PerfHistory {
        PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; n]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; n]))
    }

    fn simple_scheduler(workers: usize) -> FleetScheduler {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let monitor =
            DriftMonitor::new(FleetAssessor::new(engine, FleetConfig::with_workers(workers)));
        FleetScheduler::new(monitor, SimClock::starting(2022, 1))
    }

    /// A provider-backed scheduler: one West Europe region over a shared
    /// registry, with the DB production route.
    fn rolled_scheduler(workers: usize) -> (FleetScheduler, Arc<RefreshableCatalogProvider>) {
        let provider = Arc::new(RefreshableCatalogProvider::new(Arc::new(
            InMemoryCatalogProvider::production().with_region(
                Region::new("westeurope"),
                CatalogVersion::INITIAL,
                &CatalogSpec::default(),
                1.08,
            ),
        )));
        let registry = Arc::new(EngineRegistry::new(
            Arc::clone(&provider) as Arc<dyn doppler_catalog::CatalogProvider>
        ));
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(workers))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let scheduler =
            FleetScheduler::new(DriftMonitor::new(assessor), SimClock::starting(2022, 1))
                .with_provider(Arc::clone(&provider));
        (scheduler, provider)
    }

    #[test]
    fn clock_labels_follow_the_ledger_convention() {
        let mut clock = SimClock::starting(2021, 11);
        assert_eq!(clock.label(), "Nov-21");
        clock.advance();
        assert_eq!(clock.label(), "Dec-21");
        clock.advance();
        assert_eq!(clock.label(), "Jan-22");
        assert_eq!(clock.year(), 2022);
        assert_eq!(SimClock::starting(2024, 12).label(), "Dec-24");
        assert_eq!(SimClock::starting(2024, 99).label(), "Dec-24", "month clamps");
    }

    #[test]
    fn scheduled_drift_is_caught_in_the_arrival_month() {
        let mut sim = simple_scheduler(2);
        sim.onboard_at(0, MonitoredCustomer::new("c", DeploymentType::SqlDb, window(0.5, 96)));
        sim.telemetry_at(2, "c", window(7.0, 96));
        let months = sim.run(4);
        assert_eq!(
            months.iter().map(|m| m.pass.report.drifted).collect::<Vec<_>>(),
            [0, 0, 1, 0],
            "drift lands exactly in the telemetry month"
        );
        assert_eq!(months[2].label, "Mar-22");
        assert_eq!(months[2].pass.reassessments.len(), 1);
        let summary = sim.summary();
        assert_eq!(summary.sim_months(), 4);
        assert_eq!(summary.drift_checks, 1);
        assert_eq!(summary.drift_detected, 1);
        assert_eq!(summary.reassessments, 1);
        assert_eq!(summary.customers_onboarded, 1);
        assert_eq!(summary.telemetry_windows, 1);
    }

    #[test]
    fn scheduled_feed_rolls_and_reprices_in_its_month() {
        let (mut sim, provider) = rolled_scheduler(2);
        let west = Region::new("westeurope");
        let key = CatalogKey::production(DeploymentType::SqlDb).in_region(west.clone());
        sim.onboard_at(
            0,
            MonitoredCustomer::new("pin", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(key),
        );
        // Train the pinned engine in month 0 so the roll has something to
        // retire.
        sim.telemetry_at(0, "pin", window(0.5, 48));
        sim.feed_at(1, west, PriceFeed::Multiplier(0.9));
        let months = sim.run(3);
        assert_eq!(months[0].rolls.len(), 0);
        assert_eq!(months[1].feeds, 1);
        assert_eq!(months[1].rolls.len(), 2, "both deployments of the region rolled");
        let db_roll = months[1].rolls.iter().find(|r| r.repriced.len() == 1).unwrap();
        assert_eq!(&*db_roll.repriced[0].instance_name, "pin");
        assert_eq!(db_roll.reprice_failures, 0);
        assert_eq!(months[2].rolls.len(), 0, "the cursor never replays a roll");
        assert_eq!(provider.rolls(), 2);
        assert_eq!(sim.monitor().roll_cursor(), 2);
        assert_eq!(sim.summary().rolls_dispatched, 2);
        assert_eq!(sim.summary().customers_repriced, 1);
        let ledger = sim.monitor().ledger();
        assert_eq!(ledger.month("Feb-22").unwrap().customers_repriced, 1);
    }

    #[test]
    fn idle_ttl_unwatches_and_version_window_retires() {
        // Two regions: West Europe rolls (its superseded engines retire
        // with each roll), North Europe never does — its v1 engine can
        // only age out through the *version window*.
        let provider = Arc::new(RefreshableCatalogProvider::new(Arc::new(
            InMemoryCatalogProvider::production()
                .with_region(
                    Region::new("westeurope"),
                    CatalogVersion::INITIAL,
                    &CatalogSpec::default(),
                    1.08,
                )
                .with_region(
                    Region::new("northeurope"),
                    CatalogVersion::INITIAL,
                    &CatalogSpec::default(),
                    1.02,
                ),
        )));
        let registry = Arc::new(EngineRegistry::new(
            Arc::clone(&provider) as Arc<dyn doppler_catalog::CatalogProvider>
        ));
        let assessor = FleetAssessor::over_registry(registry, FleetConfig::with_workers(2))
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)));
        let mut sim = FleetScheduler::new(DriftMonitor::new(assessor), SimClock::starting(2022, 1))
            .with_provider(Arc::clone(&provider))
            .with_idle_ttl(2)
            .with_version_window(1);

        let west = Region::new("westeurope");
        let west_key = CatalogKey::production(DeploymentType::SqlDb).in_region(west.clone());
        let north_key =
            CatalogKey::production(DeploymentType::SqlDb).in_region(Region::new("northeurope"));
        sim.onboard_at(
            0,
            MonitoredCustomer::new("keeper", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(west_key),
        );
        sim.onboard_at(
            0,
            MonitoredCustomer::new("north", DeploymentType::SqlDb, window(0.5, 48))
                .with_catalog_key(north_key),
        );
        sim.onboard_at(0, MonitoredCustomer::new("ghost", DeploymentType::SqlDb, window(0.5, 48)));
        // The keeper reports telemetry every month; north only the first
        // two; the ghost never does.
        for m in 0..4 {
            sim.telemetry_at(m, "keeper", window(0.5, 48));
        }
        sim.telemetry_at(0, "north", window(0.5, 48));
        sim.telemetry_at(1, "north", window(0.5, 48));
        // Two West Europe feeds → versions 2 and 3. With a window of 1,
        // the month-2 sweep floors the fleet at v2 and drops North
        // Europe's (never-rolled) v1 engine.
        sim.feed_at(1, west.clone(), PriceFeed::Multiplier(0.95));
        sim.feed_at(2, west, PriceFeed::Multiplier(0.95));
        let months = sim.run(4);

        assert!(months[0].retired_customers.is_empty());
        assert!(months[1].retired_customers.is_empty());
        assert_eq!(months[2].retired_customers, ["ghost"], "idle for 2 months -> unwatched");
        assert_eq!(months[3].retired_customers, ["north"], "telemetry stopped after month 2");
        assert_eq!(sim.monitor().watched(), 1);
        assert_eq!(sim.monitor().watched_names().collect::<Vec<_>>(), ["keeper"]);

        assert_eq!(months[0].retired_engines, 0, "frontier still at v1");
        assert_eq!(months[1].retired_engines, 0, "window 1 keeps v1 while frontier is v2");
        assert_eq!(months[2].retired_engines, 1, "north's v1 engine aged out at frontier v3");
        assert_eq!(sim.summary().customers_retired, 2);
        assert_eq!(sim.summary().engines_retired, 1);
    }

    #[test]
    fn scheduled_challenger_promotes_after_the_policy_streak() {
        use crate::ab::{AbFleet, PromotionPolicy, RolloutEvent, RolloutStage};

        let engine = || {
            DopplerEngine::untrained(
                azure_paas_catalog(&CatalogSpec::default()),
                EngineConfig::production(DeploymentType::SqlDb),
            )
        };
        // An identical challenger agrees 100% with zero savings — which
        // clears the default policy's bar (any non-negative savings).
        let ab = AbFleet::new(
            FleetAssessor::new(engine(), FleetConfig::with_workers(2)),
            FleetAssessor::new(engine(), FleetConfig::with_workers(2)),
        );
        let mut sim = simple_scheduler(2).with_challenger(ab, PromotionPolicy::default());
        sim.onboard_at(0, MonitoredCustomer::new("c", DeploymentType::SqlDb, window(0.5, 96)));
        for m in 0..4 {
            sim.telemetry_at(m, "c", window(0.5, 96));
        }
        let months = sim.run(4);

        assert_eq!(
            months.iter().map(|m| m.rollout).collect::<Vec<_>>(),
            [RolloutEvent::None, RolloutEvent::None, RolloutEvent::Promoted, RolloutEvent::None],
            "three qualifying months promote in the third"
        );
        let ab_summary = months[2].ab.as_ref().expect("A/B pass ran");
        assert_eq!(ab_summary.paired, 1);
        assert_eq!(ab_summary.agreement_rate(), Some(1.0));
        assert_eq!(sim.rollout_stage(), Some(RolloutStage::Promoted));
        assert_eq!(sim.rollout().unwrap().promoted_month(), Some("Mar-22"));

        let summary = sim.summary().clone();
        assert_eq!(summary.ab_months, 4);
        assert_eq!(summary.promotions, 1);
        assert_eq!(summary.demotions, 0);
        assert_eq!(summary.promoted_month.as_deref(), Some("Mar-22"));
        assert_eq!(summary.months[2].rollout, RolloutEvent::Promoted);
        assert_eq!(summary.months[2].ab_agreement, Some(1.0));

        // The promotion survives the JSON round trip and the rendering.
        let json = schedule_summary_to_json(&summary);
        let back = schedule_summary_from_json(&Json::parse(&json.render_pretty()).unwrap());
        assert_eq!(back.as_ref(), Some(&summary), "lossless round-trip");
        let report = sim.shutdown();
        let rendered = report.render();
        assert!(rendered.contains("challenger promoted in Mar-22"), "{rendered}");
        assert!(rendered.contains("staged rollout: 4 A/B month(s), 1 promotion(s)"), "{rendered}");
    }

    #[test]
    fn schedulers_without_a_challenger_never_run_ab_passes() {
        let mut sim = simple_scheduler(2);
        sim.onboard_at(0, MonitoredCustomer::new("c", DeploymentType::SqlDb, window(0.5, 96)));
        sim.run(2);
        assert_eq!(sim.rollout_stage(), None);
        assert_eq!(sim.summary().ab_months, 0);
        assert!(sim.summary().months.iter().all(|r| r.ab_cohort == 0 && r.ab_agreement.is_none()));
        let rendered = sim.shutdown().render();
        assert!(!rendered.contains("staged rollout"), "{rendered}");
    }

    #[test]
    fn paused_runs_equal_straight_runs() {
        let run = |pauses: &[usize]| {
            let mut sim = simple_scheduler(2);
            for i in 0..6 {
                sim.onboard_at(
                    i % 2,
                    MonitoredCustomer::new(format!("c{i}"), DeploymentType::SqlDb, window(0.5, 48)),
                );
                sim.telemetry_at(2 + i % 3, format!("c{i}"), window(7.0, 48));
            }
            for &chunk in pauses {
                sim.run(chunk);
            }
            let summary = sim.summary().clone();
            let ledger = sim.monitor().ledger().clone();
            (summary, ledger)
        };
        let straight = run(&[6]);
        assert_eq!(run(&[3, 3]), straight);
        assert_eq!(run(&[1, 2, 2, 1]), straight);
    }

    #[test]
    fn summary_rides_the_final_report_and_round_trips_json() {
        let mut sim = simple_scheduler(2);
        sim.onboard_at(0, MonitoredCustomer::new("c", DeploymentType::SqlDb, window(0.5, 96)));
        sim.telemetry_at(1, "c", window(7.0, 96));
        sim.run(2);
        let summary = sim.summary().clone();
        let report = sim.shutdown();
        assert_eq!(report.schedule.as_ref(), Some(&summary));
        assert_eq!(report.fleet_size, 1, "the drift re-assessment went through the service");
        let rendered = report.render();
        assert!(rendered.contains("Simulation schedule"), "{rendered}");
        assert!(rendered.contains("Jan-22"), "{rendered}");

        let json = schedule_summary_to_json(&summary);
        let text = json.render_pretty();
        let parsed = Json::parse(&text).expect("exported JSON re-parses");
        let back = schedule_summary_from_json(&parsed).expect("structurally sound");
        assert_eq!(back, summary, "lossless round-trip");
    }
}
