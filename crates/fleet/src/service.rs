//! The streaming fleet front-end: a long-lived, submission-based service
//! over the worker pool.
//!
//! The paper frames Doppler as an ongoing pipeline — DMA "receives hundreds
//! of assessment requests daily", not one batch a quarter — so the serving
//! layer should accept requests continuously. [`FleetService`] is that
//! front-end:
//!
//! * [`submit`](FleetService::submit) /
//!   [`submit_all`](FleetService::submit_all) enqueue assessment requests
//!   at any time (blocking only on the bounded queue's backpressure) and
//!   hand back a [`Ticket`] per request;
//! * a pool of long-lived worker threads pops from the shared
//!   [`BoundedQueue`], routes each request through the per-deployment
//!   engine set, and delivers the result to its ticket;
//! * every completion is also folded — in submission order — into a
//!   [`FleetAggregator`], so [`report_snapshot`](FleetService::report_snapshot)
//!   yields a mid-run [`FleetReport`] a dashboard can render while results
//!   are still streaming in;
//! * [`shutdown`](FleetService::shutdown) (or `Drop`) closes the queues,
//!   lets the workers drain every accepted request, and joins them —
//!   dropping a service with in-flight tickets never deadlocks, and the
//!   buffered results stay receivable from the tickets afterwards.
//!
//! # Sharding
//!
//! The service scales out by *sharding*: a [`ShardPlan`] (set via
//! [`FleetAssessor::with_shard_plan`]) partitions the fleet by catalog-key
//! region into N independent shards, each with its own bounded queue,
//! worker pool, and in-order aggregator. Shards share nothing on the hot
//! path — no cross-shard lock is ever taken while assessing — so regional
//! traffic bursts stay on their own queue and a noisy region cannot stall
//! the rest of the fleet.
//!
//! Determinism survives the fan-out. Every submission takes one *global*
//! index (submission order across the whole service — what
//! [`FleetResult::index`] reports) and one *shard-local* index the shard's
//! reorder buffer sequences on, both allocated atomically under the owning
//! shard's progress lock. Each shard folds its completions in local
//! submission order, and [`report_snapshot`](FleetService::report_snapshot) /
//! [`shutdown`](FleetService::shutdown) merge the per-shard aggregates in
//! shard-index order with [`FleetAggregator::merge`] — which is exact
//! (superaccumulator cost totals) and order-insensitive, so a sharded run
//! reports bit-for-bit what the unsharded run reports. With the default
//! single-shard plan the service *is* the unsharded service: same metric
//! names, same thread names, same behavior.
//!
//! [`AssessmentService`] — the DMA batch API from the seed — lives here too
//! as a thin wrapper: one deployment target, `Arc`-shared pipeline, each
//! `assess_batch` call a submit-all/collect-all round trip through the same
//! worker pool. The old atomic-counter thread fan-out it used to carry is
//! gone; there is exactly one worker-pool implementation in the workspace.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use doppler_catalog::DeploymentType;
use doppler_dma::{AdoptionLedger, AssessmentRequest, AssessmentResult, SkuRecommendationPipeline};
use doppler_obs::{Counter, Histogram, ObsRegistry, ObsSnapshot};

use crate::assessor::{EngineSet, FleetAssessor, FleetConfig, FleetRequest, FleetResult};
use crate::drift::{DriftOutcome, DriftProbe};
use crate::queue::BoundedQueue;
use crate::report::{FleetAggregator, FleetReport, ResultDigest};
use crate::shard::ShardPlan;

/// How many tasks a worker drains from its shard queue per lock
/// acquisition. Batching amortizes the queue's lock/condvar traffic under
/// a deep backlog without hurting latency — [`BoundedQueue::pop_many`]
/// never waits to *fill* a batch, it takes what is there.
const POP_QUANTUM: usize = 8;

/// One enqueued unit of work for a shard's pool: an assessment request
/// (its submission indices, the routed request, and the channel its result
/// is delivered on) or a drift check (which stays out of the assessment
/// aggregate — the [`DriftMonitor`](crate::drift::DriftMonitor) folds its
/// own outcomes).
enum Task {
    Assess {
        /// Service-wide submission index — what [`FleetResult::index`]
        /// carries.
        global: usize,
        /// Gap-free index within the owning shard — what the shard's
        /// reorder buffer sequences on.
        local: usize,
        request: FleetRequest,
        reply: mpsc::Sender<FleetResult>,
        /// Submission instant, for the queue-wait stage histogram. `None`
        /// when observability is disabled — the no-op mode never reads the
        /// clock.
        enqueued: Option<Instant>,
    },
    Drift {
        index: usize,
        probe: DriftProbe,
        reply: mpsc::Sender<DriftOutcome>,
        enqueued: Option<Instant>,
    },
}

/// One shard's write-aside instrumentation: per-stage latency histograms
/// shared by that shard's workers. All handles are no-ops under a
/// disabled registry.
struct StageObs {
    /// `{prefix}.stage.queue_wait` — submit → worker pop, assessments.
    queue_wait: Histogram,
    /// `{prefix}.stage.aggregate` — folding one result into the in-order
    /// aggregate (includes the progress-lock wait).
    aggregate: Histogram,
    /// `{prefix}.stage.drift_wait` — submit → worker pop, drift checks.
    drift_wait: Histogram,
    /// `{prefix}.stage.drift_probe` — evaluating one drift probe.
    drift_probe: Histogram,
}

impl StageObs {
    fn registered(registry: &ObsRegistry, prefix: &str) -> StageObs {
        StageObs {
            queue_wait: registry.histogram(&format!("{prefix}.stage.queue_wait")),
            aggregate: registry.histogram(&format!("{prefix}.stage.aggregate")),
            drift_wait: registry.histogram(&format!("{prefix}.stage.drift_wait")),
            drift_probe: registry.histogram(&format!("{prefix}.stage.drift_probe")),
        }
    }
}

/// The metric/thread name prefix for one shard. A single-shard service
/// keeps the historical flat names (`fleet.queue`, `fleet.stage.*`,
/// `fleet-worker-N`) so the default plan is observably identical to the
/// pre-sharding service; multi-shard services label per shard.
fn shard_prefix(shards: usize, shard: usize) -> String {
    if shards == 1 {
        "fleet".to_string()
    } else {
        format!("fleet.shard{shard}")
    }
}

/// One independent shard: its queue, its reorder/aggregation state, and
/// its stage histograms. Workers of shard `s` touch only `shards[s]` —
/// nothing here is shared across shards.
struct Shard {
    queue: BoundedQueue<Task>,
    progress: Mutex<Progress>,
    stages: StageObs,
}

/// Everything the worker threads share with the front-end handle.
struct ServiceShared {
    shards: Vec<Shard>,
    engines: EngineSet,
    plan: ShardPlan,
    /// Service-wide submission indices handed out so far. Incremented
    /// under the owning shard's progress lock (never contended across
    /// shards for longer than the atomic itself), so a single-threaded
    /// submitter sees global indices in exact call order regardless of
    /// the plan.
    submitted_global: AtomicUsize,
    /// Drift checks submitted so far — a separate sequence from the
    /// assessment submission indices, since drift work never enters the
    /// assessment aggregate.
    drift_submitted: AtomicUsize,
    obs: ObsRegistry,
}

/// One shard's submission/completion tracking: allocates the shard-local
/// indices, restores local submission order over the out-of-order
/// completion stream, and folds each result into the shard's aggregator
/// the moment it becomes in-order. Out-of-orderness is bounded by queue
/// depth + worker count, so the reorder buffer stays small regardless of
/// fleet size.
///
/// Everything lives under one mutex so [`FleetService::progress`] reads a
/// consistent per-shard snapshot, and that mutex is never held across the
/// queue's blocking backpressure wait — an allocated index whose push then
/// loses to a concurrent close is recorded as a tombstone (`None` in
/// `pending`) so the in-order cursor skips it instead of stalling forever.
struct Progress {
    /// Local indices handed out so far (the next submission gets this
    /// value).
    allocated: usize,
    /// Allocated indices whose enqueue failed (service closed mid-submit).
    abandoned: usize,
    next: usize,
    /// Early arrivals keyed by local index, digested down to the fields
    /// the aggregator reads (the full result travels on the ticket instead
    /// of being deep-cloned here); `None` marks an abandoned index.
    pending: BTreeMap<usize, Option<ResultDigest>>,
    aggregator: FleetAggregator,
    completed: usize,
}

impl Progress {
    fn new() -> Progress {
        Progress {
            allocated: 0,
            abandoned: 0,
            next: 0,
            pending: BTreeMap::new(),
            aggregator: FleetAggregator::new(),
            completed: 0,
        }
    }

    fn allocate(&mut self) -> usize {
        let index = self.allocated;
        self.allocated += 1;
        index
    }

    /// Requests actually accepted into the queue (allocations whose push
    /// did not fail).
    fn submitted(&self) -> usize {
        self.allocated - self.abandoned
    }

    /// Fold `result` (completed under shard-local index `local`) in.
    /// In-order results fold immediately; early arrivals are buffered — as
    /// digests, not full-result clones — until the gap before them fills.
    fn accept(&mut self, local: usize, result: &FleetResult) {
        self.completed += 1;
        if local == self.next {
            self.aggregator.accept(result);
            self.next += 1;
            self.drain_ready();
        } else {
            debug_assert!(local > self.next, "each submission index completes once");
            self.pending.insert(local, Some(ResultDigest::of(result)));
        }
    }

    /// Mark an allocated index as never-enqueued so in-order aggregation
    /// steps over it.
    fn abandon(&mut self, index: usize) {
        self.abandoned += 1;
        if index == self.next {
            self.next += 1;
            self.drain_ready();
        } else {
            self.pending.insert(index, None);
        }
    }

    fn drain_ready(&mut self) {
        while let Some(entry) = self.pending.remove(&self.next) {
            if let Some(digest) = entry {
                self.aggregator.accept_digest(&digest);
            }
            self.next += 1;
        }
    }
}

fn lock_progress(shard: &Shard) -> std::sync::MutexGuard<'_, Progress> {
    // A worker that panicked mid-assessment is already contained by
    // `EngineSet::assess_one`; tolerate a poisoned lock rather than
    // cascading panics through shutdown and snapshots.
    shard.progress.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard worker: drain the shard's queue in [`POP_QUANTUM`]-sized
/// batches until it closes. The batch `Vec` is allocated once per worker
/// and reused across its whole lifetime — steady-state popping allocates
/// nothing.
fn worker_loop(shared: &ServiceShared, shard_index: usize, tasks: &Counter) {
    let shard = &shared.shards[shard_index];
    let mut batch = Vec::with_capacity(POP_QUANTUM);
    while shard.queue.pop_many(POP_QUANTUM, &mut batch) > 0 {
        for task in batch.drain(..) {
            tasks.incr();
            match task {
                Task::Assess { global, local, request, reply, enqueued } => {
                    if let Some(enqueued) = enqueued {
                        shard.stages.queue_wait.record(enqueued.elapsed());
                    }
                    let result = shared.engines.assess_one(global, request);
                    {
                        let _span = shard.stages.aggregate.start();
                        lock_progress(shard).accept(local, &result);
                    }
                    // The submitter may have dropped its ticket; that just
                    // means nobody is listening, not that the work failed.
                    let _ = reply.send(result);
                }
                Task::Drift { index, probe, reply, enqueued } => {
                    if let Some(enqueued) = enqueued {
                        shard.stages.drift_wait.record(enqueued.elapsed());
                    }
                    // Drift checks bypass the Progress fold entirely: they
                    // are not assessments, so they must not perturb the
                    // in-order assessment aggregate (or its determinism).
                    let _span = shard.stages.drift_probe.start();
                    let outcome = crate::drift::evaluate_probe(&shared.engines, index, probe);
                    drop(_span);
                    let _ = reply.send(outcome);
                }
            }
        }
    }
}

/// A claim on one submitted request's eventual [`FleetResult`].
///
/// Each ticket owns a private channel the worker delivers into, so results
/// remain receivable even after the service itself has been shut down or
/// dropped. Dropping a ticket is fine — the assessment still runs and still
/// counts toward the service's aggregate report.
#[derive(Debug)]
pub struct Ticket {
    index: usize,
    instance_name: String,
    rx: mpsc::Receiver<FleetResult>,
}

impl Ticket {
    /// The submission index this ticket resolves to ([`FleetResult::index`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The instance the request named, for labelling dashboards.
    pub fn instance_name(&self) -> &str {
        &self.instance_name
    }

    /// Block until the result is ready. Returns `None` only if the service
    /// was torn down before the request was assessed — which a normal
    /// [`FleetService::shutdown`]/`Drop` never does, since both drain the
    /// queue first.
    pub fn recv(self) -> Option<FleetResult> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll: `Some` exactly once, when the result has been
    /// delivered; `None` while it is still in flight.
    pub fn try_recv(&mut self) -> Option<FleetResult> {
        self.rx.try_recv().ok()
    }
}

/// A claim on one submitted drift check's eventual [`DriftOutcome`] —
/// the drift-lane sibling of [`Ticket`], with the same delivery contract
/// (results survive service shutdown; dropping the ticket is fine).
#[derive(Debug)]
pub struct DriftTicket {
    index: usize,
    customer: String,
    rx: mpsc::Receiver<DriftOutcome>,
}

impl DriftTicket {
    /// The drift-check submission index ([`DriftOutcome::index`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The customer the probe named.
    pub fn customer(&self) -> &str {
        &self.customer
    }

    /// Block until the outcome is ready. `None` only if the service died
    /// before running the check (not reachable through a normal
    /// shutdown/drop, which drain the queue first).
    pub fn recv(self) -> Option<DriftOutcome> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll: `Some` exactly once, when the outcome lands.
    pub fn try_recv(&mut self) -> Option<DriftOutcome> {
        self.rx.try_recv().ok()
    }
}

/// A FIFO of outstanding [`Ticket`]s with front-first draining — the
/// bookkeeping every streaming caller otherwise rewrites by hand: push each
/// ticket as you submit, pull completed results in submission order with
/// [`try_next`](TicketQueue::try_next) while feeding, then block out the
/// tail with [`next_blocking`](TicketQueue::next_blocking). Interleaving
/// the two keeps the outstanding window bounded by the service's queue
/// depth + worker count.
#[derive(Debug, Default)]
pub struct TicketQueue {
    tickets: VecDeque<Ticket>,
}

impl TicketQueue {
    pub fn new() -> TicketQueue {
        TicketQueue { tickets: VecDeque::new() }
    }

    /// Append a freshly submitted ticket.
    pub fn push(&mut self, ticket: Ticket) {
        self.tickets.push_back(ticket);
    }

    /// Tickets still queued (resolved ones are removed as they drain).
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// The next in-submission-order result if it is already available,
    /// without blocking. A ticket whose service died before assessing it
    /// (not reachable through normal shutdown) is discarded rather than
    /// wedging the queue.
    pub fn try_next(&mut self) -> Option<FleetResult> {
        loop {
            let front = self.tickets.front_mut()?;
            match front.rx.try_recv() {
                Ok(result) => {
                    self.tickets.pop_front();
                    return Some(result);
                }
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.tickets.pop_front();
                }
            }
        }
    }

    /// Block for the next in-submission-order result; `None` once every
    /// queued ticket has drained (lost tickets are skipped, as in
    /// [`try_next`](TicketQueue::try_next)).
    pub fn next_blocking(&mut self) -> Option<FleetResult> {
        while let Some(ticket) = self.tickets.pop_front() {
            if let Some(result) = ticket.recv() {
                return Some(result);
            }
        }
        None
    }
}

/// Point-in-time counters for a running service: `submitted`, `completed`,
/// and `aggregated`. All fields are read under one lock, so they are
/// mutually consistent (`completed` never exceeds `submitted`, `aggregated`
/// never exceeds `completed`); workers keep completing the moment the lock
/// is released, of course.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProgress {
    /// Requests accepted by [`FleetService::submit`] so far.
    pub submitted: usize,
    /// Requests fully assessed so far.
    pub completed: usize,
    /// Completed results already folded into the snapshot aggregate (the
    /// in-submission-order prefix; trails `completed` by at most the
    /// out-of-order window).
    pub aggregated: usize,
}

impl ServiceProgress {
    /// Submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.submitted - self.completed
    }
}

/// The long-lived streaming front-end over the fleet worker pool. See the
/// [module docs](crate::service) for the lifecycle.
pub struct FleetService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl FleetService {
    /// Spin up the worker pool of an assessor's engine set. Equivalent to
    /// [`FleetAssessor::into_service`].
    pub fn new(assessor: FleetAssessor) -> FleetService {
        assessor.into_service()
    }

    pub(crate) fn from_parts(
        engines: EngineSet,
        config: FleetConfig,
        plan: ShardPlan,
        obs: ObsRegistry,
    ) -> FleetService {
        let nshards = plan.shards();
        let shards = (0..nshards)
            .map(|s| {
                let prefix = shard_prefix(nshards, s);
                Shard {
                    queue: BoundedQueue::instrumented(
                        config.queue_depth,
                        &obs,
                        &format!("{prefix}.queue"),
                    ),
                    progress: Mutex::new(Progress::new()),
                    stages: StageObs::registered(&obs, &prefix),
                }
            })
            .collect();
        let shared = Arc::new(ServiceShared {
            shards,
            engines,
            plan,
            submitted_global: AtomicUsize::new(0),
            drift_submitted: AtomicUsize::new(0),
            obs,
        });
        // Each shard gets its own pool of `config.workers` threads —
        // worker/queue sizing is per shard, so a plan with more shards
        // scales the pool out.
        let workers = (0..nshards)
            .flat_map(|s| (0..config.workers.max(1)).map(move |i| (s, i)))
            .map(|(s, i)| {
                let shared = Arc::clone(&shared);
                let (counter_name, thread_name) = if nshards == 1 {
                    (format!("fleet.worker.{i}.tasks"), format!("fleet-worker-{i}"))
                } else {
                    (format!("fleet.shard{s}.worker.{i}.tasks"), format!("fleet-s{s}-worker-{i}"))
                };
                let tasks = shared.obs.counter(&counter_name);
                std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || worker_loop(&shared, s, &tasks))
                    .expect("spawn fleet worker")
            })
            .collect();
        FleetService { shared, workers }
    }

    /// The shard a request routes to under this service's plan.
    fn shard_for(&self, request: &FleetRequest) -> &Shard {
        let s = self.shared.plan.shard_of(request.catalog_key.as_ref().map(|k| &k.region));
        &self.shared.shards[s]
    }

    /// Enqueue one request, blocking while its shard's bounded queue is at
    /// capacity (backpressure, not unbounded buffering). Requests flagged
    /// [`FleetRequest::with_priority`] enter the queue's priority lane and
    /// are popped ahead of the normal backlog — their *aggregation* still
    /// happens in submission order, so reports stay deterministic. Returns
    /// the request back as `Err` if the service has been
    /// [`close`](FleetService::close)d.
    // The Err variant is deliberately the rejected request itself — same
    // contract as `BoundedQueue::push` — so a caller can reroute it to
    // another service without having cloned it up front.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: FleetRequest) -> Result<Ticket, FleetRequest> {
        let (reply, rx) = mpsc::channel();
        let instance_name = request.request.instance_name.clone();
        let index = self.submit_with_reply(request, reply)?;
        Ok(Ticket { index, instance_name, rx })
    }

    /// [`submit`](FleetService::submit) with a caller-supplied delivery
    /// channel instead of a fresh [`Ticket`] — the allocation-lean path
    /// for high-volume streaming: clone one `Sender` per submission (a
    /// refcount bump) rather than building a channel pair each. Returns
    /// the request's submission index ([`FleetResult::index`]); batch
    /// collectors sort received results by it to restore submission order.
    /// Dropping the receiver is fine — the assessments still run and still
    /// count toward the aggregate report.
    #[allow(clippy::result_large_err)]
    pub fn submit_with_reply(
        &self,
        request: FleetRequest,
        reply: mpsc::Sender<FleetResult>,
    ) -> Result<usize, FleetRequest> {
        let shard = self.shard_for(&request);
        let priority = request.priority;
        // Allocate both indices in one short critical section — the
        // progress lock must not be held across the queue's backpressure
        // wait, or every dashboard poll would stall with the feeder.
        // Taking the global index *under the shard lock* keeps the pair
        // atomic: no other submission to this shard can interleave between
        // them, so local order always agrees with global order within a
        // shard (what sharded ≡ unsharded equivalence rests on).
        let (global, local) = {
            let mut progress = lock_progress(shard);
            let local = progress.allocate();
            let global = self.shared.submitted_global.fetch_add(1, Ordering::Relaxed);
            (global, local)
        };
        let enqueued = self.shared.obs.is_enabled().then(Instant::now);
        let task = Task::Assess { global, local, request, reply, enqueued };
        let pushed =
            if priority { shard.queue.push_priority(task) } else { shard.queue.push(task) };
        match pushed {
            Ok(()) => Ok(global),
            Err(Task::Assess { request, .. }) => {
                // The push lost to a concurrent close: tombstone the local
                // index so in-order aggregation steps over it.
                lock_progress(shard).abandon(local);
                Err(request)
            }
            Err(Task::Drift { .. }) => unreachable!("an assess push returns an assess task"),
        }
    }

    /// Enqueue one drift check on the normal lane (monitoring sweeps are
    /// background work; it is the *re-assessment* of a drifted customer
    /// that jumps the queue). The probe routes to the shard of its
    /// [`catalog_key`](DriftProbe::catalog_key) region — the same shard
    /// its re-assessment would use. Drift checks share that shard's worker
    /// pool and backpressure but never enter the assessment aggregate —
    /// collect the outcome from the returned [`DriftTicket`]. Returns the
    /// probe back as `Err` if the service has been closed.
    #[allow(clippy::result_large_err)]
    pub fn submit_drift(&self, probe: DriftProbe) -> Result<DriftTicket, DriftProbe> {
        let (reply, rx) = mpsc::channel();
        let customer = probe.customer.clone();
        let s = self.shared.plan.shard_of(probe.catalog_key.as_ref().map(|k| &k.region));
        let shard = &self.shared.shards[s];
        let index = self.shared.drift_submitted.fetch_add(1, Ordering::Relaxed);
        let enqueued = self.shared.obs.is_enabled().then(Instant::now);
        match shard.queue.push(Task::Drift { index, probe, reply, enqueued }) {
            Ok(()) => Ok(DriftTicket { index, customer, rx }),
            Err(Task::Drift { probe, .. }) => Err(probe),
            Err(Task::Assess { .. }) => unreachable!("a drift push returns a drift task"),
        }
    }

    /// Enqueue a whole stream of requests (lazily, with the same
    /// backpressure as [`submit`](FleetService::submit)), returning one
    /// ticket per request. On a closed service the rejected request comes
    /// back as `Err`; requests already submitted keep their tickets with
    /// the workers.
    #[allow(clippy::result_large_err)]
    pub fn submit_all<I>(&self, fleet: I) -> Result<Vec<Ticket>, FleetRequest>
    where
        I: IntoIterator<Item = FleetRequest>,
    {
        let mut tickets = Vec::new();
        for request in fleet {
            tickets.push(self.submit(request)?);
        }
        Ok(tickets)
    }

    /// The shared [`EngineRegistry`](doppler_core::EngineRegistry) this
    /// service resolves keyed requests through, when it was built over one
    /// ([`FleetAssessor::over_registry`]). Fleet operators reach through
    /// this on catalog rolls — retire the superseded key, read the
    /// training-economy counters.
    pub fn registry(&self) -> Option<&Arc<doppler_core::EngineRegistry>> {
        self.shared.engines.registry()
    }

    /// The observability registry this service (and its queue, engine set,
    /// and any [`DriftMonitor`](crate::drift::DriftMonitor) over it) record
    /// into. Disabled unless the service was built via
    /// [`FleetAssessor::with_obs`].
    pub fn obs(&self) -> &ObsRegistry {
        &self.shared.obs
    }

    /// The number of shards this service runs ([`ShardPlan::shards`]).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The plan routing submissions to shards.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// A point-in-time [`ObsSnapshot`] of every metric recorded so far —
    /// shorthand for `self.obs().snapshot()`. Render it with
    /// [`ObsSnapshot::render`] or append it to a report via
    /// [`FleetReport::render_with_ops`](crate::report::FleetReport::render_with_ops).
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.shared.obs.snapshot()
    }

    /// Items currently queued across both lanes of every shard (racy by
    /// nature; for dashboards).
    pub fn queue_len(&self) -> usize {
        self.shared.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Items currently waiting in the priority lanes across shards.
    pub fn queue_priority_len(&self) -> usize {
        self.shared.shards.iter().map(|s| s.queue.priority_len()).sum()
    }

    /// Current submission/completion counters. Each shard is read as one
    /// consistent snapshot under its lock and the shards are summed in
    /// index order; with the default single-shard plan the whole read is
    /// one consistent snapshot, exactly as before.
    pub fn progress(&self) -> ServiceProgress {
        let mut total = ServiceProgress { submitted: 0, completed: 0, aggregated: 0 };
        for shard in &self.shared.shards {
            let progress = lock_progress(shard);
            total.submitted += progress.submitted();
            total.completed += progress.completed;
            total.aggregated += progress.aggregator.accepted();
        }
        total
    }

    /// A mid-run [`FleetReport`] over every completion that is part of
    /// each shard's contiguous submission-order prefix, merged across
    /// shards in shard-index order — the incremental dashboard view. Once
    /// the service is drained this is the final report; mid-run (single
    /// shard) it is always the exact report of the first
    /// [`ServiceProgress::aggregated`] submissions, so rendering it never
    /// shows a worker-count-dependent aggregate.
    ///
    /// Cost note: each per-shard clone under its lock is O(shard count +
    /// live attention rows), *not* O(results aggregated) — the
    /// aggregator's attention lists are chunked behind shared `Arc`s, so
    /// cloning shares the sealed chunks instead of copying every row.
    /// Hot-polling a dashboard stays cheap even over a fleet failing
    /// wholesale; the finishing work (sorting, report materialization)
    /// runs outside every lock.
    pub fn report_snapshot(&self) -> FleetReport {
        let mut merged = FleetAggregator::new();
        for shard in &self.shared.shards {
            // Clone the accumulator inside the lock (cheap — see above),
            // merge and finish outside it: workers delivering results
            // contend on this same mutex.
            let aggregator = lock_progress(shard).aggregator.clone();
            merged.merge(&aggregator);
        }
        merged.finish()
    }

    /// Finish and return the report of everything aggregated since the last
    /// drain (or service start), resetting every shard's accumulator — the
    /// billing-period rollover for continuous operation. Without periodic
    /// drains a service that runs forever grows its attention buckets (one
    /// row per failure, one name per unplaceable instance) forever;
    /// draining bounds the state to one period. Subsequent
    /// [`report_snapshot`](FleetService::report_snapshot)s and
    /// [`ServiceProgress::aggregated`] cover the new period only.
    pub fn drain_report(&self) -> FleetReport {
        let mut merged = FleetAggregator::new();
        for shard in &self.shared.shards {
            let aggregator = std::mem::take(&mut lock_progress(shard).aggregator);
            merged.merge(&aggregator);
        }
        merged.finish()
    }

    /// Stop accepting new submissions. Requests already queued still run;
    /// idle workers exit once their shard's queue drains.
    pub fn close(&self) {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
    }

    /// Whether [`close`](FleetService::close) has been called — after which
    /// every [`submit`](FleetService::submit) returns its request back.
    /// (Shard queues only ever close together.)
    pub fn is_closed(&self) -> bool {
        self.shared.shards[0].queue.is_closed()
    }

    /// Close, drain every accepted request, join the workers, and return
    /// the final aggregate report (of the current period, if
    /// [`drain_report`](FleetService::drain_report) was used), merged
    /// across shards in shard-index order.
    pub fn shutdown(mut self) -> FleetReport {
        self.join_workers();
        // Workers are joined: nothing else reads the aggregators, so
        // consume them instead of cloning.
        let mut merged = FleetAggregator::new();
        for shard in &self.shared.shards {
            let mut progress = lock_progress(shard);
            debug_assert!(progress.pending.is_empty(), "drained services have no reorder gap");
            let aggregator = std::mem::take(&mut progress.aggregator);
            merged.merge(&aggregator);
        }
        merged.finish()
    }

    fn join_workers(&mut self) {
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for handle in self.workers.drain(..) {
            // A worker that somehow panicked outside the per-assessment
            // catch still must not break teardown for the others.
            let _ = handle.join();
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// The DMA batch assessment service (§4, Table 1), now a thin wrapper over
/// [`FleetService`]: one deployment target, the pipeline shared via `Arc`
/// (no retraining), and the seed-visible `assess_batch` semantics — input
/// order preserved, a panicking assessment propagates to the caller —
/// provided by ticket round trips through the shared worker pool.
pub struct AssessmentService {
    service: FleetService,
    deployment: DeploymentType,
}

impl AssessmentService {
    /// A service over a pipeline with the given worker count (clamped to
    /// at least 1).
    pub fn new(pipeline: SkuRecommendationPipeline, workers: usize) -> AssessmentService {
        AssessmentService::over(Arc::new(pipeline), FleetConfig::with_workers(workers))
    }

    /// A service over an already-shared pipeline — the warm-start path for
    /// callers that run several services off one trained engine.
    pub fn over(
        pipeline: Arc<SkuRecommendationPipeline>,
        config: FleetConfig,
    ) -> AssessmentService {
        let deployment = pipeline.deployment();
        let service = FleetAssessor::from_pipeline(pipeline, config).into_service();
        AssessmentService { service, deployment }
    }

    /// Process a batch of requests in parallel, preserving input order in
    /// the output.
    ///
    /// Each request is cloned at submission: the seed API lends a slice,
    /// but the long-lived worker pool needs owned tasks. Callers for whom
    /// the telemetry copy matters should use
    /// [`assess_batch_owned`](AssessmentService::assess_batch_owned),
    /// which moves the requests instead.
    pub fn assess_batch(&self, requests: &[AssessmentRequest]) -> Vec<AssessmentResult> {
        self.run_batch(requests.iter().cloned())
    }

    /// The owned submission path: requests move straight into the worker
    /// pool's queue with no telemetry copies — a multi-week history costs
    /// one allocation for its whole service lifetime instead of one per
    /// batch submission.
    pub fn assess_batch_owned(
        &self,
        requests: impl IntoIterator<Item = AssessmentRequest>,
    ) -> Vec<AssessmentResult> {
        self.run_batch(requests.into_iter())
    }

    /// Process a batch and record it against a ledger month. Each assessed
    /// instance contributes one recommendation per curve point scored at
    /// 1.0 or, when none reach it, a single best-effort recommendation —
    /// matching DMA's behaviour of surfacing every eligible target (the
    /// counting rule shared with the fleet report's adoption ledger via
    /// [`eligible_recommendations`](crate::report::eligible_recommendations)).
    /// Counting reads this batch's own results, so concurrent batches on a
    /// shared service never contaminate each other's ledgers.
    pub fn assess_and_record(
        &self,
        month: &str,
        requests: &[AssessmentRequest],
        ledger: &mut AdoptionLedger,
    ) -> Vec<AssessmentResult> {
        let results = self.assess_batch(requests);
        record_batch(month, &results, ledger);
        results
    }

    /// Owned variant of
    /// [`assess_and_record`](AssessmentService::assess_and_record).
    pub fn assess_and_record_owned(
        &self,
        month: &str,
        requests: impl IntoIterator<Item = AssessmentRequest>,
        ledger: &mut AdoptionLedger,
    ) -> Vec<AssessmentResult> {
        let results = self.assess_batch_owned(requests);
        record_batch(month, &results, ledger);
        results
    }

    /// Submit-all/collect-all round trip through the shared worker pool;
    /// the single implementation behind every batch entry point. One
    /// channel serves the whole batch (a `Sender` clone per submission
    /// instead of a channel pair each); submission order is restored by
    /// sorting on the monotone submission index, so results come back in
    /// input order whatever the worker interleaving was.
    fn run_batch(
        &self,
        requests: impl Iterator<Item = AssessmentRequest>,
    ) -> Vec<AssessmentResult> {
        let (reply, rx) = mpsc::channel();
        let mut submitted = 0usize;
        for request in requests {
            self.service
                .submit_with_reply(FleetRequest::new(self.deployment, request), reply.clone())
                .unwrap_or_else(|_| unreachable!("the wrapper never closes its own service"));
            submitted += 1;
        }
        // Drop the batch's own sender so the receive loop ends exactly
        // when the last worker delivers (workers drop their clones as
        // they send).
        drop(reply);
        let mut results: Vec<FleetResult> = rx.into_iter().collect();
        debug_assert_eq!(results.len(), submitted, "every submission delivers exactly once");
        results.sort_by_key(|r| r.index);
        let results = results
            .into_iter()
            .map(|result| match result.outcome {
                Ok(result) => result,
                // The old fan-out let a panicking assessment unwind into
                // the caller; keep that contract rather than silently
                // dropping the instance from the batch.
                Err(e) => panic!("{}", e.message),
            })
            .collect();
        // The wrapper never exposes the fleet report, so reset the
        // aggregation each batch — a wrapper serving requests for months
        // must not accumulate attention buckets forever.
        let _ = self.service.drain_report();
        results
    }
}

fn record_batch(month: &str, results: &[AssessmentResult], ledger: &mut AdoptionLedger) {
    for r in results {
        ledger.record(
            month,
            r.databases_assessed,
            crate::report::eligible_recommendations(&r.recommendation),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_core::{DopplerEngine, EngineConfig};
    use doppler_telemetry::{PerfDimension, PerfHistory, TimeSeries};

    fn service(workers: usize) -> FleetService {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        FleetAssessor::new(engine, FleetConfig::with_workers(workers)).into_service()
    }

    fn request(name: &str, cpu: f64) -> FleetRequest {
        let history = PerfHistory::new()
            .with(PerfDimension::Cpu, TimeSeries::ten_minute(vec![cpu; 96]))
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]));
        FleetRequest::new(
            DeploymentType::SqlDb,
            AssessmentRequest::from_history(name, history, vec![], None),
        )
    }

    #[test]
    fn tickets_resolve_with_their_own_results() {
        let service = service(4);
        let tickets =
            service.submit_all((0..16).map(|i| request(&format!("inst-{i}"), 0.5))).unwrap();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.index(), i);
            assert_eq!(ticket.instance_name(), format!("inst-{i}"));
            let result = ticket.recv().expect("assessed");
            assert_eq!(result.index, i);
            assert_eq!(*result.instance_name, format!("inst-{i}"));
            assert!(result.outcome.is_ok());
        }
        let report = service.shutdown();
        assert_eq!(report.fleet_size, 16);
        assert_eq!(report.recommended, 16);
    }

    #[test]
    fn snapshot_is_an_exact_prefix_report() {
        let service = service(2);
        let tickets = service.submit_all((0..12).map(|i| request(&format!("s{i}"), 0.5))).unwrap();
        // Wait for everything, then snapshot: must equal the final report.
        let mut queue = TicketQueue::new();
        tickets.into_iter().for_each(|t| queue.push(t));
        let mut results = Vec::new();
        while results.len() < 12 {
            match queue.try_next() {
                Some(result) => results.push(result),
                None => std::thread::yield_now(),
            }
        }
        assert!(queue.is_empty());
        let snapshot = service.report_snapshot();
        assert_eq!(snapshot.fleet_size, 12);
        let final_report = service.shutdown();
        assert_eq!(snapshot, final_report);
    }

    #[test]
    fn progress_counters_track_the_run() {
        let service = service(2);
        assert_eq!(
            service.progress(),
            ServiceProgress { submitted: 0, completed: 0, aggregated: 0 }
        );
        let tickets = service.submit_all((0..8).map(|i| request(&format!("p{i}"), 0.5))).unwrap();
        assert_eq!(service.progress().submitted, 8);
        for t in tickets {
            t.recv().unwrap();
        }
        let progress = service.progress();
        assert_eq!(progress.completed, 8);
        assert_eq!(progress.in_flight(), 0);
        // Aggregation trails completion by at most the reorder window; by
        // the time every ticket resolved, the prefix must have caught up
        // eventually — shutdown proves it.
        assert_eq!(service.shutdown().fleet_size, 8);
    }

    #[test]
    fn submit_after_close_returns_the_request() {
        let service = service(1);
        assert!(!service.is_closed());
        service.close();
        assert!(service.is_closed());
        let rejected = service.submit(request("late", 0.5)).unwrap_err();
        assert_eq!(rejected.request.instance_name, "late");
        assert_eq!(service.progress().submitted, 0, "rejected submissions burn no index");
        assert_eq!(service.shutdown().fleet_size, 0);
    }

    #[test]
    fn drain_report_rolls_the_period_over() {
        let service = service(2);
        for t in service.submit_all((0..6).map(|i| request(&format!("p1-{i}"), 0.5))).unwrap() {
            t.recv().unwrap();
        }
        // Workers fold before delivering, so once every ticket resolved the
        // first period is fully aggregated.
        let first = service.drain_report();
        assert_eq!(first.fleet_size, 6);
        for t in service.submit_all((0..4).map(|i| request(&format!("p2-{i}"), 0.5))).unwrap() {
            t.recv().unwrap();
        }
        let second = service.shutdown();
        assert_eq!(second.fleet_size, 4, "the drained period does not leak into the next");
    }

    #[test]
    fn rejected_submissions_do_not_stall_aggregation() {
        let service = service(1);
        let tickets = service.submit_all((0..8).map(|i| request(&format!("r{i}"), 0.5))).unwrap();
        service.close();
        // Rejected while earlier submissions may still be in flight: the
        // tombstoned index must not wedge the in-order cursor, and the
        // consistent progress snapshot must not count it.
        assert!(service.submit(request("late", 0.5)).is_err());
        for ticket in tickets {
            ticket.recv().unwrap();
        }
        let progress = service.progress();
        assert_eq!(progress.submitted, 8);
        assert_eq!(progress.completed, 8);
        assert_eq!(progress.in_flight(), 0);
        assert_eq!(service.shutdown().fleet_size, 8);
    }

    #[test]
    fn dropping_the_service_with_inflight_tickets_joins_cleanly() {
        let service = service(2);
        let tickets = service.submit_all((0..24).map(|i| request(&format!("d{i}"), 0.5))).unwrap();
        // Drop the service while (potentially) none of the tickets have
        // been received: Drop closes the queue, drains the 24 accepted
        // requests, and joins — no deadlock, no panic, and the buffered
        // results stay receivable afterwards.
        drop(service);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let result = ticket.recv().expect("drained before join");
            assert_eq!(result.index, i);
            assert!(result.outcome.is_ok());
        }
    }

    #[test]
    fn dropping_tickets_first_never_wedges_the_workers() {
        let service = service(2);
        let tickets = service.submit_all((0..16).map(|i| request(&format!("t{i}"), 0.5))).unwrap();
        drop(tickets);
        // Workers deliver into dropped receivers (a no-op) and keep going;
        // the aggregate still counts every submission.
        let report = service.shutdown();
        assert_eq!(report.fleet_size, 16);
        assert_eq!(report.recommended, 16);
    }

    #[test]
    fn unroutable_submissions_resolve_to_error_outcomes() {
        let service = service(2);
        let mut mi = request("mi-stranded", 0.5);
        mi.deployment = DeploymentType::SqlMi;
        let ticket = service.submit(mi).unwrap();
        let result = ticket.recv().unwrap();
        assert!(result.outcome.unwrap_err().message.contains("SqlMi"));
        let report = service.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn interleaved_submit_and_recv_streams_continuously() {
        let service = service(3);
        let mut queue = TicketQueue::new();
        let mut results = Vec::new();
        for i in 0..40 {
            queue.push(service.submit(request(&format!("c{i}"), 0.4)).unwrap());
            while let Some(result) = queue.try_next() {
                results.push(result);
            }
        }
        assert_eq!(queue.len() + results.len(), 40);
        while let Some(result) = queue.next_blocking() {
            results.push(result);
        }
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(service.shutdown().fleet_size, 40);
    }

    #[test]
    fn priority_submissions_are_served_ahead_of_the_normal_backlog() {
        use doppler_catalog::{
            CatalogKey, CatalogProvider, CatalogVersion, InMemoryCatalogProvider, Region,
            ResolvedCatalog,
        };
        use doppler_core::EngineRegistry;
        use std::sync::Condvar;

        use crate::assessor::EngineRoute;

        // A provider that records the order workers resolve keys in, and
        // blocks the "gate" key until released — so the worker can be
        // parked while a backlog builds up behind it.
        struct GatingProvider {
            inner: InMemoryCatalogProvider,
            served: Mutex<Vec<String>>,
            gate: (Mutex<bool>, Condvar),
        }
        impl CatalogProvider for GatingProvider {
            fn resolve(&self, key: &CatalogKey) -> Option<ResolvedCatalog> {
                self.served.lock().unwrap().push(key.region.as_str().to_string());
                if key.region.as_str() == "gate" {
                    let (lock, cvar) = &self.gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cvar.wait(open).unwrap();
                    }
                }
                self.inner.resolve(key)
            }
        }

        let regions = ["gate", "n0", "n1", "n2", "p0", "p1"];
        let inner = regions.iter().fold(InMemoryCatalogProvider::new(), |p, r| {
            p.with_region(Region::new(*r), CatalogVersion::INITIAL, &CatalogSpec::default(), 1.0)
        });
        let provider = Arc::new(GatingProvider {
            inner,
            served: Mutex::new(Vec::new()),
            gate: (Mutex::new(false), Condvar::new()),
        });
        let registry = Arc::new(EngineRegistry::new(Arc::clone(&provider) as _));
        // One worker and a deep queue: every submission below is popped by
        // that single worker in lane order, which the provider log records.
        let config = FleetConfig { workers: 1, queue_depth: 16, keep_results: true };
        let service = FleetAssessor::over_registry(registry, config)
            .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
            .into_service();

        let keyed = |region: &str, priority: bool| {
            let r = request(region, 0.5).with_catalog_key(CatalogKey::new(
                DeploymentType::SqlDb,
                Region::new(region),
                CatalogVersion::INITIAL,
            ));
            if priority {
                r.with_priority()
            } else {
                r
            }
        };

        // Park the worker on the gate...
        let gate_ticket = service.submit(keyed("gate", false)).unwrap();
        while provider.served.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        // ...queue a normal backlog, then priority work behind it.
        let mut tickets = Vec::new();
        for region in ["n0", "n1", "n2"] {
            tickets.push(service.submit(keyed(region, false)).unwrap());
        }
        for region in ["p0", "p1"] {
            tickets.push(service.submit(keyed(region, true)).unwrap());
        }
        // Release the gate and drain.
        {
            let (lock, cvar) = &provider.gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        assert!(gate_ticket.recv().unwrap().outcome.is_ok());
        let report = service.shutdown();
        assert_eq!(report.fleet_size, 6);
        assert_eq!(report.failed, 0, "{:?}", report.failures);
        // The observable reorder: both priority submissions were served
        // before any of the normal backlog submitted ahead of them.
        let served = provider.served.lock().unwrap().clone();
        assert_eq!(served, vec!["gate", "p0", "p1", "n0", "n1", "n2"]);
        // Tickets still resolve with their own results, and the in-order
        // aggregate was unaffected (fleet_size/failed above); per-ticket
        // results keep their submission identity.
        for (ticket, region) in tickets.into_iter().zip(["n0", "n1", "n2", "p0", "p1"]) {
            assert_eq!(&*ticket.recv().unwrap().instance_name, region);
        }
    }

    #[test]
    fn sharded_service_matches_the_single_shard_report() {
        use doppler_catalog::{CatalogKey, CatalogVersion, InMemoryCatalogProvider, Region};
        use doppler_core::EngineRegistry;

        use crate::assessor::EngineRoute;

        let regions: Vec<String> = (0..6).map(|i| format!("region-{i}")).collect();
        let build = |shards: usize| {
            let provider = regions.iter().fold(InMemoryCatalogProvider::new(), |p, r| {
                p.with_region(
                    Region::new(r.clone()),
                    CatalogVersion::INITIAL,
                    &CatalogSpec::default(),
                    1.0,
                )
            });
            let registry = Arc::new(EngineRegistry::new(Arc::new(provider) as _));
            let config = FleetConfig { workers: 2, queue_depth: 8, keep_results: true };
            FleetAssessor::over_registry(registry, config)
                .with_route(EngineRoute::production(CatalogKey::production(DeploymentType::SqlDb)))
                .with_shard_plan(ShardPlan::by_region(shards))
                .into_service()
        };
        let run = |service: FleetService| {
            let tickets: Vec<Ticket> = (0..24)
                .map(|i| {
                    let region = &regions[i % regions.len()];
                    let key = CatalogKey::new(
                        DeploymentType::SqlDb,
                        Region::new(region.clone()),
                        CatalogVersion::INITIAL,
                    );
                    let r = request(&format!("inst-{i}"), 0.3 + (i % 7) as f64);
                    service.submit(r.with_catalog_key(key)).unwrap()
                })
                .collect();
            // Global indices are allocated in submission order no matter
            // which shard each request routed to.
            for (i, t) in tickets.iter().enumerate() {
                assert_eq!(t.index(), i);
            }
            let mut results: Vec<FleetResult> =
                tickets.into_iter().map(|t| t.recv().unwrap()).collect();
            results.sort_by_key(|r| r.index);
            (results, service.shutdown())
        };
        let single = build(1);
        assert_eq!(single.shard_count(), 1);
        let (base_results, base_report) = run(single);
        for shards in [2, 4] {
            let service = build(shards);
            assert_eq!(service.shard_count(), shards);
            let (results, report) = run(service);
            assert_eq!(report, base_report, "{shards} shards must report what 1 shard reports");
            assert_eq!(results.len(), base_results.len());
            for (a, b) in results.iter().zip(&base_results) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.instance_name, b.instance_name);
                assert_eq!(a.outcome.is_ok(), b.outcome.is_ok());
            }
        }
    }

    #[test]
    fn drift_probes_ride_the_pool_without_entering_the_aggregate() {
        use crate::drift::{DriftProbe, DriftVerdict};
        let service = service(2);
        let history = PerfHistory::new()
            .with(
                PerfDimension::Cpu,
                TimeSeries::ten_minute([vec![0.5; 48], vec![7.0; 48]].concat()),
            )
            .with(PerfDimension::IoLatency, TimeSeries::ten_minute(vec![6.0; 96]));
        let probe = DriftProbe {
            customer: "c-1".into(),
            deployment: DeploymentType::SqlDb,
            catalog_key: None,
            history,
            change_point: 48,
            p_g: 0.0,
        };
        let mut ticket = service.submit_drift(probe.clone()).unwrap();
        assert_eq!(ticket.index(), 0);
        assert_eq!(ticket.customer(), "c-1");
        let outcome = loop {
            match ticket.try_recv() {
                Some(outcome) => break outcome,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(outcome.verdict, DriftVerdict::Drifted);
        // Drift work is invisible to the assessment aggregate.
        assert_eq!(
            service.progress(),
            ServiceProgress { submitted: 0, completed: 0, aggregated: 0 }
        );
        assert_eq!(service.report_snapshot().fleet_size, 0);
        // A closed service hands the probe back, like submit does.
        service.close();
        let rejected = service.submit_drift(probe).unwrap_err();
        assert_eq!(rejected.customer, "c-1");
        assert_eq!(service.shutdown().fleet_size, 0);
    }

    #[test]
    fn assessment_service_preserves_batch_order() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let svc = AssessmentService::new(SkuRecommendationPipeline::new(engine), 4);
        let requests: Vec<AssessmentRequest> =
            (0..16).map(|i| request(&format!("inst-{i}"), 0.5).request).collect();
        let results = svc.assess_batch(&requests);
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.instance_name, format!("inst-{i}"));
        }
        // Batches larger than the queue depth must not deadlock the
        // submit-everything-then-collect pattern.
        let big: Vec<AssessmentRequest> =
            (0..64).map(|i| request(&format!("big-{i}"), 0.5).request).collect();
        assert_eq!(svc.assess_batch(&big).len(), 64);
    }

    #[test]
    fn owned_batch_path_matches_the_borrowed_one() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let svc = AssessmentService::new(SkuRecommendationPipeline::new(engine), 3);
        let requests: Vec<AssessmentRequest> =
            (0..24).map(|i| request(&format!("o{i}"), 0.4 + (i % 5) as f64).request).collect();
        let borrowed = svc.assess_batch(&requests);
        let owned = svc.assess_batch_owned(requests);
        assert_eq!(borrowed.len(), owned.len());
        for (b, o) in borrowed.iter().zip(&owned) {
            assert_eq!(b.instance_name, o.instance_name);
            assert_eq!(b.recommendation, o.recommendation);
        }
    }

    #[test]
    fn owned_record_path_matches_the_borrowed_ledger() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let svc = AssessmentService::new(SkuRecommendationPipeline::new(engine), 2);
        let requests: Vec<AssessmentRequest> =
            (0..6).map(|i| request(&format!("r{i}"), 0.5).request).collect();
        let mut borrowed_ledger = AdoptionLedger::default();
        svc.assess_and_record("Oct-21", &requests, &mut borrowed_ledger);
        let mut owned_ledger = AdoptionLedger::default();
        svc.assess_and_record_owned("Oct-21", requests, &mut owned_ledger);
        assert_eq!(borrowed_ledger, owned_ledger);
        assert_eq!(borrowed_ledger.month("Oct-21").unwrap().unique_instances, 6);
    }

    #[test]
    fn assessment_service_empty_batch_is_fine() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let svc = AssessmentService::new(SkuRecommendationPipeline::new(engine), 2);
        assert!(svc.assess_batch(&[]).is_empty());
    }

    #[test]
    fn assessment_service_ledger_counts_instances_databases_recommendations() {
        let engine = DopplerEngine::untrained(
            azure_paas_catalog(&CatalogSpec::default()),
            EngineConfig::production(DeploymentType::SqlDb),
        );
        let svc = AssessmentService::new(SkuRecommendationPipeline::new(engine), 2);
        let requests: Vec<AssessmentRequest> = (0..3)
            .map(|i| {
                let mut r = request(&format!("i{i}"), 0.5).request;
                // Two databases per instance, as the old dma test had.
                r.input.databases =
                    vec![("d1".into(), PerfHistory::new()), ("d2".into(), PerfHistory::new())];
                r
            })
            .collect();
        let mut ledger = AdoptionLedger::default();
        svc.assess_and_record("Oct-21", &requests, &mut ledger);
        let m = ledger.month("Oct-21").unwrap();
        assert_eq!(m.unique_instances, 3);
        assert_eq!(m.unique_databases, 6);
        // Tiny workloads: every SKU is eligible, so recommendations exceed
        // instances — the Table 1 pattern.
        assert!(m.recommendations_generated > m.unique_instances);
        svc.assess_and_record("Nov-21", &requests[..1], &mut ledger);
        svc.assess_and_record("Nov-21", &requests[1..2], &mut ledger);
        assert_eq!(ledger.month("Nov-21").unwrap().unique_instances, 2);
        assert_eq!(ledger.rows().count(), 2);
    }
}
