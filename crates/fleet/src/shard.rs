//! Shard planning for the fleet service.
//!
//! A [`ShardPlan`] decides which of N independent shards — each with its
//! own bounded queue, worker pool, and aggregator — a request routes to,
//! keyed by the request's [`CatalogKey`](doppler_catalog::CatalogKey)
//! region. Keyless requests route as the global region, so a single-region
//! fleet with a single-shard plan behaves exactly like the unsharded
//! service.
//!
//! Routing must be a pure function of the request (never of load or
//! timing): the equivalence suites assert sharded runs are bit-for-bit
//! identical to unsharded ones, which only holds if the same request
//! always lands on the same shard.

use doppler_catalog::Region;

/// How a sharded [`FleetService`](crate::FleetService) partitions work.
///
/// The default routing hashes the region label (FNV-1a) across
/// [`shards`](ShardPlan::shards); individual regions can be pinned to a
/// specific shard for locality or isolation (a noisy region on its own
/// queue cannot starve the rest of the fleet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    pinned: Vec<(Region, usize)>,
}

impl Default for ShardPlan {
    fn default() -> ShardPlan {
        ShardPlan::single()
    }
}

impl ShardPlan {
    /// One shard: the unsharded service, exactly.
    pub fn single() -> ShardPlan {
        ShardPlan::by_region(1)
    }

    /// `shards` shards (clamped to at least 1), routed by hashing each
    /// request's region label.
    pub fn by_region(shards: usize) -> ShardPlan {
        ShardPlan { shards: shards.max(1), pinned: Vec::new() }
    }

    /// Pin every request for `region` to `shard`, overriding the hash
    /// route (and any earlier pin for the same region). Panics if `shard`
    /// is out of range.
    pub fn with_pinned_region(mut self, region: Region, shard: usize) -> ShardPlan {
        assert!(shard < self.shards, "shard {shard} out of range (plan has {})", self.shards);
        self.pinned.retain(|(r, _)| *r != region);
        self.pinned.push((region, shard));
        self
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a request routes to. `None` — a request with no pinned
    /// catalog key — routes as [`Region::global`], so keyless and
    /// explicitly-global requests share a shard.
    pub fn shard_of(&self, region: Option<&Region>) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let global = Region::global();
        let region = region.unwrap_or(&global);
        if let Some((_, shard)) = self.pinned.iter().find(|(r, _)| r == region) {
            return *shard;
        }
        fnv1a(region.as_str().as_bytes()) as usize % self.shards
    }
}

/// FNV-1a over the region label: stable across runs and platforms (unlike
/// `DefaultHasher`, whose keys are randomized per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let plan = ShardPlan::single();
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.shard_of(None), 0);
        assert_eq!(plan.shard_of(Some(&Region::new("westeurope"))), 0);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardPlan::by_region(0).shards(), 1);
    }

    #[test]
    fn keyless_requests_route_as_the_global_region() {
        for shards in [2, 3, 4, 7] {
            let plan = ShardPlan::by_region(shards);
            assert_eq!(plan.shard_of(None), plan.shard_of(Some(&Region::global())));
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let plan = ShardPlan::by_region(4);
        for name in ["westeurope", "eastasia", "centralus", "global", "atlantis"] {
            let region = Region::new(name);
            let shard = plan.shard_of(Some(&region));
            assert!(shard < 4);
            assert_eq!(shard, plan.shard_of(Some(&region)), "{name} must route stably");
        }
    }

    #[test]
    fn distinct_regions_spread_across_shards() {
        let plan = ShardPlan::by_region(4);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[plan.shard_of(Some(&Region::new(format!("region-{i}"))))] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 regions over 4 shards must hit every shard");
    }

    #[test]
    fn pins_override_the_hash_route() {
        let west = Region::new("westeurope");
        let plan = ShardPlan::by_region(4).with_pinned_region(west.clone(), 3);
        assert_eq!(plan.shard_of(Some(&west)), 3);
        // Re-pinning replaces the earlier pin.
        let plan = plan.with_pinned_region(west.clone(), 1);
        assert_eq!(plan.shard_of(Some(&west)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pin_panics() {
        let _ = ShardPlan::by_region(2).with_pinned_region(Region::new("westeurope"), 2);
    }
}
