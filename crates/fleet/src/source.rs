//! Fleet sources: turn `doppler-workload` populations into streams of
//! [`FleetRequest`]s.
//!
//! Conversions are lazy (`Iterator`, not `Vec`): a 10,000-customer cohort
//! flows through the assessor's bounded queue one instance at a time, so
//! fleet assessment runs in O(queue depth) request memory, matching the
//! workload crate's own guidance to stream large cohorts.

use doppler_catalog::{Catalog, CatalogKey, CatalogVersion, DeploymentType};
use doppler_core::ConfidenceConfig;
use doppler_dma::AssessmentRequest;
use doppler_workload::{CloudCustomer, OnPremCandidate, PopulationSpec};

use crate::assessor::FleetRequest;

/// Convert one synthetic cloud customer into a fleet request. A customer
/// carrying a region tag gets a pinned [`CatalogKey`] at
/// [`CatalogVersion::INITIAL`] — feeding a registry-backed assessor, such
/// a request is priced against its own region's offer catalog; callers
/// pinning a different catalog version can rewrite
/// [`FleetRequest::catalog_key`] afterwards.
pub fn customer_request(
    customer: CloudCustomer,
    confidence: Option<ConfidenceConfig>,
) -> FleetRequest {
    let file_sizes_gib = customer
        .file_layout
        .as_ref()
        .map(|layout| layout.files.iter().map(|f| f.size_gib).collect())
        .unwrap_or_default();
    let request = FleetRequest::new(
        customer.deployment,
        AssessmentRequest::from_history(
            format!("customer-{}", customer.id),
            customer.history,
            file_sizes_gib,
            confidence,
        ),
    );
    match customer.region {
        Some(region) => request.with_catalog_key(CatalogKey::new(
            customer.deployment,
            region,
            CatalogVersion::INITIAL,
        )),
        None => request,
    }
}

/// Stream an entire synthetic cloud cohort as fleet requests. Customers are
/// generated on demand — nothing is materialized beyond the one being fed.
pub fn cloud_fleet<'a>(
    spec: &'a PopulationSpec,
    catalog: &'a Catalog,
    confidence: Option<ConfidenceConfig>,
) -> impl Iterator<Item = FleetRequest> + 'a {
    spec.stream_customers(catalog).map(move |c| customer_request(c, confidence))
}

/// Convert one on-prem assessment candidate (§5.3) into a fleet request
/// targeting `deployment`.
pub fn onprem_request(
    candidate: OnPremCandidate,
    deployment: DeploymentType,
    confidence: Option<ConfidenceConfig>,
) -> FleetRequest {
    FleetRequest::new(
        deployment,
        AssessmentRequest::from_history(candidate.name, candidate.history, Vec::new(), confidence),
    )
}

/// Stream an on-prem cohort as fleet requests against one target.
pub fn onprem_fleet(
    candidates: Vec<OnPremCandidate>,
    deployment: DeploymentType,
    confidence: Option<ConfidenceConfig>,
) -> impl Iterator<Item = FleetRequest> {
    candidates.into_iter().map(move |c| onprem_request(c, deployment, confidence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppler_catalog::{azure_paas_catalog, CatalogSpec};
    use doppler_workload::onprem_population;

    #[test]
    fn cloud_fleet_streams_the_whole_cohort() {
        let catalog = azure_paas_catalog(&CatalogSpec::default());
        let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(12, 3) };
        let requests: Vec<FleetRequest> = cloud_fleet(&spec, &catalog, None).collect();
        assert_eq!(requests.len(), 12);
        assert!(requests.iter().all(|r| r.deployment == DeploymentType::SqlDb));
        assert_eq!(requests[4].request.instance_name, "customer-4");
        assert_eq!(requests[4].request.input.databases.len(), 1);
    }

    #[test]
    fn region_tagged_cohorts_pin_catalog_keys() {
        use doppler_catalog::Region;
        let catalog = azure_paas_catalog(&CatalogSpec::default());
        let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(3, 3) }
            .in_region(Region::new("westeurope"));
        for r in cloud_fleet(&spec, &catalog, None) {
            let key = r.catalog_key.expect("tagged cohort pins a key");
            assert_eq!(key.region, Region::new("westeurope"));
            assert_eq!(key.deployment, DeploymentType::SqlDb);
            assert_eq!(key.version, CatalogVersion::INITIAL);
        }
        let untagged = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(1, 3) };
        assert!(cloud_fleet(&untagged, &catalog, None).all(|r| r.catalog_key.is_none()));
    }

    #[test]
    fn mi_customers_carry_their_file_sizes() {
        let catalog = azure_paas_catalog(&CatalogSpec::default());
        let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_mi(4, 9) };
        for r in cloud_fleet(&spec, &catalog, None) {
            assert_eq!(r.deployment, DeploymentType::SqlMi);
            assert!(!r.request.input.file_sizes_gib.is_empty());
        }
    }

    #[test]
    fn onprem_candidates_become_named_requests() {
        let requests: Vec<FleetRequest> =
            onprem_fleet(onprem_population(6, 1.0, 5), DeploymentType::SqlDb, None).collect();
        assert_eq!(requests.len(), 6);
        assert!(requests[0].request.instance_name.starts_with("onprem-0"));
    }
}
