//! Fleet-scale determinism: assessing the same 1,000-instance synthetic
//! population must produce bit-for-bit identical output no matter how many
//! worker threads share the engine.

use doppler_catalog::{azure_paas_catalog, Catalog, CatalogSpec, DeploymentType};
use doppler_core::{DopplerEngine, EngineConfig};
use doppler_fleet::{cloud_fleet, FleetAssessment, FleetAssessor, FleetConfig, FleetRequest};
use doppler_workload::PopulationSpec;

fn catalog() -> Catalog {
    azure_paas_catalog(&CatalogSpec::default())
}

fn thousand_instance_fleet(catalog: &Catalog) -> Vec<FleetRequest> {
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(1000, 20_26) };
    cloud_fleet(&spec, catalog, None).collect()
}

fn assess_with(workers: usize, fleet: Vec<FleetRequest>) -> FleetAssessment {
    let engine =
        DopplerEngine::untrained(catalog(), EngineConfig::production(DeploymentType::SqlDb));
    FleetAssessor::new(engine, FleetConfig::with_workers(workers)).assess(fleet)
}

#[test]
fn thousand_instances_are_deterministic_across_worker_counts() {
    let catalog = catalog();
    let fleet = thousand_instance_fleet(&catalog);
    assert_eq!(fleet.len(), 1000);

    let single = assess_with(1, fleet.clone());
    let four = assess_with(4, fleet.clone());
    let eight = assess_with(8, fleet);

    // The aggregate report is PartialEq over every field — counts, f64
    // cost sums, histograms, bucket lists — so this is the bit-for-bit
    // equality the subsystem promises.
    assert_eq!(single.report, four.report);
    assert_eq!(single.report, eight.report);

    // Per-instance streams agree too, in submission order.
    for (a, b) in single.results.iter().zip(&eight.results) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.instance_name, b.instance_name);
        let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(ra.recommendation.sku_id, rb.recommendation.sku_id);
        assert_eq!(ra.recommendation.monthly_cost, rb.recommendation.monthly_cost);
        assert_eq!(ra.report, rb.report);
    }

    // Sanity on the aggregates themselves.
    let report = &single.report;
    assert_eq!(report.fleet_size, 1000);
    assert_eq!(report.failed, 0);
    assert_eq!(report.recommended + report.unplaceable, 1000);
    assert!(report.recommended > 900, "recommended = {}", report.recommended);
    assert!(report.total_monthly_cost > 0.0);
    let mix_total: usize = report.sku_mix.iter().map(|r| r.count).sum();
    assert_eq!(mix_total, report.recommended);
    let shape_total: usize = report.shape_mix.iter().map(|r| r.count).sum();
    assert_eq!(shape_total, 1000 - report.failed);
    // Figure 9: flat curves dominate a calibrated SQL DB cohort.
    assert!(report.shape_mix[0].count > 600, "flat count = {}", report.shape_mix[0].count);

    // The rendered dashboard reflects the same numbers.
    let text = report.render();
    assert!(text.contains("instances:    1000"), "{text}");
    assert!(text.contains("SKU mix"));
}

#[test]
fn streaming_and_materialized_fleets_agree() {
    let catalog = catalog();
    let spec = PopulationSpec { days: 1.0, ..PopulationSpec::sql_db(100, 7) };
    let engine =
        DopplerEngine::untrained(catalog.clone(), EngineConfig::production(DeploymentType::SqlDb));
    let assessor = FleetAssessor::new(engine, FleetConfig::with_workers(4));

    // Once through the lazy iterator (bounded-queue backpressure path)…
    let streamed = assessor.assess(cloud_fleet(&spec, &catalog, None));
    // …and once through a pre-collected vector.
    let materialized = assessor.assess(cloud_fleet(&spec, &catalog, None).collect::<Vec<_>>());
    assert_eq!(streamed.report, materialized.report);
}
